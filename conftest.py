"""Root test configuration: lock-order watchdog + data-race sanitizer.

Both install in ``pytest_configure`` — before collection imports any
``repro`` module — so locks created at import time are watched and
``@shared_state`` classes are instrumented from the first import.
``REPRO_LOCKWATCH=0`` / ``REPRO_RACESAN=0`` disable them individually
(e.g. to bisect whether the tooling itself perturbs a failure).

The sanitizer instruments everywhere but *records* only where a suite
opts in: ``tests/chaos`` and ``tests/integration`` enable recording via
autouse fixtures (they are the suites that actually interleave
threads); ``REPRO_RACESAN=1`` forces recording for the whole session.

Violations accumulate silently during the run and fail the session at
the end — lock-order cycles as exit 3, data races as exit 4 — because
raising at the access site would corrupt whatever code path happened to
trip the detector.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))

from repro.obs import lockwatch, racesan  # noqa: E402


def _lockwatch_enabled() -> bool:
    return os.environ.get("REPRO_LOCKWATCH", "1") != "0"


def pytest_configure(config):
    if _lockwatch_enabled():
        lockwatch.install()
    if racesan.mode() != "off":
        sanitizer = racesan.install()
        if racesan.mode() == "on":
            sanitizer.recording = True


def pytest_terminal_summary(terminalreporter):
    watchdog = lockwatch.active()
    if watchdog is not None and watchdog.violations:
        terminalreporter.section("lock-order watchdog")
        for violation in watchdog.violations:
            terminalreporter.write_line(violation)
    sanitizer = racesan.active()
    if sanitizer is not None and (sanitizer.races or sanitizer.suppressions_hit):
        terminalreporter.section("race sanitizer")
        for report in sanitizer.races:
            terminalreporter.write_line(report.render())
        if sanitizer.suppressions_hit:
            terminalreporter.write_line(
                f"{len(sanitizer.suppressions_hit)} report(s) suppressed by "
                "justified `# racesan: ok` pragmas"
            )


def pytest_sessionfinish(session, exitstatus):
    watchdog = lockwatch.active()
    if watchdog is not None and watchdog.violations:
        session.exitstatus = 3
    sanitizer = racesan.active()
    if sanitizer is not None:
        report_path = os.environ.get("REPRO_RACESAN_JSON")
        if report_path:
            import json

            Path(report_path).write_text(
                json.dumps(sanitizer.stats(), indent=2) + "\n", encoding="utf-8"
            )
        if sanitizer.races:
            session.exitstatus = 4

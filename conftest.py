"""Root test configuration: the lock-order watchdog.

Installed in ``pytest_configure`` — before collection imports any
``repro`` module — so locks created at import time are watched too.
``REPRO_LOCKWATCH=0`` disables it (e.g. to bisect whether the watchdog
itself perturbs a failure).  Violations accumulate silently during the
run and fail the session at the end: raising at the acquisition site
would corrupt whatever code path happened to close the cycle.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))

from repro.obs import lockwatch  # noqa: E402


def _enabled() -> bool:
    return os.environ.get("REPRO_LOCKWATCH", "1") != "0"


def pytest_configure(config):
    if _enabled():
        lockwatch.install()


def pytest_terminal_summary(terminalreporter):
    watchdog = lockwatch.active()
    if watchdog is not None and watchdog.violations:
        terminalreporter.section("lock-order watchdog")
        for violation in watchdog.violations:
            terminalreporter.write_line(violation)


def pytest_sessionfinish(session, exitstatus):
    watchdog = lockwatch.active()
    if watchdog is not None and watchdog.violations:
        session.exitstatus = 3

"""E7 — failure containment: distributed vs centralised control.

"This distributed control reduces the effect of failures on a given site
or proxy."

Two measurements:

* **capacity surviving a failure** — kill one site (or the central
  controller) in an N-site grid under each architecture;
* **detection latency** — heartbeat-driven failure detector on the
  simulator: how long until a dead proxy is declared DEAD, versus the
  heartbeat period.

Expected shape: distributed control loses ~1/N capacity per site
failure and has no total-outage component; the centralised controller is
a total outage.  Detection latency tracks the configured timeout, not
grid size.
"""

import pytest

from benchmarks.common import save_table
from repro.baselines.central import availability_after_failure
from repro.control.failure import FailureDetector, PeerState
from repro.simulation.engine import Simulator


def sweep_capacity() -> list[dict]:
    rows = []
    for n_sites in [2, 4, 8, 16]:
        sites = {f"s{i}": 32 for i in range(n_sites)}
        dist_site = availability_after_failure(sites, "s0", "distributed")
        cent_site = availability_after_failure(sites, "s0", "centralized")
        cent_ctrl = availability_after_failure(sites, "controller", "centralized")
        rows.append(
            {
                "sites": n_sites,
                "dist_lose_site": dist_site.capacity_remaining,
                "cent_lose_site": cent_site.capacity_remaining,
                "cent_lose_controller": cent_ctrl.capacity_remaining,
                "dist_controllable": dist_site.controllable,
                "cent_ctrl_controllable": cent_ctrl.controllable,
            }
        )
    return rows


def detection_latency(heartbeat_period: float, dead_after: float, fail_at: float) -> float:
    """Simulate heartbeats then silence; returns detection delay."""
    sim = Simulator()
    detector = FailureDetector(
        lambda: sim.now,
        suspect_after=dead_after / 3,
        dead_after=dead_after,
    )
    detector.watch("proxy.victim")
    detected = {}
    last_heartbeat = {"at": 0.0}

    def heartbeats(sim):
        while sim.now < fail_at:
            yield sim.timeout(heartbeat_period)
            if sim.now < fail_at:
                detector.heard_from("proxy.victim")
                last_heartbeat["at"] = sim.now

    def checker(sim):
        while not detected:
            yield sim.timeout(heartbeat_period / 2)
            detector.check()
            if detector.state_of("proxy.victim") is PeerState.DEAD:
                detected["at"] = sim.now

    sim.spawn(heartbeats(sim))
    sim.spawn(checker(sim))
    sim.run(until=fail_at + dead_after * 10)
    assert "at" in detected, "failure was never detected"
    # The failure is effective from the victim's final heartbeat: that is
    # the last instant the grid provably saw it alive.
    return detected["at"] - last_heartbeat["at"]


def sweep_detection() -> list[dict]:
    rows = []
    for heartbeat, dead_after in [(1.0, 5.0), (1.0, 10.0), (5.0, 30.0)]:
        latency = detection_latency(heartbeat, dead_after, fail_at=100.0)
        rows.append(
            {
                "heartbeat_s": heartbeat,
                "dead_after_s": dead_after,
                "detection_latency_s": latency,
                "latency_vs_timeout": latency / dead_after,
            }
        )
    return rows


def check_shape(capacity_rows: list[dict], detection_rows: list[dict]) -> None:
    for row in capacity_rows:
        # Distributed: lose exactly 1/N; centralised controller: lose all.
        assert row["dist_lose_site"] == pytest.approx(1 - 1 / row["sites"])
        assert row["cent_lose_controller"] == 0.0
        assert row["dist_controllable"]
        assert not row["cent_ctrl_controllable"]
    # Larger grids shrink the per-site blast radius under distributed control.
    assert capacity_rows[-1]["dist_lose_site"] > capacity_rows[0]["dist_lose_site"]
    for row in detection_rows:
        # Detection happens just past the timeout, never before.
        assert 1.0 <= row["latency_vs_timeout"] < 1.5


@pytest.mark.benchmark(group="e7-failures")
def test_e7_failure_containment(benchmark):
    def run():
        return sweep_capacity(), sweep_detection()

    capacity_rows, detection_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check_shape(capacity_rows, detection_rows)
    save_table(
        "e7_capacity",
        "E7a: capacity surviving one failure (site or controller)",
        capacity_rows,
    )
    save_table(
        "e7_detection",
        "E7b: heartbeat failure-detection latency (simulated)",
        detection_rows,
    )


@pytest.mark.benchmark(group="e7-failures")
def test_e7_live_tunnel_failure_detected(benchmark):
    """On the real runtime: killing a proxy drops its peers' tunnels."""
    import time as _time

    from repro.core.grid import Grid

    def run():
        grid = Grid()
        grid.add_site("A", nodes=1)
        grid.add_site("B", nodes=1)
        grid.connect_all()
        try:
            lost = []
            grid.proxy_of("A").on_peer_lost.append(lost.append)
            grid.proxy_of("B").shutdown()
            deadline = _time.monotonic() + 10.0
            while not lost and _time.monotonic() < deadline:
                _time.sleep(0.02)
            assert lost == ["proxy.B"]
        finally:
            grid.shutdown()

    benchmark.pedantic(run, rounds=1, iterations=1)

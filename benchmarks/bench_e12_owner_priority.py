"""E12 — owner priority: grid work yields to the machine's owner.

A grid requirement the paper states up front: "the priority of the
resource's utilization by the user of the machine and not by third party
applications".

On the simulator, a fixed grid job runs on a workstation whose owner is
active a sweep of duty cycles; the owner's foreground share is absolute.
Expected shape: grid-job slowdown tracks 1 / (1 - duty·share)
analytically, and the owner's own work never slows down.
"""

import pytest

from benchmarks.common import save_table
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStream
from repro.simulation.resources import NodeResources, OwnerActivity

GRID_WORK = 500.0  # CPU-seconds
BUSY_FRACTION = 0.9


def run_case(duty_cycle: float, seed: int = 11) -> dict:
    sim = Simulator()
    node = NodeResources(sim, "workstation", cpu_speed=1.0)
    if duty_cycle > 0:
        mean_busy = 30.0
        mean_idle = mean_busy * (1 - duty_cycle) / duty_cycle
        owner = OwnerActivity(
            RandomStream(seed, f"owner-{duty_cycle}"),
            mean_idle=mean_idle,
            mean_busy=mean_busy,
            busy_fraction=BUSY_FRACTION,
        )
        sim.spawn(owner.run(node))
    done = node.submit(cpu_work=GRID_WORK)
    sim.run(until=1_000_000.0)
    runtime = done.value
    expected_slowdown = 1.0 / (1.0 - duty_cycle * BUSY_FRACTION)
    return {
        "owner_duty": duty_cycle,
        "grid_runtime_s": runtime,
        "slowdown_x": runtime / GRID_WORK,
        "analytic_x": expected_slowdown,
        "owner_share_kept": BUSY_FRACTION if duty_cycle > 0 else 0.0,
    }


def run_experiment() -> list[dict]:
    return [run_case(duty) for duty in [0.0, 0.2, 0.4, 0.6, 0.8]]


def check_shape(rows: list[dict]) -> None:
    slowdowns = [row["slowdown_x"] for row in rows]
    # Monotone: the more the owner works, the slower the grid job.
    assert slowdowns == sorted(slowdowns)
    assert slowdowns[0] == pytest.approx(1.0, abs=0.01)
    # Measured slowdown tracks the analytic owner-priority law within
    # stochastic noise of the on/off owner process.
    for row in rows[1:]:
        assert row["slowdown_x"] == pytest.approx(row["analytic_x"], rel=0.35)


@pytest.mark.benchmark(group="e12-owner-priority")
def test_e12_owner_priority(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    check_shape(rows)
    save_table(
        "e12_owner_priority",
        "E12: grid-job slowdown under owner activity (share kept = 0.9)",
        rows,
    )


@pytest.mark.benchmark(group="e12-owner-priority")
def test_e12_owner_work_unaffected(benchmark):
    """The owner's own work rate is independent of grid load."""

    def run():
        sim = Simulator()
        node = NodeResources(sim, "ws", cpu_speed=1.0)
        # Saturate the node with grid jobs.
        for _ in range(8):
            node.submit(cpu_work=1000.0)
        node.set_owner_load(0.5)  # the owner takes half the CPU — instantly
        assert node.grid_rate() == pytest.approx(0.5)
        sim.run(until=10.0)

    benchmark.pedantic(run, rounds=1, iterations=1)

"""E8 — Kerberos-style tickets vs per-request authentication.

The paper's foreseen upgrade: "a single authentication per session, with
the access rights stored safely in a ticket and reused transparently".

Both schemes serve sessions of increasing length with the real crypto:
per-request authentication hashes the password every time; the ticket
scheme pays one password authentication + one RSA signature up front,
then one signature verification per request.  Expected shape: tickets
amortise — per-request cost falls toward the verification floor as the
session grows, while the baseline stays flat.
"""

import time

import pytest

from benchmarks.common import save_table
from repro.security.auth import UserDirectory
from repro.security.tickets import TicketService

SESSION_LENGTHS = [1, 10, 100, 500]
KEY_BITS = 512


def make_world():
    users = UserDirectory()
    users.add_user("alice", "pw")
    service = TicketService(users, lambda: 0.0, key_bits=KEY_BITS)
    return users, service


def run_experiment() -> list[dict]:
    users, service = make_world()
    rows = []
    for requests in SESSION_LENGTHS:
        start = time.perf_counter()
        for _ in range(requests):
            users.authenticate_password("alice", "pw")
        per_request_total = time.perf_counter() - start

        start = time.perf_counter()
        ticket = service.issue("alice", "pw", rights=["mpi:run"])
        for _ in range(requests):
            service.verify(ticket, required_right="mpi:run")
        ticket_total = time.perf_counter() - start

        rows.append(
            {
                "requests": requests,
                "per_request_ms": per_request_total * 1000,
                "ticket_ms": ticket_total * 1000,
                "per_request_auth_ops": requests,
                "ticket_auth_ops": 1,
                "speedup_x": per_request_total / ticket_total,
            }
        )
    return rows


def check_shape(rows: list[dict]) -> None:
    # Password authentications: N vs 1 — the paper's whole point.
    for row in rows:
        assert row["ticket_auth_ops"] == 1
        assert row["per_request_auth_ops"] == row["requests"]
    # Amortisation: the ticket advantage grows with session length.
    speedups = [row["speedup_x"] for row in rows]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 2.0


@pytest.mark.benchmark(group="e8-tickets")
def test_e8_ticket_amortisation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    check_shape(rows)
    save_table(
        "e8_tickets",
        "E8: per-request password auth vs single-auth session tickets",
        rows,
    )


@pytest.mark.benchmark(group="e8-tickets")
def test_e8_password_auth_cost(benchmark):
    users, _ = make_world()
    benchmark(lambda: users.authenticate_password("alice", "pw"))


@pytest.mark.benchmark(group="e8-tickets")
def test_e8_ticket_verify_cost(benchmark):
    _, service = make_world()
    ticket = service.issue("alice", "pw", rights=["*"])
    benchmark(lambda: service.verify(ticket))


@pytest.mark.benchmark(group="e8-tickets")
def test_e8_ticket_issue_cost(benchmark):
    _, service = make_world()
    benchmark(lambda: service.issue("alice", "pw", rights=["mpi:run"]))

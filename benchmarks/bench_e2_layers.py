"""E2 — Figure 2: per-message cost of each layer in the stack.

The paper's layer diagram (communication → security → control → MPI).
We price one message's trip through each layer with the real
implementation across message sizes: framing (layer 1), record
encryption (layer 2), control-protocol codec (layer 3), MPI envelope
serialisation (layer 4).
"""

import time

import pytest

from benchmarks.common import save_table
from repro.core.protocol import ControlMessage, Op
from repro.mpi.datatypes import Envelope
from repro.security.cipher import (
    RecordCipher,
    derive_session_keys,
    random_master_secret,
)
from repro.transport.frames import Frame, FrameKind, decode_frame, encode_frame

SIZES = [64, 1024, 16 * 1024, 256 * 1024]


def _time(fn, repeat=50) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return (time.perf_counter() - start) / repeat


def run_experiment() -> list[dict]:
    keys = derive_session_keys(random_master_secret(), "client")
    rows = []
    for size in SIZES:
        payload = b"\xab" * size
        frame = Frame(kind=FrameKind.DATA, headers={"ch": 1}, payload=payload)
        blob = encode_frame(frame)

        def framing():
            decode_frame(encode_frame(frame))

        sender, receiver = RecordCipher(keys), RecordCipher(keys)

        def crypto():
            receiver.open(sender.seal(blob))

        message = ControlMessage(op=Op.STATUS_REPORT, body={"blob": payload})

        def control():
            ControlMessage.from_frame(message.to_frame())

        envelope = Envelope(source=0, dest=1, tag=0, payload=payload)

        def mpi_envelope():
            envelope.wire_size()

        repeat = max(4, 2000 // max(size // 1024, 1))
        rows.append(
            {
                "bytes": size,
                "layer1_framing_us": _time(framing, repeat) * 1e6,
                "layer2_crypto_us": _time(crypto, max(repeat // 4, 2)) * 1e6,
                "layer3_control_us": _time(control, repeat) * 1e6,
                "layer4_mpi_us": _time(mpi_envelope, repeat) * 1e6,
            }
        )
    return rows


def check_shape(rows: list[dict]) -> None:
    # Crypto dominates the stack at every size (why the paper keeps it
    # off the intra-site path), and every layer's cost grows with size.
    for row in rows:
        assert row["layer2_crypto_us"] > row["layer1_framing_us"]
    assert rows[-1]["layer2_crypto_us"] > rows[0]["layer2_crypto_us"]
    assert rows[-1]["layer1_framing_us"] > rows[0]["layer1_framing_us"]


@pytest.mark.benchmark(group="e2-layers")
def test_e2_layer_costs(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    check_shape(rows)
    save_table(
        "e2_layers",
        "E2 (Fig. 2): per-message cost of each architecture layer",
        rows,
    )


@pytest.mark.benchmark(group="e2-layers")
def test_e2_frame_codec_throughput(benchmark):
    frame = Frame(kind=FrameKind.DATA, payload=b"\xcd" * 4096)

    def round_trip():
        decode_frame(encode_frame(frame))

    benchmark(round_trip)


@pytest.mark.benchmark(group="e2-layers")
def test_e2_record_cipher_throughput(benchmark):
    keys = derive_session_keys(random_master_secret(), "client")
    sender, receiver = RecordCipher(keys), RecordCipher(keys)
    blob = b"\xef" * 4096

    def seal_open():
        receiver.open(sender.seal(blob))

    benchmark(seal_open)

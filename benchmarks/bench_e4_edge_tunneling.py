"""E4 — the paper's central overhead claim: edge tunneling vs per-node security.

"In the traditional approaches, because the security falls within the
MPI application, all the cluster's nodes reflect the overhead generated
by the grid's safe communication and control.  In the case of the
approach proposed here, the information [is] tunneled only among cluster
edges and not inside them."

The cost model is calibrated against the real crypto implementation,
then swept over (a) cluster size at fixed locality and (b) traffic
locality at fixed size.  Expected shape: the proxy architecture's crypto
work tracks *edge traffic*, the baseline's tracks *all traffic and all
nodes*; the gap grows with cluster size and locality, vanishing as
locality → 0.
"""

import pytest

from benchmarks.common import save_table
from repro.baselines.pernode import (
    TrafficSpec,
    calibrate_cost_model,
    evaluate_pernode,
    evaluate_proxy,
)


def sweep_cluster_size(model) -> list[dict]:
    rows = []
    for nodes in [8, 16, 32, 64, 128, 256]:
        spec = TrafficSpec(
            sites=4,
            nodes_per_site=nodes,
            messages_per_node=200,
            message_bytes=4096,
            locality=0.8,
        )
        pernode = evaluate_pernode(spec, model)
        proxy = evaluate_proxy(spec, model)
        rows.append(
            {
                "nodes_per_site": nodes,
                "pernode_crypto_s": pernode.crypto_seconds,
                "proxy_crypto_s": proxy.crypto_seconds,
                "advantage_x": pernode.crypto_seconds / proxy.crypto_seconds,
                "pernode_burdened_nodes": pernode.nodes_bearing_overhead,
                "proxy_burdened_nodes": proxy.nodes_bearing_overhead,
            }
        )
    return rows


def sweep_locality(model) -> list[dict]:
    rows = []
    for locality in [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99]:
        spec = TrafficSpec(
            sites=4,
            nodes_per_site=64,
            messages_per_node=200,
            message_bytes=4096,
            locality=locality,
        )
        pernode = evaluate_pernode(spec, model)
        proxy = evaluate_proxy(spec, model)
        record_cost = model.record_cost(spec.message_bytes)
        rows.append(
            {
                "locality": locality,
                "pernode_crypto_s": pernode.crypto_seconds,
                "proxy_crypto_s": proxy.crypto_seconds,
                "advantage_x": pernode.crypto_seconds / proxy.crypto_seconds,
                # record-layer work alone (handshake savings excluded):
                "pernode_record_s": pernode.crypto_operations * record_cost,
                "proxy_record_s": proxy.crypto_operations * record_cost,
                "proxy_encrypted_MB": proxy.encrypted_bytes / 1e6,
            }
        )
    return rows


def check_shape(size_rows: list[dict], locality_rows: list[dict]) -> None:
    # Proxy always wins here (locality >= 0 and handshake savings), and
    # the advantage grows with cluster size at fixed locality...
    advantages = [row["advantage_x"] for row in size_rows]
    assert all(a > 1.0 for a in advantages)
    assert advantages[-1] > advantages[0]
    # ...and with locality at fixed size.  On the record layer the two
    # architectures converge exactly as locality -> 0 (both encrypt every
    # message); the proxy keeps a constant session-setup saving on top,
    # since per-node security holds O(nodes × peers) sessions vs O(sites²).
    loc_adv = [row["advantage_x"] for row in locality_rows]
    assert loc_adv == sorted(loc_adv)
    zero = locality_rows[0]
    assert zero["locality"] == 0.0
    assert zero["pernode_record_s"] == pytest.approx(zero["proxy_record_s"])
    assert loc_adv[-1] > 10.0  # decisive win when almost all is local
    # The burden stays on 4 proxies regardless of node count.
    assert all(row["proxy_burdened_nodes"] == 4 for row in size_rows)


@pytest.mark.benchmark(group="e4-edge-tunneling")
def test_e4_edge_tunneling_vs_pernode(benchmark):
    model = calibrate_cost_model()

    def run():
        return sweep_cluster_size(model), sweep_locality(model)

    size_rows, locality_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check_shape(size_rows, locality_rows)
    save_table(
        "e4_cluster_size",
        "E4a: total crypto work vs cluster size (locality 0.8, 4 sites)",
        size_rows,
    )
    save_table(
        "e4_locality",
        "E4b: total crypto work vs traffic locality (64 nodes/site, 4 sites)",
        locality_rows,
    )


@pytest.mark.benchmark(group="e4-edge-tunneling")
def test_e4_calibration_cost(benchmark):
    """How long the live calibration of the cost model takes."""
    benchmark.pedantic(calibrate_cost_model, rounds=3, iterations=1)

"""Ablations: the cost of each design choice, varied in isolation.

A1 — monitoring cache TTL: the distributed monitor's query savings come
     from per-site caching; sweep the TTL to show the traffic/staleness
     trade-off the paper's "not always necessary to check" argument buys.
A2 — DFS chunk size and replication factor: storage overhead and
     failure tolerance of the filing-system extension.
A3 — collective algorithm: the binomial-tree broadcast against a naive
     linear broadcast (root sends to everyone), in rounds and messages —
     why minimpi uses trees.
A4 — record overhead: the secure tunnel's fixed 40-byte record framing
     as a fraction of payload, across payload sizes (why the proxy
     batches whole frames rather than encrypting field-by-field).
"""

import math

import pytest

from benchmarks.common import save_table
from repro.control.monitor import GlobalStatusCompiler
from repro.dfs.filesystem import GridFileSystem
from repro.security.cipher import RecordCipher
from repro.simulation.randomness import RandomStream
from repro.workloads.generators import synthetic_status


# ---------------------------------------------------------------------------
# A1: monitoring TTL
# ---------------------------------------------------------------------------


class SteppingClock:
    def __init__(self, step: float):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        return self.now

    def advance(self) -> None:
        self.now += self.step


def ablation_ttl() -> list[dict]:
    status = synthetic_status(8, 32, RandomStream(5, "a1"))
    sites = sorted(status)
    rows = []
    for ttl in [0.0, 5.0, 30.0, 120.0]:
        clock = SteppingClock(step=5.0)
        compiler = GlobalStatusCompiler(
            sites, lambda s: status[s], clock, ttl=ttl
        )
        rng = RandomStream(9, f"a1-queries-{ttl}")
        staleness_samples = []
        for _ in range(200):
            site = rng.choice(sites)
            compiler.site_status(site)
            record = compiler.cache.get_any_age(site)
            staleness_samples.append(clock() - record.collected_at)
            clock.advance()
        rows.append(
            {
                "ttl_s": ttl,
                "queries_sent": compiler.queries_sent,
                "mean_staleness_s": sum(staleness_samples) / len(staleness_samples),
                "max_staleness_s": max(staleness_samples),
            }
        )
    return rows


def check_ttl(rows: list[dict]) -> None:
    queries = [row["queries_sent"] for row in rows]
    staleness = [row["mean_staleness_s"] for row in rows]
    # Longer TTL: fewer queries, staler answers — strictly monotone both ways.
    assert queries == sorted(queries, reverse=True)
    assert staleness == sorted(staleness)
    assert rows[0]["max_staleness_s"] == 0.0  # ttl 0: always fresh


# ---------------------------------------------------------------------------
# A2: DFS chunking and replication
# ---------------------------------------------------------------------------


def ablation_dfs() -> list[dict]:
    # Random payload: a repeating pattern would dedup inside the
    # content-addressed stores and understate the storage factor.
    payload = RandomStream(3, "a2-payload").bytes(128 * 1024)
    rows = []
    for chunk_kib, replication in [(4, 2), (16, 2), (64, 2), (16, 1), (16, 3)]:
        fs = GridFileSystem(replication=replication, chunk_size=chunk_kib * 1024)
        for i in range(3):
            fs.add_site(f"s{i}", capacity=1 << 24)
        entry = fs.write("/blob", payload)
        stored = sum(fs.store_of(s).used for s in fs.sites())
        survives = replication >= 2
        rows.append(
            {
                "chunk_KiB": chunk_kib,
                "replication": replication,
                "chunks": entry.chunk_count,
                "bytes_stored": stored,
                "storage_factor_x": stored / len(payload),
                "survives_site_loss": survives,
            }
        )
    return rows


def check_dfs(rows: list[dict]) -> None:
    for row in rows:
        assert row["chunks"] == math.ceil(128 * 1024 / (row["chunk_KiB"] * 1024))
        assert row["storage_factor_x"] == pytest.approx(row["replication"])
    # Replication factor 1 cannot survive a site loss.
    assert not [r for r in rows if r["replication"] == 1][0]["survives_site_loss"]


# ---------------------------------------------------------------------------
# A3: broadcast algorithm
# ---------------------------------------------------------------------------


def bcast_costs(n: int) -> dict:
    """Rounds and messages for tree vs linear broadcast of one value."""
    tree_rounds = math.ceil(math.log2(n)) if n > 1 else 0
    tree_messages = n - 1
    linear_rounds = n - 1  # root sends serially
    linear_messages = n - 1
    return {
        "ranks": n,
        "tree_rounds": tree_rounds,
        "linear_rounds": linear_rounds,
        "round_advantage_x": linear_rounds / max(tree_rounds, 1),
        "messages_either": tree_messages,
    }


def ablation_bcast() -> list[dict]:
    analytic = [bcast_costs(n) for n in [2, 8, 32, 128]]
    # Confirm the implementation's message count matches the analytic tree.
    from repro.mpi.launcher import mpirun
    from repro.mpi.router import LocalRouter

    for row in analytic[:3]:  # measure the sizes that are cheap to run
        n = row["ranks"]
        router = LocalRouter(n)
        sent = []
        router.on_send = sent.append

        def app(comm):
            return comm.bcast("x" if comm.rank == 0 else None, root=0, timeout=30.0)

        result = mpirun(app, n, router=router, timeout=60.0)
        assert result.ok
        row["measured_messages"] = len(sent)
        router.close()
    return analytic


def check_bcast(rows: list[dict]) -> None:
    for row in rows:
        if "measured_messages" in row:
            assert row["measured_messages"] == row["messages_either"]
    # Tree depth advantage grows with scale.
    advantages = [row["round_advantage_x"] for row in rows]
    assert advantages == sorted(advantages)
    assert advantages[-1] > 15.0


# ---------------------------------------------------------------------------
# A4: record framing overhead
# ---------------------------------------------------------------------------


def ablation_record_overhead() -> list[dict]:
    rows = []
    fixed = RecordCipher.overhead()
    for payload in [16, 64, 256, 1024, 16 * 1024]:
        rows.append(
            {
                "payload_B": payload,
                "record_B": payload + fixed,
                "overhead_fraction": fixed / (payload + fixed),
            }
        )
    return rows


def check_record_overhead(rows: list[dict]) -> None:
    fractions = [row["overhead_fraction"] for row in rows]
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[0] > 0.5  # tiny payloads drown in framing
    assert fractions[-1] < 0.01  # large frames amortise it away


# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="ablations")
def test_a1_monitoring_ttl(benchmark):
    rows = benchmark.pedantic(ablation_ttl, rounds=1, iterations=1)
    check_ttl(rows)
    save_table("a1_ttl", "A1: monitoring cache TTL — traffic vs staleness", rows)


@pytest.mark.benchmark(group="ablations")
def test_a2_dfs_parameters(benchmark):
    rows = benchmark.pedantic(ablation_dfs, rounds=1, iterations=1)
    check_dfs(rows)
    save_table("a2_dfs", "A2: DFS chunk size and replication factor", rows)


@pytest.mark.benchmark(group="ablations")
def test_a3_broadcast_algorithm(benchmark):
    rows = benchmark.pedantic(ablation_bcast, rounds=1, iterations=1)
    check_bcast(rows)
    save_table("a3_bcast", "A3: binomial-tree vs linear broadcast", rows)


@pytest.mark.benchmark(group="ablations")
def test_a4_record_overhead(benchmark):
    rows = benchmark.pedantic(ablation_record_overhead, rounds=1, iterations=1)
    check_record_overhead(rows)
    save_table("a4_records", "A4: fixed record overhead vs payload size", rows)

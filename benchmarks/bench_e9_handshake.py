"""E9 — SSL-substitute microbenchmarks: handshake and record costs.

Prices the security layer the paper builds on: full mutual-auth
handshake (DH vs RSA key transport, two key sizes) and record-layer
throughput versus plaintext copying.  These are the constants behind
experiment E4's calibrated cost model.
"""

import threading
import time

import pytest

from benchmarks.common import save_table
from repro.security.ca import CertificationAuthority
from repro.security.cipher import (
    RecordCipher,
    derive_session_keys,
    random_master_secret,
)
from repro.security.handshake import accept_secure, connect_secure
from repro.security.rsa import RsaKeyPair
from repro.transport.frames import Frame, FrameKind
from repro.transport.inproc import channel_pair


def run_handshake(ca, clock, key_a, cert_a, key_b, cert_b, mode):
    raw_a, raw_b = channel_pair("bench")
    result = {}

    def server():
        result["b"] = accept_secure(raw_b, key_b, cert_b, ca.public_key, clock)

    thread = threading.Thread(target=server)
    thread.start()
    secure = connect_secure(raw_a, key_a, cert_a, ca.public_key, clock, mode=mode)
    thread.join()
    return secure, result["b"]


def run_experiment() -> list[dict]:
    clock = time.time
    rows = []
    for bits in [512, 1024]:
        ca = CertificationAuthority(key_bits=bits, clock=clock)
        key_a = RsaKeyPair.generate(bits)
        key_b = RsaKeyPair.generate(bits)
        cert_a = ca.issue("a", "proxy", key_a.public)
        cert_b = ca.issue("b", "proxy", key_b.public)
        for mode in ["dh", "rsa"]:
            start = time.perf_counter()
            rounds = 3
            for _ in range(rounds):
                secure_a, secure_b = run_handshake(
                    ca, clock, key_a, cert_a, key_b, cert_b, mode
                )
                secure_a.close()
                secure_b.close()
            elapsed = (time.perf_counter() - start) / rounds
            rows.append(
                {
                    "key_bits": bits,
                    "mode": mode,
                    "handshake_ms": elapsed * 1000,
                }
            )
    return rows


def record_throughput() -> list[dict]:
    keys = derive_session_keys(random_master_secret(), "client")
    rows = []
    for size in [1024, 64 * 1024, 1024 * 1024]:
        blob = b"\x77" * size
        sender, receiver = RecordCipher(keys), RecordCipher(keys)
        rounds = max(2, (4 << 20) // size)
        start = time.perf_counter()
        for _ in range(rounds):
            receiver.open(sender.seal(blob))
        secured = (time.perf_counter() - start) / rounds
        start = time.perf_counter()
        for _ in range(rounds):
            bytes(memoryview(blob))  # plaintext baseline: one copy
        plain = (time.perf_counter() - start) / rounds
        rows.append(
            {
                "bytes": size,
                "secured_MBps": size / secured / 1e6,
                "plaintext_copy_MBps": size / plain / 1e6,
                "cipher_slowdown_x": secured / plain,
            }
        )
    return rows


def check_shape(handshake_rows: list[dict], record_rows: list[dict]) -> None:
    # Bigger keys cost more; encryption costs far more than copying —
    # the economics behind keeping intra-site traffic in cleartext.
    by_mode = {}
    for row in handshake_rows:
        by_mode.setdefault(row["mode"], []).append(row["handshake_ms"])
    for mode, costs in by_mode.items():
        assert costs[-1] > costs[0], f"{mode}: larger keys should cost more"
    for row in record_rows:
        assert row["cipher_slowdown_x"] > 10.0


@pytest.mark.benchmark(group="e9-handshake")
def test_e9_handshake_and_records(benchmark):
    def run():
        return run_experiment(), record_throughput()

    handshake_rows, record_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check_shape(handshake_rows, record_rows)
    save_table(
        "e9_handshake",
        "E9a: mutual-auth handshake cost by key size and exchange mode",
        handshake_rows,
    )
    save_table(
        "e9_records",
        "E9b: record-layer throughput vs plaintext copy",
        record_rows,
    )


@pytest.mark.benchmark(group="e9-handshake")
def test_e9_rsa_keygen(benchmark):
    benchmark.pedantic(lambda: RsaKeyPair.generate(512), rounds=3, iterations=1)


@pytest.mark.benchmark(group="e9-handshake")
def test_e9_rsa_sign(benchmark):
    keypair = RsaKeyPair.generate(512)
    benchmark(lambda: keypair.sign(b"message"))


@pytest.mark.benchmark(group="e9-handshake")
def test_e9_rsa_verify(benchmark):
    keypair = RsaKeyPair.generate(512)
    signature = keypair.sign(b"message")
    benchmark(lambda: keypair.public.verify(b"message", signature))


@pytest.mark.benchmark(group="e9-handshake")
def test_e9_secure_channel_frame_roundtrip(benchmark):
    clock = time.time
    ca = CertificationAuthority(key_bits=512, clock=clock)
    key_a = RsaKeyPair.generate(512)
    key_b = RsaKeyPair.generate(512)
    cert_a = ca.issue("a", "proxy", key_a.public)
    cert_b = ca.issue("b", "proxy", key_b.public)
    secure_a, secure_b = run_handshake(
        ca, clock, key_a, cert_a, key_b, cert_b, "dh"
    )
    frame = Frame(kind=FrameKind.DATA, payload=b"\x42" * 1024)

    def round_trip():
        secure_a.send(frame)
        secure_b.recv(timeout=10.0)

    benchmark(round_trip)
    secure_a.close()
    secure_b.close()

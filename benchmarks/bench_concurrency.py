"""Concurrency-scaling benchmark: reactor vs thread-per-connection I/O.

The tentpole claim of the event-driven core is that tunnel count stops
costing threads: N tunnels share one loop thread instead of N receive
loops.  This benchmark measures both I/O modes at 10/100/500 concurrent
tunnels and records

* **io_threads_added** — threads the I/O layer spawned for N tunnels
  (reactor: O(loops), threaded: O(N)), and
* **frames_per_s** — aggregate delivery rate across all tunnels while a
  single producer fans identical frames across them round-robin.

Tunnels are fabricated from one master secret (both ends derive their
session keys directly, skipping the separately-benchmarked RSA
handshake — 500 handshakes would swamp the measurement) and run over
in-process channels so the comparison isolates the dispatch model from
socket-buffer effects.

Results land in ``BENCH_concurrency.json`` at the repo root, like
``BENCH_fastpath.json``.  Run directly (``python benchmarks/
bench_concurrency.py [--quick]``) or via ``run_all.py concurrency``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Optional

import pytest

from benchmarks.common import save_table
from repro.core.tunnel import Tunnel
from repro.security.cipher import (
    RecordCipher,
    derive_session_keys,
    random_master_secret,
)
from repro.security.handshake import PeerIdentity, SecureChannel
from repro.transport.frames import Frame, FrameKind
from repro.transport.inproc import channel_pair

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_concurrency.json"

_PAYLOAD = b"\x42" * 1024
_SUITE = "shake128"


class _BenchPeer:
    """Stands in for a Certificate in PeerIdentity (bench only)."""

    subject = "bench-peer"
    role = "proxy"


def _secure_pair(name: str) -> tuple[SecureChannel, SecureChannel]:
    """Secure channel pair over an in-process buffer, no RSA handshake."""
    raw_a, raw_b = channel_pair(name)
    master = random_master_secret()
    ck = derive_session_keys(master, "client")
    sk = derive_session_keys(master, "server")
    peer = PeerIdentity(_BenchPeer())
    a = SecureChannel(raw_a, RecordCipher(ck, _SUITE), RecordCipher(sk, _SUITE), peer)
    b = SecureChannel(raw_b, RecordCipher(sk, _SUITE), RecordCipher(ck, _SUITE), peer)
    return a, b


def bench_mode(mode: str, n_tunnels: int, frames_per_tunnel: int) -> dict:
    """One cell of the sweep: N receiving tunnels in ``mode``."""
    total = n_tunnels * frames_per_tunnel
    threads_before = threading.active_count()

    senders: list[SecureChannel] = []
    receivers: list[Tunnel] = []
    seen = [0]
    done = threading.Event()
    lock = threading.Lock()

    def on_frame(frame):
        with lock:
            seen[0] += 1
            if seen[0] >= total:
                done.set()

    for index in range(n_tunnels):
        secure_a, secure_b = _secure_pair(f"conc-{mode}-{index}")
        tunnel = Tunnel(secure_b, f"recv-{index}")
        tunnel.on_frame(FrameKind.DATA, on_frame)
        tunnel.start(io=mode)
        assert tunnel.mode == mode, f"wanted {mode}, got {tunnel.mode}"
        senders.append(secure_a)
        receivers.append(tunnel)

    # Setup (thread creation, channel registration) is outside the clock.
    threads_during = threading.active_count()
    frame = Frame(kind=FrameKind.DATA, payload=_PAYLOAD)
    start = time.perf_counter()
    for _ in range(frames_per_tunnel):
        for sender in senders:
            sender.send(frame)
    assert done.wait(timeout=300.0), f"{mode}/{n_tunnels}: receivers did not drain"
    elapsed = time.perf_counter() - start

    for sender in senders:
        sender.close()
    for tunnel in receivers:
        tunnel.close()
        tunnel.join(timeout=10.0)

    return {
        "mode": mode,
        "tunnels": n_tunnels,
        "frames": total,
        "io_threads_added": threads_during - threads_before,
        "frames_per_s": total / elapsed,
        "MBps": total * len(_PAYLOAD) / elapsed / 1e6,
    }


def run_experiment(quick: bool = False, tunnels: Optional[int] = None) -> dict:
    """``tunnels`` appends an extra sweep tier (full mode only): the
    10k-tunnel run that motivated multi-core sharding uses
    ``--tunnels 10000``, with the frame budget scaled so every tunnel
    still sees traffic."""
    sizes = [10, 50] if quick else [10, 100, 500]
    if tunnels and not quick and tunnels not in sizes:
        sizes.append(tunnels)
    budget = 400 if quick else max(4000, tunnels or 0)
    rows = []
    for n in sizes:
        per = max(4, budget // n)
        for mode in ("threaded", "reactor"):
            rows.append(bench_mode(mode, n, per))

    def cell(mode: str, n: int) -> dict:
        return next(r for r in rows if r["mode"] == mode and r["tunnels"] == n)

    largest = sizes[-1]
    report = {
        "generated_by": "benchmarks/bench_concurrency.py",
        "quick": quick,
        "io_threads_at_max_scale": {
            "tunnels": largest,
            "reactor": cell("reactor", largest)["io_threads_added"],
            "threaded": cell("threaded", largest)["io_threads_added"],
        },
        "reactor_vs_threaded_frames_x": round(
            cell("reactor", largest)["frames_per_s"]
            / cell("threaded", largest)["frames_per_s"],
            2,
        ),
        "rows": rows,
        "notes": (
            "reactor = selectors loop owning every channel; threaded = one "
            "receive loop thread per tunnel (the seed model, REPRO_IO="
            "threaded). io_threads_added counts threads the I/O layer "
            "spawned for N tunnels; frames_per_s is aggregate across all "
            "tunnels with a single round-robin producer. "
            "reactor_vs_threaded_frames_x compares the modes at the "
            "largest sweep tier (where the models diverge; at small tier "
            "counts they are equivalent within run noise — see rows)."
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_tables(quick: bool = False) -> list[dict]:
    """run_all.py entry point: the sweep as printable rows."""
    return run_experiment(quick)["rows"]


def check_shape(report: dict) -> None:
    at_scale = report["io_threads_at_max_scale"]
    # The reactor's whole point: tunnel count must not cost threads.
    assert at_scale["reactor"] <= 3, report
    assert at_scale["threaded"] >= at_scale["tunnels"], report
    # And the thread diet must not cost throughput at realistic scale.
    assert report["reactor_vs_threaded_frames_x"] >= 1.0, report


@pytest.mark.concurrency
@pytest.mark.slow
@pytest.mark.benchmark(group="concurrency")
def test_concurrency_quick(benchmark):
    report = benchmark.pedantic(lambda: run_experiment(quick=True), rounds=1, iterations=1)
    # Quick mode checks plumbing and direction, not full-run targets.
    assert report["io_threads_at_max_scale"]["reactor"] <= 3
    assert report["io_threads_at_max_scale"]["threaded"] >= 50
    save_table(
        "concurrency",
        "Concurrency: reactor vs thread-per-connection",
        run_tables(quick=True),
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--tunnels", type=int, default=None,
        help="extra sweep tier, e.g. 10000 (ignored with --quick)",
    )
    cli = parser.parse_args()
    report = run_experiment(quick=cli.quick, tunnels=cli.tunnels)
    print(json.dumps(report, indent=2))
    if not cli.quick:
        check_shape(report)

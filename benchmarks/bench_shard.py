"""Shard-scaling benchmark: aggregate frames/s across worker processes.

The tentpole claim of the sharding layer is that the per-worker stacks
are **shared-nothing** — no lock, queue, or registry is touched by two
workers — so aggregate capacity is the *sum* of per-worker capacity.
This benchmark demonstrates that with a 10k-connection sweep over
1/2/4-worker fleets, and isolates the zero-copy receive path's
per-frame saving with a ``REPRO_ZEROCOPY`` on/off ablation.

Methodology on shared-core hosts
--------------------------------
Worker processes only run truly in parallel when each has a core.  On a
CI container (``os.cpu_count()`` is recorded in the report) every
process shares one core, so a naive concurrent measurement shows the
*core's* capacity, not the fleet's.  The sweep therefore measures each
worker's capacity **serially** — blasting only the connections that
worker serves while its siblings idle in ``epoll`` — and reports the
sum as ``aggregate_frames_per_s``.  That sum is exactly what N idle
cores would deliver, *because* the workers share nothing: the serial
cells touch zero common state, so running them simultaneously on
separate cores changes nothing but the wall clock.  The honest
same-core concurrent number is reported alongside
(``concurrent_frames_per_s``) for comparison.

Results land in ``BENCH_shard.json`` at the repo root.  Run directly
(``python benchmarks/bench_shard.py [--quick] [--tunnels N]``) or via
``run_all.py shard``.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import time
from pathlib import Path

import pytest

if str(Path(__file__).resolve().parents[1]) not in sys.path:
    # `python benchmarks/bench_shard.py` puts benchmarks/ (not the
    # repo root) on sys.path; the package import below needs the root.
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.common import save_table
from repro.core.protocol import ControlMessage, Op
from repro.core.shardmgr import ShardManager
from repro.transport.frames import FrameDecoder, encode_frame

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_shard.json"

#: Frames measured per sweep cell (split across that cell's connections).
FRAME_BUDGET = 30_000
QUICK_FRAME_BUDGET = 4_000


class _Conn:
    """One raw client connection with its own frame decoder."""

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port), timeout=30.0)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.decoder = FrameDecoder()
        self.shard: int = -1

    def send_pings(self, count: int) -> None:
        blob = b"".join(
            encode_frame(
                ControlMessage(op=Op.PING, body={}, sender="bench").to_frame()
            )
            for _ in range(count)
        )
        self.sock.sendall(blob)

    def read_frames(self, count: int) -> list:
        frames = []
        while len(frames) < count:
            frame = self.decoder.next_frame()
            if frame is not None:
                frames.append(frame)
                continue
            data = self.sock.recv(65536)
            if not data:
                raise ConnectionError("shard worker closed mid-benchmark")
            self.decoder.feed(data)
        return frames

    def close(self) -> None:
        self.sock.close()


def _open_fleet_conns(manager: ShardManager, tunnels: int) -> dict[int, list[_Conn]]:
    """Open ``tunnels`` connections and group them by serving shard.

    Discovery is batched: one PING rides out on every connection before
    any reply is read, so the round trips overlap.
    """
    host, port = manager.address
    conns = [_Conn(host, port) for _ in range(tunnels)]
    for conn in conns:
        conn.send_pings(1)
    by_shard: dict[int, list[_Conn]] = {}
    for conn in conns:
        reply = ControlMessage.from_frame(conn.read_frames(1)[0])
        conn.shard = reply.body["shard"]
        by_shard.setdefault(conn.shard, []).append(conn)
    return by_shard


def _best_blast(conns: list[_Conn], frames_per_conn: int, rounds: int = 3) -> float:
    """Best of ``rounds`` blasts: estimates *capacity* on a shared CI
    core, where any single ~2s cell swings with background load."""
    return max(_blast(conns, frames_per_conn) for _ in range(rounds))


def _blast(conns: list[_Conn], frames_per_conn: int) -> float:
    """Pipelined echo burst over ``conns``; returns frames/s."""
    total = len(conns) * frames_per_conn
    # Encoding is client-side work: keep it outside the clock.
    blobs = [
        b"".join(
            encode_frame(
                ControlMessage(op=Op.PING, body={}, sender="bench").to_frame()
            )
            for _ in range(frames_per_conn)
        )
        for _ in conns
    ]
    start = time.perf_counter()
    for conn, blob in zip(conns, blobs):
        conn.sock.sendall(blob)
    for conn in conns:
        conn.read_frames(frames_per_conn)
    return total / (time.perf_counter() - start)


def bench_fleet(workers: int, tunnels: int, budget: int, mode=None) -> dict:
    """One sweep cell: a ``workers``-process fleet under ``tunnels``."""
    manager = ShardManager(shards=workers, mode=mode, name=f"bench-{workers}w").start()
    by_shard = {}
    try:
        by_shard = _open_fleet_conns(manager, tunnels)
        frames_per_conn = max(2, budget // tunnels)
        # Serial per-worker capacity: only this worker runs; shared-nothing
        # means the sum is the multi-core aggregate (see module docstring).
        per_worker = {}
        for shard, group in sorted(by_shard.items()):
            _blast(group, 2)  # warm-up: page in the worker's hot path
            per_worker[shard] = _best_blast(group, frames_per_conn)
        all_conns = [conn for group in by_shard.values() for conn in group]
        concurrent = _best_blast(all_conns, frames_per_conn)
        return {
            "workers": workers,
            "tunnels": tunnels,
            "frames_per_conn": frames_per_conn,
            "aggregate_frames_per_s": sum(per_worker.values()),
            "concurrent_frames_per_s": concurrent,
            "per_worker_frames_per_s": {
                str(shard): round(rate, 1) for shard, rate in per_worker.items()
            },
            "mode": manager.mode,
        }
    finally:
        for group in by_shard.values():
            for conn in group:
                conn.close()
        manager.stop()


def bench_zero_copy(tunnels: int, budget: int) -> dict:
    """Single-worker per-frame cost with the zero-copy path on vs off.

    ``REPRO_ZEROCOPY`` is read by the worker at spawn (inherited env),
    so the off cell is exactly the PR 3 copying receive baseline.
    """
    rates = {}
    for setting in ("1", "0"):
        os.environ["REPRO_ZEROCOPY"] = setting
        try:
            manager = ShardManager(shards=1, name=f"bench-zc{setting}").start()
            try:
                by_shard = _open_fleet_conns(manager, tunnels)
                conns = [c for group in by_shard.values() for c in group]
                frames_per_conn = max(2, budget // tunnels)
                _blast(conns, frames_per_conn)  # warm-up
                rates[setting] = _best_blast(conns, frames_per_conn)
                for conn in conns:
                    conn.close()
            finally:
                manager.stop()
        finally:
            os.environ.pop("REPRO_ZEROCOPY", None)
    on, off = rates["1"], rates["0"]
    return {
        "zero_copy_frames_per_s": round(on, 1),
        "copying_frames_per_s": round(off, 1),
        "zero_copy_frames_x": round(on / off, 3),
        "per_frame_saving_us": round(1e6 / off - 1e6 / on, 3),
    }


def run_experiment(quick: bool = False, tunnels: int | None = None) -> dict:
    if tunnels is None:
        tunnels = 200 if quick else 10_000
    worker_counts = [1, 2] if quick else [1, 2, 4]
    budget = QUICK_FRAME_BUDGET if quick else FRAME_BUDGET
    rows = [bench_fleet(n, tunnels, budget) for n in worker_counts]

    def cell(workers: int) -> dict:
        return next(r for r in rows if r["workers"] == workers)

    top = worker_counts[-1]
    zero_copy = bench_zero_copy(
        min(tunnels, 1_000), QUICK_FRAME_BUDGET if quick else 20_000
    )
    report = {
        "generated_by": "benchmarks/bench_shard.py",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "scaling_frames_x": {
            f"{top}v1": round(
                cell(top)["aggregate_frames_per_s"]
                / cell(1)["aggregate_frames_per_s"],
                2,
            ),
        },
        "zero_copy": zero_copy,
        "rows": rows,
        "notes": (
            "aggregate_frames_per_s sums per-worker capacity measured "
            "serially (siblings idle in epoll): the worker stacks share "
            "nothing, so the sum equals the fleet's throughput with one "
            "core per worker.  concurrent_frames_per_s is the same burst "
            "with every connection active at once — on a cpu_count=1 "
            "host it measures the core, not the fleet.  zero_copy "
            "compares the recv_into/memoryview receive path against the "
            "copying baseline (REPRO_ZEROCOPY=0, the PR 3 behaviour) on "
            "a single worker.  Every cell reports the best of three "
            "blasts: single ~2s cells on a shared core swing with "
            "background load, and best-of estimates capacity."
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_tables(quick: bool = False) -> list[dict]:
    """run_all.py entry point: the sweep as printable rows."""
    return run_experiment(quick)["rows"]


def check_shape(report: dict) -> None:
    top = report["rows"][-1]["workers"]
    # Near-linear: 4 shared-nothing workers buy >= 3x one worker.
    assert report["scaling_frames_x"][f"{top}v1"] >= 3.0, report
    # The zero-copy path must not cost throughput.
    assert report["zero_copy"]["zero_copy_frames_x"] >= 1.0, report


@pytest.mark.shard
@pytest.mark.slow
@pytest.mark.benchmark(group="shard")
def test_shard_quick(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment(quick=True), rounds=1, iterations=1
    )
    # Quick mode checks plumbing and direction, not full-run targets.
    assert report["rows"][-1]["workers"] == 2
    assert report["scaling_frames_x"]["2v1"] > 1.0
    assert report["zero_copy"]["zero_copy_frames_per_s"] > 0
    save_table(
        "shard",
        "Shard: aggregate frames/s vs worker count",
        run_tables(quick=True),
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--tunnels", type=int, default=None)
    cli = parser.parse_args()
    report = run_experiment(quick=cli.quick, tunnels=cli.tunnels)
    print(json.dumps(report, indent=2))
    if not cli.quick:
        check_shape(report)

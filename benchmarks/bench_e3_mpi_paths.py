"""E3 — Figure 3a vs 3b: MPI locally vs through the proxy multiplexer.

The same ping-pong application runs on one site (direct LAN delivery)
and across two sites (virtual slaves + encrypted tunnel).  Series:
message size → round-trip latency on each path, plus the multiplexer's
forwarding accounting.
"""

import time

import pytest

from benchmarks.common import save_table
from repro.core.grid import Grid

SIZES = [64, 1024, 16 * 1024]
ROUNDS = 30


def ping_pong(comm, payload_bytes, rounds):
    payload = b"\x5a" * payload_bytes
    if comm.rank == 0:
        start = time.perf_counter()
        for _ in range(rounds):
            comm.send(payload, dest=1, tag=1)
            comm.recv(source=1, tag=2, timeout=120.0)
        return (time.perf_counter() - start) / rounds
    for _ in range(rounds):
        comm.recv(source=0, tag=1, timeout=120.0)
        comm.send(payload, dest=0, tag=2)
    return None


def run_experiment() -> list[dict]:
    local_grid = Grid()
    local_grid.add_site("one", nodes=2)
    remote_grid = Grid()
    remote_grid.add_site("left", nodes=1)
    remote_grid.add_site("right", nodes=1)
    remote_grid.connect_all()
    rows = []
    try:
        for size in SIZES:
            local = local_grid.run_mpi(
                ping_pong, nprocs=2, args=(size, ROUNDS), timeout=300.0
            )
            local.raise_first()
            remote = remote_grid.run_mpi(
                ping_pong, nprocs=2, args=(size, ROUNDS), timeout=300.0
            )
            remote.raise_first()
            local_rtt = local.returns[0]
            remote_rtt = remote.returns[0]
            rows.append(
                {
                    "bytes": size,
                    "local_rtt_us": local_rtt * 1e6,
                    "proxied_rtt_us": remote_rtt * 1e6,
                    "proxy_overhead_x": remote_rtt / local_rtt,
                }
            )
    finally:
        local_grid.shutdown()
        remote_grid.shutdown()
    return rows


def check_shape(rows: list[dict]) -> None:
    # The tunneled path pays for serialisation + encryption at the edges;
    # the local path must stay cheaper at every size (Fig. 3a vs 3b).
    for row in rows:
        assert row["proxy_overhead_x"] > 1.0, row


@pytest.mark.benchmark(group="e3-mpi-paths")
def test_e3_local_vs_proxied(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    check_shape(rows)
    save_table(
        "e3_mpi_paths",
        "E3 (Fig. 3a/3b): MPI ping-pong, direct LAN vs proxy tunnel",
        rows,
    )


@pytest.mark.benchmark(group="e3-mpi-paths")
def test_e3_local_pingpong_latency(benchmark):
    grid = Grid()
    grid.add_site("one", nodes=2)

    def run():
        result = grid.run_mpi(ping_pong, nprocs=2, args=(1024, 5), timeout=120.0)
        result.raise_first()

    try:
        benchmark.pedantic(run, rounds=3, iterations=1)
    finally:
        grid.shutdown()


@pytest.mark.benchmark(group="e3-mpi-paths")
def test_e3_tunneled_pingpong_latency(benchmark):
    grid = Grid()
    grid.add_site("left", nodes=1)
    grid.add_site("right", nodes=1)
    grid.connect_all()

    def run():
        result = grid.run_mpi(ping_pong, nprocs=2, args=(1024, 5), timeout=120.0)
        result.raise_first()

    try:
        benchmark.pedantic(run, rounds=3, iterations=1)
    finally:
        grid.shutdown()

"""E6 — round-robin vs load-balanced scheduling.

"In its original form, the MPI uses the round-robin method to distribute
the processes among the nodes"; the paper's scheduler instead "provides
balanced process distribution using the grid's status information".

Both schedulers place the same heavy-tailed job stream on the same grid;
the assignments then replay on the discrete-event simulator (per-node
FIFO queues) to obtain true makespans.  Swept over node heterogeneity.
Expected shape: parity on a homogeneous grid, load balancing winning by
a growing factor as speeds diverge.
"""

import pytest

from benchmarks.common import save_table
from repro.control.scheduler import (
    Job,
    LoadBalancedScheduler,
    NodeView,
    RoundRobinScheduler,
)
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStream
from repro.simulation.resources import NodeResources
from repro.workloads.generators import JobStreamSpec, generate_job_stream

HETEROGENEITY = {
    "uniform (1x)": [1.0] * 6,
    "mild (2x)": [1.0, 1.0, 1.0, 1.0, 2.0, 2.0],
    "strong (4x)": [0.5, 0.5, 1.0, 1.0, 2.0, 4.0],
    "extreme (16x)": [0.25, 0.25, 0.5, 1.0, 2.0, 4.0],
}


def replay_fifo(assignments, jobs_by_id, speeds) -> float:
    sim = Simulator()
    nodes = {
        name: NodeResources(sim, name, cpu_speed=speed)
        for name, speed in speeds.items()
    }
    queues: dict[str, list[float]] = {name: [] for name in speeds}
    for job_id, node in assignments:
        queues[node].append(jobs_by_id[job_id].work)

    def drain(node, works):
        for work in works:
            yield node.submit(cpu_work=work)

    for name, works in queues.items():
        if works:
            sim.spawn(drain(nodes[name], works), name=f"drain-{name}")
    return sim.run()


def run_case(label: str, speeds: list[float]) -> dict:
    stream = generate_job_stream(
        JobStreamSpec(count=150, work_shape=1.4, work_minimum=5.0, ram_bytes=0),
        RandomStream(2003, f"e6-{label}"),
    )
    jobs = [a.job for a in stream]
    jobs_by_id = {j.job_id: j for j in jobs}

    def views():
        return [
            NodeView(name=f"n{i}", site="grid", speed=s)
            for i, s in enumerate(speeds)
        ]

    speed_map = {f"n{i}": s for i, s in enumerate(speeds)}
    rr = RoundRobinScheduler(views())
    lb = LoadBalancedScheduler(views())
    for job in jobs:
        rr.assign(job)
        lb.assign(job)
    rr_makespan = replay_fifo(rr.assignments, jobs_by_id, speed_map)
    lb_makespan = replay_fifo(lb.assignments, jobs_by_id, speed_map)
    return {
        "grid": label,
        "rr_makespan_s": rr_makespan,
        "lb_makespan_s": lb_makespan,
        "lb_speedup_x": rr_makespan / lb_makespan,
    }


def run_experiment() -> list[dict]:
    return [run_case(label, speeds) for label, speeds in HETEROGENEITY.items()]


def check_shape(rows: list[dict]) -> None:
    # LB never loses, and its advantage grows with heterogeneity.
    speedups = [row["lb_speedup_x"] for row in rows]
    assert all(s >= 0.99 for s in speedups)
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 1.5  # decisive on the extreme grid


@pytest.mark.benchmark(group="e6-scheduling")
def test_e6_rr_vs_lb_makespan(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    check_shape(rows)
    save_table(
        "e6_scheduling",
        "E6: makespan, round-robin vs load-balanced, by heterogeneity",
        rows,
    )


@pytest.mark.benchmark(group="e6-scheduling")
def test_e6_assignment_throughput(benchmark):
    """Scheduler decision cost per job (the online path)."""
    views = [
        NodeView(name=f"n{i}", site="grid", speed=1.0 + (i % 4)) for i in range(64)
    ]
    scheduler = LoadBalancedScheduler(views)
    jobs = iter(Job(work=float(i % 17 + 1)) for i in range(1_000_000))

    benchmark(lambda: scheduler.assign(next(jobs)))

"""Run every experiment and print its table (no pytest needed).

Usage:  python benchmarks/run_all.py [--quick] [e4 e6 fastpath ...]

Each experiment module exposes ``run_experiment`` (plus shape checks);
this driver executes them in order and prints the same tables the
pytest benchmarks save under benchmarks/results/.

``--quick`` runs a smoke pass: experiments that support it (currently
``fastpath``, ``concurrency``, ``shard``, ``wms``, ``auth`` and ``tests``) shrink their
workloads so the whole sweep finishes in seconds — useful for CI and for
checking nothing is broken before a full measurement run.

The ``tests`` profile runs the pytest suite in stages (it is not listed
in the default sweep; ask for it by name).  Tier-1 runs twice, once per
I/O mode (reactor and ``REPRO_IO=threaded``).  ``--quick`` limits it to
unit + property tests; the full profile adds integration and the chaos
resilience suite (``-m chaos``), and — when ``pytest-cov`` happens to be
installed — enforces the coverage gate ``--cov=repro
--cov-fail-under=80`` on the tier-1 stage.  Without ``pytest-cov`` the
gate is skipped, never failed.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _ROOT not in sys.path:
    # `python benchmarks/run_all.py` puts benchmarks/ (not the repo
    # root) on sys.path; the package imports below need the root.
    sys.path.insert(0, _ROOT)

from benchmarks.common import format_table


def run_test_profile(quick: bool) -> list[dict]:
    """Run the pytest suite in stages; one table row per stage.

    Tier-1 runs under both I/O modes: the reactor (default) and the
    ``REPRO_IO=threaded`` escape hatch, so neither path can rot.
    """
    if quick:
        stages = [
            ("unit+property (reactor)", ["tests/unit", "tests/property"], "reactor"),
            ("unit (threaded)", ["tests/unit"], "threaded"),
        ]
    else:
        stages = [
            ("tier-1 (reactor, full default run)", ["tests"], "reactor"),
            ("tier-1 (REPRO_IO=threaded)", ["tests"], "threaded"),
            ("chaos resilience", ["-m", "chaos", "tests/chaos"], "reactor"),
        ]
    has_cov = importlib.util.find_spec("pytest_cov") is not None
    env = dict(os.environ)
    src = os.path.join(_ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    rows = []
    for name, args, io in stages:
        cmd = [sys.executable, "-m", "pytest", "-q", *args]
        gated = not quick and has_cov and name.startswith("tier-1 (reactor")
        if gated:
            cmd += ["--cov=repro", "--cov-fail-under=80"]
        start = time.perf_counter()
        stage_env = dict(env, REPRO_IO=io)
        result = subprocess.run(cmd, cwd=_ROOT, env=stage_env)
        rows.append(
            {
                "stage": name,
                "coverage gate": "on" if gated else "off (pytest-cov absent)"
                if not quick else "off (quick)",
                "outcome": "passed" if result.returncode == 0 else
                f"FAILED (rc={result.returncode})",
                "seconds": round(time.perf_counter() - start, 1),
            }
        )
    return rows


def run_gridlint() -> list[dict]:
    """Run the invariant checker over ``src/repro``; one summary row.

    Part of the default sweep: a measurement run on a tree that violates
    its own concurrency/observability invariants is not worth keeping.
    """
    cmd = [sys.executable, "-m", "tools.gridlint", "src/repro", "--format=json"]
    start = time.perf_counter()
    result = subprocess.run(cmd, cwd=_ROOT, capture_output=True, text=True)
    try:
        payload = json.loads(result.stdout or "{}")
    except ValueError:
        payload = {}
    if result.returncode != 0 and result.stdout:
        print(result.stdout)
    return [
        {
            "files": payload.get("checked_files", "?"),
            "rules": len(payload.get("rules", [])),
            "findings": len(payload.get("findings", [])),
            "suppressed": len(payload.get("suppressed", [])),
            "baselined": len(payload.get("baselined", [])),
            "outcome": "passed"
            if result.returncode == 0
            else f"FAILED (rc={result.returncode})",
            "seconds": round(time.perf_counter() - start, 1),
        }
    ]


def main(argv: list[str]) -> int:
    import benchmarks.bench_e1_topology as e1
    import benchmarks.bench_e2_layers as e2
    import benchmarks.bench_e3_mpi_paths as e3
    import benchmarks.bench_e4_edge_tunneling as e4
    import benchmarks.bench_e5_monitoring as e5
    import benchmarks.bench_e6_scheduling as e6
    import benchmarks.bench_e7_failures as e7
    import benchmarks.bench_e8_tickets as e8
    import benchmarks.bench_e9_handshake as e9
    import benchmarks.bench_e10_multiproxy as e10
    import benchmarks.bench_e11_isolation as e11
    import benchmarks.bench_e12_owner_priority as e12
    import benchmarks.bench_auth as auth
    import benchmarks.bench_concurrency as concurrency
    import benchmarks.bench_fastpath as fastpath
    import benchmarks.bench_obs as obs
    import benchmarks.bench_racesan as racesan
    import benchmarks.bench_shard as shard
    import benchmarks.bench_wms as wms

    quick = "--quick" in argv
    selected = [a for a in argv if a != "--quick"]

    experiments = {
        "e1": lambda: [("E1 (Fig. 1): grid construction", e1.run_experiment())],
        "e2": lambda: [("E2 (Fig. 2): layer costs", e2.run_experiment())],
        "e3": lambda: [("E3 (Fig. 3a/3b): MPI paths", e3.run_experiment())],
        "e4": lambda: (
            lambda model: [
                ("E4a: crypto work vs cluster size", e4.sweep_cluster_size(model)),
                ("E4b: crypto work vs locality", e4.sweep_locality(model)),
            ]
        )(e4.calibrate_cost_model()),
        "e5": lambda: [("E5: monitoring overhead", e5.run_experiment())],
        "e6": lambda: [("E6: RR vs LB makespan", e6.run_experiment())],
        "e7": lambda: [
            ("E7a: capacity after failure", e7.sweep_capacity()),
            ("E7b: detection latency", e7.sweep_detection()),
        ],
        "e8": lambda: [("E8: ticket amortisation", e8.run_experiment())],
        "e9": lambda: [
            ("E9a: handshake cost", e9.run_experiment()),
            ("E9b: record throughput", e9.record_throughput()),
        ],
        "e10": lambda: [("E10: proxies per site", e10.run_experiment())],
        "e11": lambda: [("E11: crash isolation", e11.run_experiment())],
        "e12": lambda: [("E12: owner priority", e12.run_experiment())],
        "fastpath": lambda: (
            lambda report: [
                ("Fastpath: record cipher seal+open", report["cipher"]),
                ("Fastpath: frame codec decode", report["codec"]),
                ("Fastpath: tunnel end-to-end", report["tunnel"]),
            ]
        )(fastpath.run_experiment(quick=quick)),
        "concurrency": lambda: [
            ("Concurrency: reactor vs thread-per-connection",
             concurrency.run_tables(quick=quick)),
        ],
        "obs": lambda: [
            ("Obs: instrumentation overhead (gate <5% on tunnel_echo)",
             obs.run_tables(quick=quick)),
        ],
        "racesan": lambda: [
            ("Racesan: sanitizer overhead (gate <5% on tunnel_echo)",
             racesan.run_tables(quick=quick)),
        ],
        "shard": lambda: [
            ("Shard: aggregate frames/s vs worker count",
             shard.run_tables(quick=quick)),
        ],
        "wms": lambda: [
            ("WMS: matchmaking vs round-robin, chaos kill, durability",
             wms.run_tables(quick=quick)),
        ],
        "auth": lambda: [
            ("Auth: token vs RSA decisions, handshake resumption, revocation",
             auth.run_tables(quick=quick)),
        ],
        "gridlint": lambda: [
            ("Gridlint: invariant checks over src/repro", run_gridlint()),
        ],
        "tests": lambda: [
            ("Test profile " + ("(quick)" if quick else "(full)"),
             run_test_profile(quick)),
        ],
    }
    wanted = selected or [name for name in experiments if name != "tests"]
    exit_code = 0
    for name in wanted:
        if name not in experiments:
            print(f"unknown experiment: {name!r} (know {sorted(experiments)})")
            return 1
        start = time.perf_counter()
        for title, rows in experiments[name]():
            print(format_table(title, rows))
            if any("FAILED" in str(value) for row in rows for value in row.values()):
                exit_code = 1
        print(f"[{name} took {time.perf_counter() - start:.1f}s]\n")
    return exit_code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

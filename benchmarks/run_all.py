"""Run every experiment and print its table (no pytest needed).

Usage:  python benchmarks/run_all.py [--quick] [e4 e6 fastpath ...]

Each experiment module exposes ``run_experiment`` (plus shape checks);
this driver executes them in order and prints the same tables the
pytest benchmarks save under benchmarks/results/.

``--quick`` runs a smoke pass: experiments that support it (currently
``fastpath``) shrink their workloads so the whole sweep finishes in
seconds — useful for CI and for checking nothing is broken before a
full measurement run.
"""

from __future__ import annotations

import sys
import time

from benchmarks.common import format_table


def main(argv: list[str]) -> int:
    import benchmarks.bench_e1_topology as e1
    import benchmarks.bench_e2_layers as e2
    import benchmarks.bench_e3_mpi_paths as e3
    import benchmarks.bench_e4_edge_tunneling as e4
    import benchmarks.bench_e5_monitoring as e5
    import benchmarks.bench_e6_scheduling as e6
    import benchmarks.bench_e7_failures as e7
    import benchmarks.bench_e8_tickets as e8
    import benchmarks.bench_e9_handshake as e9
    import benchmarks.bench_e10_multiproxy as e10
    import benchmarks.bench_e11_isolation as e11
    import benchmarks.bench_e12_owner_priority as e12
    import benchmarks.bench_fastpath as fastpath

    quick = "--quick" in argv
    selected = [a for a in argv if a != "--quick"]

    experiments = {
        "e1": lambda: [("E1 (Fig. 1): grid construction", e1.run_experiment())],
        "e2": lambda: [("E2 (Fig. 2): layer costs", e2.run_experiment())],
        "e3": lambda: [("E3 (Fig. 3a/3b): MPI paths", e3.run_experiment())],
        "e4": lambda: (
            lambda model: [
                ("E4a: crypto work vs cluster size", e4.sweep_cluster_size(model)),
                ("E4b: crypto work vs locality", e4.sweep_locality(model)),
            ]
        )(e4.calibrate_cost_model()),
        "e5": lambda: [("E5: monitoring overhead", e5.run_experiment())],
        "e6": lambda: [("E6: RR vs LB makespan", e6.run_experiment())],
        "e7": lambda: [
            ("E7a: capacity after failure", e7.sweep_capacity()),
            ("E7b: detection latency", e7.sweep_detection()),
        ],
        "e8": lambda: [("E8: ticket amortisation", e8.run_experiment())],
        "e9": lambda: [
            ("E9a: handshake cost", e9.run_experiment()),
            ("E9b: record throughput", e9.record_throughput()),
        ],
        "e10": lambda: [("E10: proxies per site", e10.run_experiment())],
        "e11": lambda: [("E11: crash isolation", e11.run_experiment())],
        "e12": lambda: [("E12: owner priority", e12.run_experiment())],
        "fastpath": lambda: (
            lambda report: [
                ("Fastpath: record cipher seal+open", report["cipher"]),
                ("Fastpath: frame codec decode", report["codec"]),
                ("Fastpath: tunnel end-to-end", report["tunnel"]),
            ]
        )(fastpath.run_experiment(quick=quick)),
    }
    wanted = selected or list(experiments)
    for name in wanted:
        if name not in experiments:
            print(f"unknown experiment: {name!r} (know {sorted(experiments)})")
            return 1
        start = time.perf_counter()
        for title, rows in experiments[name]():
            print(format_table(title, rows))
        print(f"[{name} took {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""E11 — reliability of external MPI support.

The paper argues for supporting MPI *outside* the application: "the
internal insertion of a code in the application increases the
probability of failures triggered by the application.  In the case of an
external approach, the identification of failures and their effect on
the architecture can be reduced more effectively."

Measured on the live runtime: inject crashes into MPI ranks and count
what else keeps working.  Under the external (proxy) model the
middleware is a separate entity, so the grid must stay fully
serviceable.  The embedded comparator models grid code linked into the
application: a crashing rank takes its node's grid services with it
(capacity loss proportional to crashes).
"""

import pytest

from benchmarks.common import save_table
from repro.core.grid import Grid

CRASH_COUNTS = [0, 1, 2, 3]
NODES_TOTAL = 6


def run_external(crashes: int) -> dict:
    """Real runtime: crash ``crashes`` ranks, then test every service."""
    grid = Grid()
    grid.add_site("A", nodes=3)
    grid.add_site("B", nodes=3)
    grid.connect_all()
    grid.add_user("alice", "pw")
    grid.grant("user:alice", "site:*", "submit")
    try:
        def crashing_app(comm):
            if comm.rank < crashes:
                raise RuntimeError(f"rank {comm.rank} crashed")
            return "ok"

        result = grid.run_mpi(crashing_app, nprocs=6, timeout=120.0)
        survivors = sum(1 for r in result.returns if r == "ok")
        # Post-crash: every grid service must still work.
        job_ok = grid.submit_job(
            "alice", "pw", "echo", {"value": 1}, origin_site="A", target_site="B"
        ) == 1
        status_ok = len(grid.global_status()) == 2
        mpi_ok = grid.run_mpi(lambda c: c.size, nprocs=4, timeout=120.0).ok
        return {
            "rank_survivors": survivors,
            "middleware_alive": job_ok and status_ok and mpi_ok,
            "capacity_after": 1.0,  # no node lost grid services
        }
    finally:
        grid.shutdown()


def embedded_model(crashes: int) -> dict:
    """Embedded comparator: a crash kills its node's grid services too."""
    lost_nodes = min(crashes, NODES_TOTAL)
    return {
        "middleware_alive": lost_nodes == 0 or lost_nodes < NODES_TOTAL,
        "capacity_after": (NODES_TOTAL - lost_nodes) / NODES_TOTAL,
    }


def run_experiment() -> list[dict]:
    rows = []
    for crashes in CRASH_COUNTS:
        external = run_external(crashes)
        embedded = embedded_model(crashes)
        rows.append(
            {
                "injected_crashes": crashes,
                "external_capacity": external["capacity_after"],
                "embedded_capacity": embedded["capacity_after"],
                "external_middleware_ok": external["middleware_alive"],
                "rank_survivors": external["rank_survivors"],
            }
        )
    return rows


def check_shape(rows: list[dict]) -> None:
    for row in rows:
        # External support: the middleware never goes down and no
        # capacity is lost, however many ranks crash.
        assert row["external_middleware_ok"]
        assert row["external_capacity"] == 1.0
        assert row["rank_survivors"] == 6 - row["injected_crashes"]
    # Embedded model bleeds capacity with every crash.
    embedded = [row["embedded_capacity"] for row in rows]
    assert embedded == sorted(embedded, reverse=True)
    assert embedded[-1] < 1.0


@pytest.mark.benchmark(group="e11-isolation")
def test_e11_crash_isolation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    check_shape(rows)
    save_table(
        "e11_isolation",
        "E11: application crashes vs middleware survival, external vs embedded",
        rows,
    )

"""E10 — more than one proxy per site.

"At least one proxy server per site is required to compose the grid,
although configurations with more than one proxy server per site are
also accepted."

The proxy is the one place all inter-site traffic funnels through, so it
is the natural bottleneck; extra proxies stripe the edge traffic.  On
the simulated network: site A pushes a fixed volume to site B over k
parallel proxy pairs (k WAN links), messages striped round-robin.
Expected shape: transfer completion time ~ 1/k while the WAN links are
the bottleneck.
"""

import pytest

from benchmarks.common import save_table
from repro.simulation.engine import Simulator
from repro.simulation.network import WAN_PROFILE, Network

MESSAGES = 200
MESSAGE_BYTES = 64 * 1024


def run_transfer(proxies: int) -> float:
    """Completion time of the striped transfer with k proxy pairs."""
    sim = Simulator()
    net = Network(sim)
    arrivals = []
    for k in range(proxies):
        net.add_host(f"pa{k}")
        net.add_host(f"pb{k}")
        net.connect(
            f"pa{k}",
            f"pb{k}",
            latency=WAN_PROFILE["latency"],
            bandwidth=WAN_PROFILE["bandwidth"],
        )
        net.hosts[f"pb{k}"].on_packet(lambda p: arrivals.append(sim.now))
    for index in range(MESSAGES):
        k = index % proxies
        net.hosts[f"pa{k}"].send(f"pb{k}", size=MESSAGE_BYTES)
    sim.run()
    assert len(arrivals) == MESSAGES
    return max(arrivals)


def run_experiment() -> list[dict]:
    rows = []
    base = None
    for proxies in [1, 2, 3, 4]:
        completion = run_transfer(proxies)
        base = base or completion
        rows.append(
            {
                "proxies_per_site": proxies,
                "transfer_complete_s": completion,
                "speedup_x": base / completion,
                "aggregate_MBps": MESSAGES * MESSAGE_BYTES / completion / 1e6,
            }
        )
    return rows


def check_shape(rows: list[dict]) -> None:
    speedups = [row["speedup_x"] for row in rows]
    assert speedups == sorted(speedups)
    # Near-linear striping while the WAN is the bottleneck.
    assert speedups[1] > 1.8
    assert speedups[3] > 3.5


@pytest.mark.benchmark(group="e10-multiproxy")
def test_e10_proxy_striping(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    check_shape(rows)
    save_table(
        "e10_multiproxy",
        "E10: inter-site transfer vs proxies per site (simulated WAN)",
        rows,
    )


@pytest.mark.benchmark(group="e10-multiproxy")
def test_e10_directory_supports_extra_proxies(benchmark):
    """Membership bookkeeping for multi-proxy sites (runtime path)."""
    from repro.core.routing import GridDirectory

    def run():
        directory = GridDirectory()
        directory.register_site("A", "proxy.A", "addr.A")
        for k in range(3):
            directory.register_extra_proxy("A", f"proxy.A{k}", f"addr.A{k}")
        assert len(directory.proxies_of_site("A")) == 4

    benchmark(run)

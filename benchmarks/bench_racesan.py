"""Racesan — overhead gate for the data-race sanitizer.

The sanitizer instruments attribute access on the hot shared classes
(``FrameDecoder``, ``ReactorTcpChannel``, the metrics registry), so its
cost rides the same data plane the obs gate protects.  Measured on the
fastpath suite's tunnel scenario: end-to-end frames/s through two secure
reactor tunnels over TCP loopback.

* **tunnel_echo_idle** — sanitizer installed but not recording, vs not
  installed at all.  This is what every default pytest session pays on
  every test (the root conftest installs at configure time), so it is
  the **gated** number: only the write path stays wrapped while idle —
  the attribute-*lookup* wrapper is patched in solely while recording —
  and that residue must stay under the 5% budget.
* **tunnel_echo_recording** — a recording sanitizer plus the lock-order
  watchdog, the exact chaos/integration-suite configuration.
  Report-only: full lockset refinement on every sampled access is real
  work by design (classic Eraser costs integer multiples, not percent),
  and the suites that opt in buy race detection with it.  The run also
  asserts the sanitizer actually sampled the path and found it clean.

Interleaved best-of-N like the obs gate.  Writes ``BENCH_racesan.json``;
run via ``python benchmarks/run_all.py racesan`` (CI uses ``--quick``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from benchmarks.bench_obs import _best_of, _overhead_pct, _tunnel_echo_rate
from benchmarks.common import save_table
from repro.obs import lockwatch, racesan

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_racesan.json"

GATE_LIMIT_PCT = 5.0


def _idle_rate(installed: bool, count: int) -> float:
    """Frames/s with the sanitizer idle (installed, not recording)."""
    if not installed:
        return _tunnel_echo_rate(True, count)
    fresh = racesan.active() is None
    if fresh:
        racesan.install()
    try:
        return _tunnel_echo_rate(True, count)
    finally:
        if fresh:
            racesan.uninstall()


def _recording_rate(count: int) -> float:
    """Frames/s under the full chaos/integration configuration."""
    # The sanitizer reads candidate locksets from the lock-order
    # watchdog; standalone (outside pytest) it is not installed yet and
    # every mutex-guarded access would look lockless.
    installed_here = lockwatch.active() is None
    if installed_here:
        lockwatch.install()
    try:
        with racesan.scoped(recording=True) as sanitizer:
            rate = _tunnel_echo_rate(True, count)
            # A benchmark that silently stopped watching anything would
            # "pass" forever: prove the run actually sampled the hot
            # path, and hold the tree to zero races while here.
            assert sanitizer.accesses_sampled > 0, "sanitizer observed nothing"
            sanitizer.assert_clean()
    finally:
        if installed_here:
            lockwatch.uninstall()
    return rate


def run_experiment(quick: bool = False) -> dict:
    repeats = 2 if quick else 3
    tunnel_count = 1200 if quick else 3000

    def measure_idle() -> dict[bool, float]:
        return _best_of(
            lambda on: _idle_rate(on, tunnel_count), [False, True], repeats + 2
        )

    idle = measure_idle()
    if _overhead_pct(idle[False], idle[True]) >= GATE_LIMIT_PCT:
        # Same weather rule as the obs gate: real overhead shows up in
        # every round, loopback-TCP noise does not survive best-of.
        retry = measure_idle()
        idle = {k: max(idle[k], retry[k]) for k in idle}

    recording = _best_of(
        lambda on: (
            _recording_rate(tunnel_count)
            if on
            else _idle_rate(False, tunnel_count)
        ),
        [False, True],
        repeats,
    )

    def scenario(rates: dict[bool, float], gated: bool) -> dict:
        overhead = _overhead_pct(rates[False], rates[True])
        return {
            "off_per_s": round(rates[False], 1),
            "on_per_s": round(rates[True], 1),
            "overhead_pct": round(overhead, 2),
            "gated": gated,
        }

    scenarios = {
        "tunnel_echo_idle": scenario(idle, gated=True),
        "tunnel_echo_recording": scenario(recording, gated=False),
    }
    gated_overhead = scenarios["tunnel_echo_idle"]["overhead_pct"]
    report = {
        "generated_by": "benchmarks/bench_racesan.py",
        "quick": quick,
        "scenarios": scenarios,
        "gate": {
            "scenario": "tunnel_echo_idle",
            "limit_pct": GATE_LIMIT_PCT,
            "overhead_pct": gated_overhead,
            "passed": gated_overhead < GATE_LIMIT_PCT,
        },
        "notes": (
            "idle = sanitizer installed, not recording — the cost every "
            "default pytest session pays, gated <5% like the obs tunnel "
            "gate.  recording = scoped sanitizer + lock-order watchdog "
            "at default sampling, the chaos/integration-suite opt-in "
            "configuration; report-only (lockset refinement on every "
            "sampled access costs multiples by design) and asserted "
            "race-free.  Interleaved best-of-N per variant."
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_tables(quick: bool = False) -> list[dict]:
    """run_all.py entry point: one printable row per scenario."""
    report = run_experiment(quick)
    rows = []
    for name, data in report["scenarios"].items():
        if not data["gated"]:
            outcome = "report-only"
        elif data["overhead_pct"] < GATE_LIMIT_PCT:
            outcome = "passed"
        else:
            outcome = (
                f"FAILED ({data['overhead_pct']}% > {GATE_LIMIT_PCT}% budget)"
            )
        rows.append(
            {
                "scenario": name,
                "racesan_off_per_s": data["off_per_s"],
                "racesan_on_per_s": data["on_per_s"],
                "overhead_pct": data["overhead_pct"],
                "gate": outcome,
            }
        )
    return rows


def check_shape(report: dict) -> None:
    assert report["gate"]["passed"], report["gate"]
    for name in ("tunnel_echo_idle", "tunnel_echo_recording"):
        assert name in report["scenarios"], report


@pytest.mark.racesan
@pytest.mark.slow
@pytest.mark.benchmark(group="racesan")
def test_racesan_quick(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment(quick=True), rounds=1, iterations=1
    )
    check_shape(report)
    save_table(
        "racesan",
        "Racesan: sanitizer overhead (gate <5% idle on tunnel_echo)",
        run_tables(quick=True),
    )


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    report = run_experiment(quick=quick)
    print(json.dumps(report, indent=2))
    check_shape(report)

"""Auth control-plane benchmark: token decisions vs per-request RSA.

Three cells, matching the refactor's claims:

* **decisions** — authorization decisions per second over a
  million-user directory: the legacy path re-verifies an RSA-signed
  credential on every request; the token path checks an HMAC token
  (signature + expiry + revocation epoch).  The bar is >= 10x.
* **handshake** — full mutual-auth handshake vs session-ticket
  resumption on the same connection machinery.  The bar is >= 5x.
* **revocation** — wall-clock seconds for a revocation made at one
  proxy of a live grid to reach every other proxy by heartbeat gossip
  and anti-entropy pull.

Full mode writes ``BENCH_auth.json`` at the repo root; ``--quick``
shrinks the user store so the whole file runs in seconds.  Run directly
(``python benchmarks/bench_auth.py [--quick]``) or via run_all.py.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from benchmarks.common import save_table
from repro.core.dispatch import TokenAuthGuard
from repro.core.grid import Grid
from repro.core.protocol import ControlMessage, Op
from repro.security.auth import Credential, UserDirectory
from repro.security.ca import CertificationAuthority
from repro.security.handshake import (
    SessionTicketKeeper,
    accept_secure,
    connect_secure,
)
from repro.security.rsa import RsaKeyPair
from repro.security.tokens import TokenService
from repro.transport.inproc import channel_pair

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_auth.json"

FULL_USERS = 1_000_000
QUICK_USERS = 20_000

#: Distinct pre-built artifacts the decision loops cycle through, so a
#: hot cache line is not what gets measured.
SAMPLE = 512
#: Decisions measured per path.
FULL_DECISIONS = 20_000
QUICK_DECISIONS = 4_000

KEY_BITS = 512
HANDSHAKE_ROUNDS = 8

HEARTBEAT = 0.05


# ---------------------------------------------------------------------------
# Cell 1: authorization decisions per second, 1M-user store
# ---------------------------------------------------------------------------


def build_directory(count: int) -> UserDirectory:
    """A ``count``-user store; 1 PBKDF round so building it is feasible."""
    directory = UserDirectory(pbkdf_iterations=1)
    for i in range(count):
        directory.add_user(f"user{i}", f"pw{i}")
    return directory


def run_decisions(quick: bool = False) -> dict:
    users = QUICK_USERS if quick else FULL_USERS
    decisions = QUICK_DECISIONS if quick else FULL_DECISIONS
    # The RSA path pays a signature per decision (~ms each), so it gets
    # a smaller measured sample at the same per-decision accuracy.
    rsa_decisions = 400 if quick else 1_000
    build_start = time.perf_counter()
    directory = build_directory(users)
    build_s = time.perf_counter() - build_start

    clock = time.time
    service = TokenService(directory, clock, issuer="bench")

    # Token path: what dispatch runs per guarded message — the
    # TokenAuthGuard's epoch-checked LRU decision over session tokens
    # minted once at login, for users spread across the whole id range.
    guard = TokenAuthGuard(service)
    messages = [
        ControlMessage(
            op=Op.JOB_SUBMIT,
            body={},
            auth=service.login(
                f"user{(i * users) // SAMPLE}", f"pw{(i * users) // SAMPLE}"
            ).to_bytes(),
        )
        for i in range(SAMPLE)
    ]
    start = time.perf_counter()
    for i in range(decisions):
        verdict = guard(messages[i % SAMPLE], "proxy.peer")
        assert verdict is None  # pass-through, not a denial
    token_s = time.perf_counter() - start

    # Legacy path: what each job submission used to cost — password
    # check, a fresh proxy-signed RSA credential, and its verification
    # at the destination.  (The password check here runs at 1 PBKDF
    # round like the store build; production uses 10k, so this under-
    # counts the legacy cost rather than inflating the speedup.)
    issuer_key = RsaKeyPair.generate(KEY_BITS)
    start = time.perf_counter()
    for i in range(rsa_decisions):
        userid = f"user{(i * users) // rsa_decisions}"
        directory.authenticate_password(userid, f"pw{(i * users) // rsa_decisions}")
        blob = Credential.issue(userid, "proxy.bench", clock(), issuer_key).to_bytes()
        Credential.from_bytes(blob).verify(issuer_key.public, clock)
    rsa_s = time.perf_counter() - start

    token_rate = decisions / token_s
    rsa_rate = rsa_decisions / rsa_s
    return {
        "users": users,
        "store_build_s": round(build_s, 2),
        "token_decisions_per_s": round(token_rate, 1),
        "rsa_decisions_per_s": round(rsa_rate, 1),
        "speedup_x": round(token_rate / rsa_rate, 1),
    }


# ---------------------------------------------------------------------------
# Cell 2: full handshake vs session-ticket resumption
# ---------------------------------------------------------------------------


def _one_handshake(ca, clock, key_a, cert_a, key_b, cert_b, keeper, resumption):
    raw_a, raw_b = channel_pair("bench-auth")
    result = {}

    def server():
        result["b"] = accept_secure(
            raw_b, key_b, cert_b, ca.public_key, clock, ticket_keeper=keeper
        )

    thread = threading.Thread(target=server)  # gridlint: disable=GL102 -- both handshake ends must run concurrently; joined below
    thread.start()
    secure = connect_secure(
        raw_a, key_a, cert_a, ca.public_key, clock, resumption=resumption
    )
    thread.join()
    return secure, result["b"]


def run_handshakes() -> dict:
    clock = time.time
    ca = CertificationAuthority(key_bits=KEY_BITS, clock=clock)
    key_a = RsaKeyPair.generate(KEY_BITS)
    key_b = RsaKeyPair.generate(KEY_BITS)
    cert_a = ca.issue("a", "proxy", key_a.public)
    cert_b = ca.issue("b", "proxy", key_b.public)
    keeper = SessionTicketKeeper(clock)

    start = time.perf_counter()
    ticket = None
    for _ in range(HANDSHAKE_ROUNDS):
        secure, peer = _one_handshake(
            ca, clock, key_a, cert_a, key_b, cert_b, keeper, None
        )
        ticket = secure.resumption_ticket
        secure.close()
        peer.close()
    full_s = (time.perf_counter() - start) / HANDSHAKE_ROUNDS

    start = time.perf_counter()
    resumed_count = 0
    for _ in range(HANDSHAKE_ROUNDS):
        secure, peer = _one_handshake(
            ca, clock, key_a, cert_a, key_b, cert_b, keeper, ticket
        )
        resumed_count += int(secure.resumed)
        ticket = secure.resumption_ticket  # rotates every round
        secure.close()
        peer.close()
    resumed_s = (time.perf_counter() - start) / HANDSHAKE_ROUNDS

    return {
        "key_bits": KEY_BITS,
        "full_ms": round(full_s * 1000, 3),
        "resumed_ms": round(resumed_s * 1000, 3),
        "resumed_rounds": f"{resumed_count}/{HANDSHAKE_ROUNDS}",
        "speedup_x": round(full_s / resumed_s, 1),
    }


# ---------------------------------------------------------------------------
# Cell 3: revocation propagation across a live grid
# ---------------------------------------------------------------------------


def run_revocation() -> dict:
    grid = Grid(heartbeat_interval=HEARTBEAT)
    sites = ("A", "B", "C")
    for site in sites:
        grid.add_site(site, nodes=1)
    grid.connect_all()
    grid.enable_token_auth()
    grid.add_user("alice", "pw")
    grid.grant("user:alice", "site:*", "submit")
    try:
        blob = grid.login("alice", "pw", via_site="A")
        start = time.perf_counter()
        epoch = grid.revoke_token(blob, via_site="A")
        while not all(
            grid.proxy_of(site).tokens.epoch >= epoch for site in sites
        ):
            if time.perf_counter() - start > 30.0:
                raise RuntimeError("revocation never converged")
            time.sleep(HEARTBEAT / 5)
        converge_s = time.perf_counter() - start
    finally:
        grid.shutdown()
    return {
        "sites": len(sites),
        "heartbeat_s": HEARTBEAT,
        "converge_s": round(converge_s, 3),
        "converge_heartbeats": round(converge_s / HEARTBEAT, 1),
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_experiment(quick: bool = False) -> dict:
    decisions = run_decisions(quick)
    handshake = run_handshakes()
    revocation = run_revocation()
    report = {
        "generated_by": "benchmarks/bench_auth.py",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "decisions": decisions,
        "handshake": handshake,
        "revocation": revocation,
        "rows": [decisions, handshake, revocation],
        "notes": (
            "decisions: per-request authorization work against a "
            f"{'20k' if quick else '1M'}-user directory — the token path "
            "is the dispatch guard's decision (epoch-checked LRU over "
            "HMAC session tokens, expiry and scope re-checked per hit); "
            "the legacy path is what every submission used to pay: "
            "password check + fresh RSA-signed credential + its "
            "verification.  handshake: mean latency of a full mutual-auth "
            "handshake vs a session-ticket resumption (tickets rotate "
            "every round).  revocation: a token revoked at proxy A of a "
            "three-site grid; converge_s is wall-clock until every "
            "proxy's revocation epoch reflects it via heartbeat gossip "
            "plus anti-entropy pull."
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_tables(quick: bool = False) -> list[dict]:
    """run_all.py entry point: the three cells as printable rows."""
    return run_experiment(quick)["rows"]


def check_shape(report: dict) -> None:
    # The acceptance bars from the refactor issue.
    assert report["decisions"]["speedup_x"] >= 10.0, report["decisions"]
    assert report["handshake"]["speedup_x"] >= 5.0, report["handshake"]
    assert report["handshake"]["resumed_rounds"] == (
        f"{HANDSHAKE_ROUNDS}/{HANDSHAKE_ROUNDS}"
    ), report["handshake"]
    assert report["revocation"]["converge_s"] < 30.0, report["revocation"]


@pytest.mark.auth
@pytest.mark.slow
@pytest.mark.benchmark(group="auth")
def test_auth_quick(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment(quick=True), rounds=1, iterations=1
    )
    # Quick mode shrinks the store, not the claims: the speedups must
    # already clear the bars at reduced scale.
    check_shape(report)
    save_table(
        "auth",
        "Auth: token vs RSA decisions, handshake resumption, revocation",
        report["rows"],
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    cli = parser.parse_args()
    result = run_experiment(quick=cli.quick)
    print(json.dumps(result, indent=2))
    check_shape(result)

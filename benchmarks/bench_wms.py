"""Workload-manager benchmark: matchmaking vs round-robin at 1M jobs.

Experiment E7: the paper's proxy architecture gives every site a live
status table (Layer 3); the workload manager turns that into pilot-style
late binding — idle nodes *claim* work that fits them instead of having
work pushed at them blindly.  This benchmark measures what that buys on
a heavy-tailed stream of one million synthetic jobs over a heterogeneous
simulated grid (8 sites, 32 nodes, 8x speed spread, two big-memory
sites):

* **round_robin** — the push baseline: jobs are dealt to nodes in
  rotation (skipping memory-ineligible nodes) and each node works its
  own FIFO.  Speed-blind dealing is exactly what heavy tails punish.
* **matchmaker** — the same stream through :class:`WorkloadManager`:
  every node is a pilot that claims one job at a time with its
  capability (speed, free RAM); fair share orders users inside each
  priority tier.  The simulation advances an event heap of node free
  times, so the schedule is work-conserving by construction — *if* the
  matchmaker can always find a fitting job (the backfill bound is the
  part under test).

Reported per scheduler: makespan, capacity utilisation (total work over
makespan x aggregate speed), and fairness as the Jain index over each
user's time-to-first-100-results — users submit in bursts (heaviest
first), so a FIFO baseline starves the light users' first results while
fair share interleaves them.

Two more cells exercise the durability half of the design:

* **chaos_site_kill** — a smaller run where a big-memory site dies once
  ~30% of the stream has completed.  Its leases must be requeued by
  ``release_pilot`` exactly once, the zombie's late reports must bounce
  off the spent-token guard, and the journal must show exactly one
  terminal event per job: zero lost, zero duplicated.
* **durability** — the same queue journaling every event to disk
  (`FileJournal`), then a simulated crash and ``recover``: journaled
  ops/s, recovery time, and a replay-identical check (recovering twice
  yields the same state).

Full mode writes ``BENCH_wms.json`` at the repo root; ``--quick`` runs
a scaled-down stream for CI smoke.
"""

from __future__ import annotations

import heapq
import json
import os
import sys
import tempfile
import time
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

import pytest

if str(Path(__file__).resolve().parents[1]) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.common import save_table  # noqa: E402
from repro.control.wms import (  # noqa: E402
    FileJournal,
    JobSpec,
    MemoryJournal,
    WorkloadManager,
)
from repro.simulation.randomness import RandomStream  # noqa: E402
from repro.workloads.generators import JobStreamSpec, generate_job_stream  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_wms.json"

SEED = 20260809
FULL_JOBS = 1_000_000
QUICK_JOBS = 20_000
CHAOS_JOBS = 100_000
QUICK_CHAOS_JOBS = 10_000
DURABILITY_JOBS = 20_000
QUICK_DURABILITY_JOBS = 2_000

N_USERS = 8
USER_SKEW = 1.1  # Zipf: u0 submits ~6x what u7 does
SMALL_RAM = 64 << 20
BIG_RAM = 3 << 30
BIG_RAM_FRACTION = 0.08
FAIR_K = 100  # fairness = Jain over time-to-first-K-results per user

#: (site, nodes, cpu_speed, ram_free) — 8 heterogeneous sites.  Only the
#: two "hub" sites can place BIG_RAM jobs; the chaos cell kills hub1 and
#: hub0 must absorb its big-memory backlog.
SITES = (
    ("hub0", 4, 4.0, 4 << 30),
    ("hub1", 4, 2.0, 4 << 30),
    ("mid0", 4, 2.0, 1 << 30),
    ("mid1", 4, 1.0, 1 << 30),
    ("mid2", 4, 1.0, 1 << 30),
    ("edge0", 4, 0.5, 1 << 30),
    ("edge1", 4, 0.5, 1 << 30),
    ("edge2", 4, 0.5, 512 << 20),
)


@dataclass
class SimNode:
    """One simulated grid node acting as its own pilot."""

    name: str
    site: str
    speed: float
    ram: int
    dead: bool = field(default=False, compare=False)

    def capability(self) -> dict:
        return {"ram_free": self.ram, "speed": self.speed, "slots": 1}


def build_nodes() -> list[SimNode]:
    return [
        SimNode(name=f"{site}.n{n}", site=site, speed=speed, ram=ram)
        for site, count, speed, ram in SITES
        for n in range(count)
    ]


def build_jobs(count: int, seed: int = SEED) -> list[JobSpec]:
    """A reproducible heavy-tailed stream in burst submit order.

    Work sizes come from :func:`generate_job_stream` (Pareto, the grid
    workload model used everywhere else in the repo); user, priority and
    the big-memory flag ride on independent derived streams so the shape
    of one never perturbs another.  Jobs are ordered heaviest user
    first — the adversarial case for FIFO and the motivating case for
    fair share.
    """
    stream = generate_job_stream(
        JobStreamSpec(count=count, work_shape=1.5, work_minimum=5.0),
        RandomStream(seed, "wms-work"),
    )
    users = RandomStream(seed, "wms-users")
    shape = RandomStream(seed, "wms-shape")
    jobs = [
        JobSpec(
            job_id=f"j{arrival.job.job_id}",
            user=f"u{users.zipf_index(N_USERS, skew=USER_SKEW)}",
            priority=shape.randint(0, 2),
            work=arrival.job.work,
            ram=BIG_RAM if shape.bernoulli(BIG_RAM_FRACTION) else SMALL_RAM,
        )
        for arrival in stream
    ]
    jobs.sort(key=lambda spec: spec.user)  # stable: burst order per user
    return jobs


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly equal, 1/n = one user hogs."""
    if not values or all(v == 0 for v in values):
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * sum(v * v for v in values))


def _fairness(waits_by_user: dict[str, list[float]]) -> float:
    """Jain over each user's time-to-first-FAIR_K-results."""
    t_first_k = [
        waits[min(FAIR_K, len(waits)) - 1]
        for waits in waits_by_user.values()
        if waits
    ]
    return round(jain_index(t_first_k), 4)


def run_round_robin(jobs: list[JobSpec], nodes: list[SimNode]) -> dict:
    """Push baseline: deal jobs to nodes in rotation, per-node FIFO.

    The dealer skips memory-ineligible nodes (round-robin gets the same
    placement constraint the matchmaker has), but it is speed-blind and
    queue-blind: a 0.5x edge node receives as many jobs as a 4x hub.
    """
    start = time.perf_counter()
    free = [0.0] * len(nodes)
    waits: dict[str, list[float]] = defaultdict(list)
    cursor = 0
    for spec in jobs:
        for probe in range(len(nodes)):
            index = (cursor + probe) % len(nodes)
            if nodes[index].ram >= spec.ram:
                break
        else:
            raise AssertionError(f"no node fits {spec.job_id}")
        cursor = (index + 1) % len(nodes)
        waits[spec.user].append(free[index])
        free[index] += spec.work / nodes[index].speed
    elapsed = time.perf_counter() - start
    makespan = max(free)
    total_work = sum(spec.work for spec in jobs)
    capacity = sum(node.speed for node in nodes)
    return {
        "case": "round_robin",
        "jobs": len(jobs),
        "makespan_s": round(makespan, 1),
        "utilization": round(total_work / (makespan * capacity), 4),
        "jain_first_results": _fairness(waits),
        "sched_wall_s": round(elapsed, 2),
    }


def run_matchmaker(
    jobs: list[JobSpec],
    nodes: list[SimNode],
    kill_site: str | None = None,
    journal=None,
) -> tuple[dict, WorkloadManager, dict]:
    """Pull model: every node is a pilot claiming against the manager.

    The event heap holds each live node's next-free time; popping the
    earliest advances the simulated clock, reports the node's finished
    job, and claims the next fitting one.  A node retires when its claim
    comes back empty (nothing pending fits it).  With ``kill_site`` the
    site dies once ~30% of the stream has completed: its nodes stop
    mid-job, ``release_pilot`` requeues their leases, and when a dead
    node's pop comes due it files a zombie report with its spent token.
    """
    start = time.perf_counter()
    now = [0.0]
    wms = WorkloadManager(
        name="bench", clock=lambda: now[0], journal=journal, half_life=600.0
    )
    for spec in jobs:
        wms.submit(spec)
    kill_after = int(0.3 * len(jobs)) if kill_site else None
    heap: list[tuple[float, int, SimNode]] = [
        (0.0, index, node) for index, node in enumerate(nodes)
    ]
    heapq.heapify(heap)
    held: dict[str, dict] = {}  # node -> grant in flight
    waits: dict[str, list[float]] = defaultdict(list)
    makespan = completed = requeued = 0
    zombie_reports: list[dict] = []
    while heap:
        t, index, node = heapq.heappop(heap)
        now[0] = max(now[0], t)
        if node.dead:
            grant = held.pop(node.name, None)
            if grant is not None:  # the zombie's late report: token spent
                zombie_reports.append(
                    wms.complete(grant["job"]["job_id"], grant["token"])
                )
            continue
        grant = held.pop(node.name, None)
        if grant is not None:
            wms.complete(grant["job"]["job_id"], grant["token"])
            completed += 1
            if kill_after is not None and completed >= kill_after:
                kill_after = None
                for victim in nodes:
                    if victim.site == kill_site:
                        victim.dead = True
                        requeued += len(
                            wms.release_pilot(victim.name, error="site killed")
                        )
                if node.dead:  # the kill just took this node out mid-pop
                    continue
        grants = wms.claim(
            node.name, site=node.site, capability=node.capability()
        )
        if not grants:
            continue  # nothing pending fits this node: it retires
        grant = grants[0]
        if grant["token"].endswith("#1"):
            waits[grant["job"]["user"]].append(t)
        held[node.name] = grant
        duration = grant["job"]["work"] / node.speed
        makespan = max(makespan, t + duration)
        heapq.heappush(heap, (t + duration, index, node))
    # Safety net: anything still pending (early-retired capacity) drains
    # through an unconstrained pilot.  Zero in a healthy run.
    drained = 0
    while True:
        grants = wms.claim("pilot.drain", count=64)
        if not grants:
            break
        for grant in grants:
            wms.complete(grant["job"]["job_id"], grant["token"])
            drained += 1
    elapsed = time.perf_counter() - start
    total_work = sum(spec.work for spec in jobs)
    capacity = sum(node.speed for node in nodes)
    row = {
        "case": "matchmaker" if kill_site is None else "chaos_site_kill",
        "jobs": len(jobs),
        "makespan_s": round(makespan, 1),
        "utilization": round(total_work / (makespan * capacity), 4),
        "jain_first_results": _fairness(waits),
        "sched_wall_s": round(elapsed, 2),
        "sched_jobs_per_s": round(len(jobs) / elapsed, 1),
        "drained_after_retire": drained,
    }
    return row, wms, {"requeued": requeued, "zombies": zombie_reports}


def run_chaos(jobs_count: int) -> dict:
    """Kill hub1 mid-queue; prove conservation from the journal."""
    jobs = build_jobs(jobs_count, seed=SEED + 1)
    journal = MemoryJournal()
    row, wms, chaos = run_matchmaker(
        jobs, build_nodes(), kill_site="hub1", journal=journal
    )
    status = wms.status()
    terminal = [e["job"] for e in journal.events if e["ev"] in ("done", "dead")]
    lost = len(jobs) - (status["done"] + status["dead"])
    duplicated = len(terminal) - len(set(terminal))
    assert lost == 0, f"lost {lost} jobs after site kill"
    assert duplicated == 0, f"{duplicated} duplicated terminal events"
    assert status["dead"] == 0  # one failure each, max_attempts=3
    assert chaos["requeued"] > 0, "kill landed before any leases were held"
    assert all(
        report.get("stale") or report.get("duplicate")
        for report in chaos["zombies"]
    ), "a zombie's late report was accepted"
    row.update(
        {
            "killed_site": "hub1",
            "requeued": chaos["requeued"],
            "zombie_reports_bounced": len(chaos["zombies"]),
            "lost": lost,
            "duplicated": duplicated,
        }
    )
    return row


def run_durability(jobs_count: int) -> dict:
    """Journal every op to disk, crash mid-queue, recover, drain."""
    jobs = build_jobs(jobs_count, seed=SEED + 2)
    with tempfile.TemporaryDirectory(prefix="bench-wms-") as tmp:
        path = os.path.join(tmp, "wms.journal")
        now = [0.0]
        wms = WorkloadManager(clock=lambda: now[0], journal=FileJournal(path))
        start = time.perf_counter()
        ops = 0
        for spec in jobs:
            wms.submit(spec)
            ops += 1
        target_done = int(0.6 * len(jobs))
        done = 0
        while done < target_done:
            grants = wms.claim("pilot.live", count=32)
            ops += 1
            for grant in grants:
                wms.complete(grant["job"]["job_id"], grant["token"])
                ops += 1
                done += 1
        in_flight = len(wms.claim("pilot.doomed", count=16))  # dies holding
        ops += 1
        elapsed = time.perf_counter() - start
        journal_bytes = os.path.getsize(path)
        events = len(FileJournal.read(path))
        # Crash: the manager is dropped without close; recover from disk.
        recover_start = time.perf_counter()
        recovered = WorkloadManager.recover(path, clock=lambda: now[0])
        recover_s = time.perf_counter() - recover_start
        status = recovered.status()
        assert status["done"] == done
        assert status["claimed"] == 0  # the doomed pilot's leases requeued
        assert status["pending"] == len(jobs) - done
        # Replay-identical: a second recovery lands in the same state.
        twice = WorkloadManager.recover(path, clock=lambda: now[0])
        replay_identical = (
            twice.status() == status
            and twice.pending_jobs() == recovered.pending_jobs()
        )
        assert replay_identical
        while True:
            grants = recovered.claim("pilot.drain", count=64)
            if not grants:
                break
            for grant in grants:
                recovered.complete(grant["job"]["job_id"], grant["token"])
        final = recovered.status()
        assert final["done"] + final["dead"] == len(jobs)
        recovered.close()
        twice.close()
    return {
        "case": "durability",
        "jobs": len(jobs),
        "in_flight_at_crash": in_flight,
        "journal_events": events,
        "journal_mb": round(journal_bytes / 1e6, 2),
        "journaled_ops_per_s": round(ops / elapsed, 1),
        "recover_s": round(recover_s, 3),
        "replay_identical": replay_identical,
    }


def run_experiment(quick: bool = False, jobs: int | None = None) -> dict:
    if jobs is None:
        jobs = QUICK_JOBS if quick else FULL_JOBS
    stream = build_jobs(jobs)
    nodes = build_nodes()
    rr = run_round_robin(stream, nodes)
    mm, wms, _ = run_matchmaker(stream, build_nodes())
    status = wms.status()
    assert status["done"] == jobs and status["pending"] == 0
    chaos = run_chaos(QUICK_CHAOS_JOBS if quick else CHAOS_JOBS)
    durability = run_durability(
        QUICK_DURABILITY_JOBS if quick else DURABILITY_JOBS
    )
    report = {
        "generated_by": "benchmarks/bench_wms.py",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "matchmaker_vs_round_robin": {
            "makespan_x": round(rr["makespan_s"] / mm["makespan_s"], 2),
            "utilization_x": round(mm["utilization"] / rr["utilization"], 2),
            "fairness_jain": {
                "round_robin": rr["jain_first_results"],
                "matchmaker": mm["jain_first_results"],
            },
        },
        "chaos": {
            "killed_site": chaos["killed_site"],
            "requeued": chaos["requeued"],
            "lost": chaos["lost"],
            "duplicated": chaos["duplicated"],
        },
        "durability": {
            "journaled_ops_per_s": durability["journaled_ops_per_s"],
            "recover_s": durability["recover_s"],
            "replay_identical": durability["replay_identical"],
        },
        "rows": [rr, mm, chaos, durability],
        "notes": (
            "1M Pareto(1.5) jobs (mean 15 CPU-s) over 8 sites / 32 nodes "
            "with an 8x speed spread; 8% of jobs need 3 GiB RAM and only "
            "the two hub sites fit them.  Users submit in bursts, "
            "heaviest first (Zipf 1.1 over 8 users) — the adversarial "
            "order for FIFO.  round_robin deals jobs to nodes in "
            "rotation (skipping RAM-ineligible nodes); matchmaker runs "
            "the same stream through WorkloadManager with every node "
            "claiming work it fits, so placement follows speed and "
            "memory instead of rotation.  makespan_x > 1 means the "
            "matchmaker finishes the stream that many times sooner; "
            "utilization is total work over makespan x aggregate speed.  "
            "jain_first_results is Jain's index over each user's "
            f"time-to-first-{FAIR_K}-results: fair share keeps light "
            "users' first results early even behind a heavy burst.  The "
            "chaos cell kills the hub1 site once 30% of a smaller "
            "stream has completed: leases requeue exactly once, zombie "
            "reports bounce off spent tokens, and the journal shows one "
            "terminal event per job (lost=duplicated=0).  durability "
            "journals every op to disk with FileJournal, crashes, and "
            "recovers; recovering twice must land in the identical "
            "state."
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_tables(quick: bool = False) -> list[dict]:
    """run_all.py entry point: the four cells as printable rows."""
    return run_experiment(quick)["rows"]


def check_shape(report: dict) -> None:
    headline = report["matchmaker_vs_round_robin"]
    # The acceptance bar: matchmaking beats round-robin on BOTH axes.
    assert headline["makespan_x"] > 1.0, report
    assert headline["utilization_x"] > 1.0, report
    assert headline["fairness_jain"]["matchmaker"] > (
        headline["fairness_jain"]["round_robin"]
    ), report
    assert report["chaos"]["lost"] == 0 and report["chaos"]["duplicated"] == 0
    assert report["durability"]["replay_identical"] is True


@pytest.mark.wms
@pytest.mark.slow
@pytest.mark.benchmark(group="wms")
def test_wms_quick(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment(quick=True), rounds=1, iterations=1
    )
    # Quick mode runs the full pipeline at reduced scale; direction and
    # invariants must already hold there.
    check_shape(report)
    save_table(
        "wms",
        "WMS: matchmaking vs round-robin, chaos kill, durability",
        report["rows"],
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--jobs", type=int, default=None)
    cli = parser.parse_args()
    result = run_experiment(quick=cli.quick, jobs=cli.jobs)
    print(json.dumps(result, indent=2))
    check_shape(result)

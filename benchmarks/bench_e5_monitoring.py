"""E5 — distributed vs centralised monitoring control overhead.

"This approach reduces the overhead in the control communication, since
it is not always necessary to check the grid's overall status, but only
that of some of the sites."

Both monitors answer the same query mix (mostly single-site questions,
occasionally a global compilation) over the same synthetic grid.
Series: grid size → control queries sent by each architecture.
Expected shape: the distributed design's query count scales with *sites
touched*; the centralised design's scales with *total nodes*.
"""

import pytest

from benchmarks.common import save_table
from repro.baselines.central import CentralizedMonitor
from repro.control.monitor import GlobalStatusCompiler
from repro.simulation.randomness import RandomStream
from repro.workloads.generators import synthetic_status


class SteppingClock:
    """Advances a fixed step per query so TTLs expire predictably."""

    def __init__(self, step: float = 5.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        return self.now

    def advance(self) -> None:
        self.now += self.step


def run_mix(sites: int, nodes_per_site: int, queries: int = 200) -> dict:
    rng = RandomStream(42, f"e5-{sites}-{nodes_per_site}")
    status = synthetic_status(sites, nodes_per_site, rng)
    site_names = sorted(status)

    dist_clock = SteppingClock()
    distributed = GlobalStatusCompiler(
        site_names, lambda s: status[s], dist_clock, ttl=30.0
    )
    cent_clock = SteppingClock()
    nodes_by_site = {s: [e["node"] for e in entries] for s, entries in status.items()}
    node_entries = {e["node"]: e for entries in status.values() for e in entries}
    centralized = CentralizedMonitor(
        nodes_by_site, lambda n: node_entries[n], cent_clock, ttl=30.0
    )

    query_rng = RandomStream(7, f"e5-queries-{sites}")
    for _ in range(queries):
        if query_rng.bernoulli(0.9):  # the common case: one site's status
            site = query_rng.choice(site_names)
            distributed.site_status(site)
            centralized.site_status(site)
        else:  # the occasional global compilation
            distributed.global_status()
            centralized.global_status()
        dist_clock.advance()
        cent_clock.advance()

    return {
        "sites": sites,
        "nodes_total": sites * nodes_per_site,
        "distributed_queries": distributed.queries_sent,
        "centralized_queries": centralized.queries_sent,
        "query_ratio": centralized.queries_sent / max(distributed.queries_sent, 1),
    }


def run_experiment() -> list[dict]:
    return [run_mix(sites, 32) for sites in [2, 4, 8, 16, 32]]


def check_shape(rows: list[dict]) -> None:
    for row in rows:
        # Per-site aggregation always beats per-node polling.
        assert row["distributed_queries"] < row["centralized_queries"]
    # The gap is the per-site node count (32 here): roughly constant
    # ratio across grid sizes, and decisively large.
    assert all(row["query_ratio"] > 8.0 for row in rows)


@pytest.mark.benchmark(group="e5-monitoring")
def test_e5_control_overhead(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    check_shape(rows)
    save_table(
        "e5_monitoring",
        "E5: control queries, distributed per-site vs centralised per-node",
        rows,
    )


@pytest.mark.benchmark(group="e5-monitoring")
def test_e5_distributed_query_cost(benchmark):
    rng = RandomStream(1, "e5-micro")
    status = synthetic_status(8, 32, rng)
    clock = SteppingClock()
    compiler = GlobalStatusCompiler(
        sorted(status), lambda s: status[s], clock, ttl=0.0
    )

    def one_site_query():
        compiler.site_status("site3")
        clock.advance()

    benchmark(one_site_query)

"""Shared helpers for the experiment benchmarks.

Every experiment produces a small table (list of row dicts).  The
helpers here format it, write it under ``benchmarks/results/`` (text and
JSON), and echo it to stdout — run ``python benchmarks/run_all.py`` to
see every table, or read the files after ``pytest benchmarks/
--benchmark-only``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"


def format_table(title: str, rows: list[dict[str, Any]]) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n"
    columns = list(rows[0])
    widths = {
        col: max(len(col), *(len(_fmt(row.get(col))) for row in rows))
        for col in columns
    }
    lines = [title, ""]
    lines.append("  ".join(col.ljust(widths[col]) for col in columns))
    lines.append("  ".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines) + "\n"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def save_table(name: str, title: str, rows: list[dict[str, Any]]) -> str:
    """Persist the table (txt + json) and return the rendered text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = format_table(title, rows)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps({"title": title, "rows": rows}, indent=2)
    )
    print("\n" + text)
    return text

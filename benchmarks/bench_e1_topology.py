"""E1 — Figure 1: grid construction and interconnection.

Reproduces the paper's "general view of the architecture": N sites, one
proxy each, a full mesh of authenticated tunnels, full reachability.
Series: sites → construction time, tunnels established, control
round-trip latency.
"""

import time

import pytest

from benchmarks.common import save_table
from repro.core.grid import Grid
from repro.core.protocol import Op


def build_grid(sites: int, nodes: int = 2) -> Grid:
    grid = Grid()
    for index in range(sites):
        grid.add_site(f"s{index}", nodes=nodes)
    grid.connect_all()
    return grid


def run_experiment(site_counts=(2, 4, 8)) -> list[dict]:
    rows = []
    for sites in site_counts:
        start = time.perf_counter()
        grid = build_grid(sites)
        built = time.perf_counter() - start
        try:
            tunnels = sum(len(grid.proxy_of(s).peers()) for s in grid.sites) // 2
            # Every site pair must be reachable over the control protocol.
            probe_start = time.perf_counter()
            reply = grid.proxy_of("s0").request(
                f"proxy.s{sites - 1}", Op.PING, timeout=30.0
            )
            ping = time.perf_counter() - probe_start
            assert reply.op == Op.PONG
            rows.append(
                {
                    "sites": sites,
                    "expected_tunnels": sites * (sites - 1) // 2,
                    "tunnels": tunnels,
                    "build_seconds": built,
                    "control_rtt_ms": ping * 1000,
                }
            )
        finally:
            grid.shutdown()
    return rows


def check_shape(rows: list[dict]) -> None:
    for row in rows:
        assert row["tunnels"] == row["expected_tunnels"]
    # Construction cost grows with the tunnel mesh.
    assert rows[-1]["build_seconds"] > rows[0]["build_seconds"] * 0.5


@pytest.mark.benchmark(group="e1-topology")
def test_e1_grid_construction(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    check_shape(rows)
    save_table(
        "e1_topology",
        "E1 (Fig. 1): proxies interconnect N sites into one grid",
        rows,
    )


@pytest.mark.benchmark(group="e1-topology")
def test_e1_single_tunnel_setup(benchmark):
    """Cost of adding one more site pair (handshake + certificates)."""

    def connect_pair():
        grid = build_grid(2, nodes=1)
        grid.shutdown()

    benchmark.pedantic(connect_pair, rounds=3, iterations=1)

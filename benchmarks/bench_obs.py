"""Obs — instrumentation overhead gate for the observability layer.

The observability layer rides the hottest paths in the stack (tunnel
sends, the dispatch pipeline, every control request), so its cost is
measured the same way the fast path's gains were: against the dark
baseline, on the same scenarios.

* **tunnel_echo** — end-to-end frames/s through two reactor tunnels over
  TCP loopback, metrics bound vs the obs layer disabled.  This is the
  fastpath suite's tunnel scenario and the **gated** number: crypto and
  syscalls dominate, so the handful of counter increments per batch must
  stay under the 5% budget.
* **dispatch** — pure pipeline msgs/s, ``obs=None`` (the dark path) vs an
  attached :class:`~repro.obs.ObsHub`.  Report-only: a span plus a
  latency observation per message is real work against a ~µs baseline,
  and that trade (microseconds for per-hop traces) is the design.
* **request_roundtrip** — PING round trips between two grid proxies,
  obs enabled vs disabled.  Report-only; dominated by wire latency.

Variants are interleaved and the best of ``repeats`` runs is kept, so a
scheduler hiccup penalises neither side.  Writes ``BENCH_obs.json`` at
the repo root; run via ``python benchmarks/run_all.py obs`` (CI uses
``--quick``).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from benchmarks.common import save_table
from repro.core.dispatch import DispatchPipeline
from repro.core.protocol import ControlMessage, Op
from repro.core.tunnel import Tunnel
from repro.obs import ObsHub, set_enabled
from repro.security.cipher import (
    RecordCipher,
    derive_session_keys,
    random_master_secret,
)
from repro.security.handshake import PeerIdentity, SecureChannel
from repro.transport.frames import Frame, FrameKind
from repro.transport.reactor import ReactorTcpListener, connect_tcp_reactor

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_obs.json"

GATE_LIMIT_PCT = 5.0


class _BenchPeer:
    subject = "bench-peer"
    role = "proxy"


def _secure_tunnel_pair() -> tuple[Tunnel, Tunnel, ReactorTcpListener]:
    """Reactor-backed secure tunnel pair over TCP loopback, handshake
    skipped (both ends derive ciphers from one master secret)."""
    listener = ReactorTcpListener()
    client_raw = connect_tcp_reactor(listener.host, listener.port)
    server_raw = listener.accept(timeout=10.0)
    master = random_master_secret()
    ck = derive_session_keys(master, "client")
    sk = derive_session_keys(master, "server")
    peer = PeerIdentity(_BenchPeer())
    suite = "shake128"
    a = SecureChannel(client_raw, RecordCipher(ck, suite), RecordCipher(sk, suite), peer)
    b = SecureChannel(server_raw, RecordCipher(sk, suite), RecordCipher(ck, suite), peer)
    return Tunnel(a, "a"), Tunnel(b, "b"), listener


def _tunnel_echo_rate(instrumented: bool, count: int) -> float:
    """Frames/s through the secure tunnel path, batched sends."""
    payload = b"\x42" * 4096
    batch = 32
    set_enabled(instrumented)
    try:
        sender, receiver, listener = _secure_tunnel_pair()
        if instrumented:
            hub = ObsHub("bench-tunnel")
            sender.bind_metrics(hub.metrics)
            receiver.bind_metrics(hub.metrics)
        done = threading.Event()
        seen = [0]

        def on_frame(frame, seen=seen, done=done):
            seen[0] += 1
            if seen[0] >= count:
                done.set()

        receiver.on_frame(FrameKind.MPI, on_frame)
        receiver.start("reactor")
        frames = [
            Frame(kind=FrameKind.MPI, channel=1, headers={"rank": 0}, payload=payload)
            for _ in range(batch)
        ]
        start = time.perf_counter()
        sent = 0
        while sent < count:
            n = min(batch, count - sent)
            sender.send_many(frames[:n])
            sent += n
        assert done.wait(timeout=120.0), "receiver did not drain"
        elapsed = time.perf_counter() - start
        sender.close()
        receiver.close()
        listener.close()
        return count / elapsed
    finally:
        set_enabled(True)


def _dispatch_rate(instrumented: bool, count: int) -> float:
    """Pipeline msgs/s: PING in, PONG replied to a null sink."""
    set_enabled(instrumented)
    try:
        obs = ObsHub("bench-dispatch") if instrumented else None
        pipeline = DispatchPipeline(name="bench-dispatch", obs=obs)
        pipeline.register(
            Op.PING, lambda message, peer: message.reply(Op.PONG, {})
        )
        messages = [
            ControlMessage(op=Op.PING, body={}, sender="bench")
            for _ in range(count)
        ]

        def sink(reply):
            pass

        start = time.perf_counter()
        for message in messages:
            pipeline.dispatch(message, "bench", sink)
        elapsed = time.perf_counter() - start
        pipeline.close()
        return count / elapsed
    finally:
        set_enabled(True)


def _request_rate(grid, origin, peer_name: str, instrumented: bool, count: int) -> float:
    """PING request round trips/s between two live grid proxies."""
    set_enabled(instrumented)
    try:
        start = time.perf_counter()
        for _ in range(count):
            origin.request(peer_name, Op.PING, timeout=30.0)
        return count / (time.perf_counter() - start)
    finally:
        set_enabled(True)


def _best_of(fn, variants: list[bool], repeats: int) -> dict[bool, float]:
    """Interleave the variants ``repeats`` times; keep each one's best."""
    best: dict[bool, float] = {}
    for _ in range(repeats):
        for variant in variants:
            rate = fn(variant)
            if rate > best.get(variant, 0.0):
                best[variant] = rate
    return best


def _overhead_pct(off_rate: float, on_rate: float) -> float:
    return (off_rate / on_rate - 1.0) * 100.0


def run_experiment(quick: bool = False) -> dict:
    repeats = 2 if quick else 3
    tunnel_count = 1200 if quick else 3000
    dispatch_count = 3000 if quick else 20000
    request_count = 150 if quick else 800

    # The gated scenario gets extra interleaved repeats, and one more
    # measurement round if the first lands over budget: loopback TCP on a
    # shared box is noisy at the ±10% level per run, and the gate must
    # fail on regressions, not on scheduler weather.  A real >5% cost
    # shows up in every round; noise doesn't survive a best-of merge.
    def measure_tunnel() -> dict[bool, float]:
        return _best_of(
            lambda on: _tunnel_echo_rate(on, tunnel_count), [False, True], repeats + 2
        )

    tunnel = measure_tunnel()
    if _overhead_pct(tunnel[False], tunnel[True]) >= GATE_LIMIT_PCT:
        retry = measure_tunnel()
        tunnel = {k: max(tunnel[k], retry[k]) for k in tunnel}
    dispatch = _best_of(
        lambda on: _dispatch_rate(on, dispatch_count), [False, True], repeats
    )

    from repro.core.grid import Grid

    with Grid() as grid:
        grid.add_site("benchA", nodes=1)
        grid.add_site("benchB", nodes=1)
        grid.connect_all()
        origin = grid.proxy_of("benchA")
        peer_name = grid.directory.proxy_of_site("benchB")
        request = _best_of(
            lambda on: _request_rate(grid, origin, peer_name, on, request_count),
            [False, True],
            repeats,
        )

    def scenario(rates: dict[bool, float], gated: bool) -> dict:
        overhead = _overhead_pct(rates[False], rates[True])
        return {
            "off_per_s": round(rates[False], 1),
            "on_per_s": round(rates[True], 1),
            "overhead_pct": round(overhead, 2),
            "gated": gated,
        }

    scenarios = {
        "tunnel_echo": scenario(tunnel, gated=True),
        "dispatch": scenario(dispatch, gated=False),
        "request_roundtrip": scenario(request, gated=False),
    }
    gated_overhead = scenarios["tunnel_echo"]["overhead_pct"]
    report = {
        "generated_by": "benchmarks/bench_obs.py",
        "quick": quick,
        "scenarios": scenarios,
        "gate": {
            "scenario": "tunnel_echo",
            "limit_pct": GATE_LIMIT_PCT,
            "overhead_pct": gated_overhead,
            "passed": gated_overhead < GATE_LIMIT_PCT,
        },
        "notes": (
            "off = REPRO_OBS disabled (and, for dispatch, the obs=None "
            "dark path); on = full instrumentation: tunnel counters, "
            "dispatch spans + latency histograms, request spans. "
            "Interleaved best-of-N per variant.  Only tunnel_echo is "
            "gated: it is the data-plane scenario the <5% budget "
            "protects; dispatch trades microseconds for per-hop traces "
            "by design and is reported, not gated."
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_tables(quick: bool = False) -> list[dict]:
    """run_all.py entry point: one printable row per scenario."""
    report = run_experiment(quick)
    rows = []
    for name, data in report["scenarios"].items():
        if not data["gated"]:
            outcome = "report-only"
        elif data["overhead_pct"] < GATE_LIMIT_PCT:
            outcome = "passed"
        else:
            outcome = (
                f"FAILED ({data['overhead_pct']}% > {GATE_LIMIT_PCT}% budget)"
            )
        rows.append(
            {
                "scenario": name,
                "obs_off_per_s": data["off_per_s"],
                "obs_on_per_s": data["on_per_s"],
                "overhead_pct": data["overhead_pct"],
                "gate": outcome,
            }
        )
    return rows


def check_shape(report: dict) -> None:
    assert report["gate"]["passed"], report["gate"]
    for name in ("tunnel_echo", "dispatch", "request_roundtrip"):
        assert name in report["scenarios"], report


@pytest.mark.obs
@pytest.mark.slow
@pytest.mark.benchmark(group="obs")
def test_obs_quick(benchmark):
    report = benchmark.pedantic(lambda: run_experiment(quick=True), rounds=1, iterations=1)
    check_shape(report)
    save_table(
        "obs",
        "Obs: instrumentation overhead (gate <5% on tunnel_echo)",
        run_tables(quick=True),
    )


if __name__ == "__main__":
    import sys

    quick = "--quick" in sys.argv
    report = run_experiment(quick=quick)
    print(json.dumps(report, indent=2))
    check_shape(report)

"""Fastpath — data-plane before/after: cipher, codec, and tunnel throughput.

Measures the three layers the fast path touched, each against a faithful
replica of the seed implementation (kept here as the "before" baseline):

* **cipher** — RecordCipher seal+open MB/s: seed (per-byte XOR generator,
  per-block ``sha256(key+seq+ctr)``, per-record ``hmac.new``) vs the
  wire-compatible vectorized ``sha256ctr`` suite vs the negotiated
  ``shake128`` XOF suite.
* **codec** — encode + incremental decode frames/s under small TCP-like
  reads: seed FrameDecoder (full buffer copy + tail re-slice per frame)
  vs the consumed-offset decoder.
* **tunnel** — end-to-end frames/s over real TCP loopback through the
  Tunnel receive loop: seed-equivalent secure channel (legacy cipher,
  one send syscall per frame, re-encode-on-receive accounting) vs the
  fast path (negotiated suite, batched vectored writes).

Writes ``BENCH_fastpath.json`` at the repo root so the perf trajectory is
tracked from this PR onward; run via ``python benchmarks/run_all.py
fastpath`` (add ``--quick`` for the smoke mode).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import struct
import threading
import time
from pathlib import Path

import pytest

from benchmarks.common import save_table
from repro.core.tunnel import Tunnel
from repro.security.cipher import (
    RecordCipher,
    SessionKeys,
    derive_session_keys,
    random_master_secret,
)
from repro.security.handshake import PeerIdentity, SecureChannel
from repro.transport.frames import (
    Frame,
    FrameDecoder,
    FrameKind,
    encode_frame,
    _decode_frame_prefix,
)
from repro.transport.tcp import TcpListener, connect_tcp

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_fastpath.json"

_SEQ = struct.Struct("!Q")


# ---------------------------------------------------------------------------
# Seed replicas (the "before" numbers)
# ---------------------------------------------------------------------------


class LegacyRecordCipher:
    """The seed's RecordCipher, verbatim: the de-optimized hot path."""

    def __init__(self, keys: SessionKeys):
        self.keys = keys
        self._send_seq = 0
        self._recv_seq = -1

    def _keystream(self, seq: int, nbytes: int) -> bytes:
        blocks = []
        seq_raw = _SEQ.pack(seq)
        for counter in range((nbytes + 31) // 32):
            blocks.append(
                hashlib.sha256(
                    self.keys.encrypt_key + seq_raw + counter.to_bytes(8, "big")
                ).digest()
            )
        return b"".join(blocks)[:nbytes]

    def seal(self, plaintext: bytes) -> bytes:
        seq = self._send_seq
        self._send_seq += 1
        stream = self._keystream(seq, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        mac = hmac.new(
            self.keys.mac_key, _SEQ.pack(seq) + ciphertext, hashlib.sha256
        ).digest()
        return _SEQ.pack(seq) + mac + ciphertext

    def open(self, record: bytes) -> bytes:
        seq = _SEQ.unpack_from(record, 0)[0]
        ciphertext = record[40:]
        expected = hmac.new(
            self.keys.mac_key, _SEQ.pack(seq) + ciphertext, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(record[8:40], expected):
            raise ValueError("record MAC verification failed")
        self._recv_seq = seq
        stream = self._keystream(seq, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))


class LegacyFrameDecoder:
    """The seed's FrameDecoder: full-buffer copy + tail re-slice per frame."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> None:
        self._buffer += chunk

    def next_frame(self):
        frame, consumed = _decode_frame_prefix(bytes(self._buffer))
        if frame is None:
            return None
        del self._buffer[:consumed]
        return frame


class _BenchPeer:
    """Stands in for a Certificate in PeerIdentity (bench only)."""

    subject = "bench-peer"
    role = "proxy"


class LegacySecureChannel(SecureChannel):
    """Seed-equivalent data plane: legacy cipher, one syscall per frame,
    and the seed's re-encode-on-receive stats accounting."""

    def send_many(self, frames) -> None:
        for frame in frames:
            self.send(frame)

    def recv(self, timeout=None):
        frame = super().recv(timeout=timeout)
        encode_frame(frame)  # seed accounting re-encoded every received frame
        return frame


# ---------------------------------------------------------------------------
# Measurement helpers
# ---------------------------------------------------------------------------


def _time_per_call(fn, min_seconds: float) -> float:
    fn()  # warm-up
    reps = 0
    start = time.perf_counter()
    while True:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and reps >= 3:
            return elapsed / reps


def bench_cipher(quick: bool = False) -> list[dict]:
    """Seal+open throughput by suite and record size."""
    keys = derive_session_keys(random_master_secret(), "client")
    sizes = [4 * 1024, 64 * 1024] if quick else [4 * 1024, 64 * 1024, 1024 * 1024]
    min_seconds = 0.05 if quick else 0.4
    rows = []
    for size in sizes:
        blob = b"\x77" * size
        row = {"bytes": size}
        for label, factory in [
            ("seed", lambda: LegacyRecordCipher(keys)),
            ("sha256ctr", lambda: RecordCipher(keys, suite="sha256ctr")),
            ("shake128", lambda: RecordCipher(keys, suite="shake128")),
        ]:
            sender, receiver = factory(), factory()
            per_call = _time_per_call(
                lambda: receiver.open(sender.seal(blob)), min_seconds
            )
            row[f"{label}_MBps"] = size / per_call / 1e6
        row["compat_speedup_x"] = row["sha256ctr_MBps"] / row["seed_MBps"]
        row["negotiated_speedup_x"] = row["shake128_MBps"] / row["seed_MBps"]
        rows.append(row)
    return rows


def bench_codec(quick: bool = False) -> list[dict]:
    """Reassembly frames/s: steady MTU reads, a coalesced burst, and one
    large frame under small reads — the last two are where the seed
    decoder's per-frame full-buffer copy goes quadratic."""
    small = [
        Frame(
            kind=FrameKind.MPI,
            channel=i % 8,
            headers={"app": "bench", "rank": i % 16, "tag": 7},
            payload=bytes(200 + (i % 700)),
        )
        for i in range(100 if quick else 600)
    ]
    small_blob = b"".join(encode_frame(f) for f in small)
    big = Frame(
        kind=FrameKind.DATA,
        channel=1,
        headers={"op": "chunk"},
        payload=b"\x55" * ((256 if quick else 1024) * 1024),
    )
    big_blob = encode_frame(big)
    scenarios = [
        ("mtu_stream", small_blob, 1536, len(small)),
        ("burst_drain", small_blob, len(small_blob), len(small)),
        ("large_frame_small_reads", big_blob, 8192, 1),
    ]
    min_seconds = 0.05 if quick else 0.4
    rows = []
    for name, blob, chunk_size, expected in scenarios:
        row = {"scenario": name, "frames": expected, "chunk_bytes": chunk_size}
        for label, factory in [
            ("seed", LegacyFrameDecoder),
            ("fastpath", FrameDecoder),
        ]:

            def run(factory=factory, blob=blob, chunk_size=chunk_size, expected=expected):
                decoder = factory()
                got = 0
                for start in range(0, len(blob), chunk_size):
                    decoder.feed(blob[start : start + chunk_size])
                    while decoder.next_frame() is not None:
                        got += 1
                assert got == expected

            per_call = _time_per_call(run, min_seconds)
            row[f"{label}_frames_per_s"] = expected / per_call
            row[f"{label}_MBps"] = len(blob) / per_call / 1e6
        row["speedup_x"] = row["fastpath_MBps"] / row["seed_MBps"]
        rows.append(row)
    return rows


def _tunnel_pair(legacy: bool) -> tuple[Tunnel, Tunnel, TcpListener]:
    """Secure tunnel pair over real TCP loopback, skipping the (separately
    benchmarked) handshake: both ends get ciphers from one master secret."""
    listener = TcpListener()
    client_raw = connect_tcp(listener.host, listener.port)
    server_raw = listener.accept(timeout=10.0)
    master = random_master_secret()
    ck = derive_session_keys(master, "client")
    sk = derive_session_keys(master, "server")
    peer = PeerIdentity(_BenchPeer())
    if legacy:
        a = LegacySecureChannel(client_raw, LegacyRecordCipher(ck), LegacyRecordCipher(sk), peer)
        b = LegacySecureChannel(server_raw, LegacyRecordCipher(sk), LegacyRecordCipher(ck), peer)
    else:
        suite = "shake128"  # what two upgraded proxies negotiate
        a = SecureChannel(client_raw, RecordCipher(ck, suite), RecordCipher(sk, suite), peer)
        b = SecureChannel(server_raw, RecordCipher(sk, suite), RecordCipher(ck, suite), peer)
    return Tunnel(a, "a"), Tunnel(b, "b"), listener


def bench_tunnel(quick: bool = False) -> list[dict]:
    """End-to-end frames/s through Tunnel receive loops on TCP loopback."""
    payload = b"\x42" * 4096
    count = 300 if quick else 3000
    batch = 32
    rows = []
    for label, legacy in [("seed", True), ("fastpath", False)]:
        sender, receiver, listener = _tunnel_pair(legacy)
        done = threading.Event()
        seen = [0]

        def on_frame(frame, seen=seen, done=done):
            seen[0] += 1
            if seen[0] >= count:
                done.set()

        receiver.on_frame(FrameKind.MPI, on_frame)
        receiver.start()
        frames = [
            Frame(kind=FrameKind.MPI, channel=1, headers={"rank": 0}, payload=payload)
            for _ in range(batch)
        ]
        start = time.perf_counter()
        sent = 0
        while sent < count:
            n = min(batch, count - sent)
            if legacy:
                for frame in frames[:n]:
                    sender.send(frame)
            else:
                sender.send_many(frames[:n])
            sent += n
        assert done.wait(timeout=120.0), "receiver did not drain"
        elapsed = time.perf_counter() - start
        sender.close()
        receiver.close()
        listener.close()
        rows.append(
            {
                "variant": label,
                "frames": count,
                "payload_bytes": len(payload),
                "frames_per_s": count / elapsed,
                "MBps": count * len(payload) / elapsed / 1e6,
            }
        )
    by = {row["variant"]: row for row in rows}
    for row in rows:
        row["speedup_x"] = row["frames_per_s"] / by["seed"]["frames_per_s"]
    return rows


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_experiment(quick: bool = False) -> dict:
    cipher_rows = bench_cipher(quick)
    codec_rows = bench_codec(quick)
    tunnel_rows = bench_tunnel(quick)
    cipher_speedup = max(row["negotiated_speedup_x"] for row in cipher_rows)
    tunnel_speedup = max(row["speedup_x"] for row in tunnel_rows)
    report = {
        "generated_by": "benchmarks/bench_fastpath.py",
        "quick": quick,
        "cipher_seal_open_speedup_x": round(cipher_speedup, 2),
        "tunnel_frames_per_s_speedup_x": round(tunnel_speedup, 2),
        "cipher": cipher_rows,
        "codec": codec_rows,
        "tunnel": tunnel_rows,
        "notes": (
            "before = faithful replica of the seed implementation; "
            "after = negotiated shake128 suite + vectorized sha256ctr, "
            "offset FrameDecoder, iovec sendmsg framing, write coalescing. "
            "Wire layout unchanged; sha256ctr records are byte-identical "
            "to the seed's."
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_tables(quick: bool = False) -> list[dict]:
    """run_all.py entry point: flatten the report into printable rows."""
    report = run_experiment(quick)
    rows = []
    for row in report["cipher"]:
        rows.append({"bench": "cipher", **{k: v for k, v in row.items()}})
    for row in report["codec"]:
        rows.append({"bench": "codec", **{k: v for k, v in row.items()}})
    for row in report["tunnel"]:
        rows.append({"bench": "tunnel", **{k: v for k, v in row.items()}})
    return rows


def check_shape(report: dict) -> None:
    # The fast path must beat the seed by the tentpole targets.
    assert report["cipher_seal_open_speedup_x"] >= 10.0, report
    assert report["tunnel_frames_per_s_speedup_x"] >= 2.0, report
    for row in report["codec"]:
        # Steady-state MTU reads are codec-bound (parity); the burst and
        # large-frame scenarios are where the O(n^2) fix must show.
        floor = 0.8 if row["scenario"] == "mtu_stream" else 1.2
        assert row["speedup_x"] > floor, row


@pytest.mark.fastpath
@pytest.mark.slow
@pytest.mark.benchmark(group="fastpath")
def test_fastpath_quick(benchmark):
    report = benchmark.pedantic(lambda: run_experiment(quick=True), rounds=1, iterations=1)
    # Quick mode checks plumbing and direction, not the full-run targets.
    assert report["cipher_seal_open_speedup_x"] > 2.0
    assert report["tunnel_frames_per_s_speedup_x"] > 1.0
    save_table("fastpath", "Fastpath: data-plane before/after", run_tables(quick=True))


if __name__ == "__main__":
    quick = "--quick" in __import__("sys").argv
    report = run_experiment(quick=quick)
    print(json.dumps(report, indent=2))
    if not quick:
        check_shape(report)

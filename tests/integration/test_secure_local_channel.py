"""Integration tests for the explicit secure local channel.

The paper: intra-site traffic is cleartext by default, but "if a node in
the site requires a safe channel, it can be made available by the proxy
through an explicit call".
"""

import pytest

from repro.core.grid import Grid
from repro.core.protocol import ControlMessage, Op
from repro.core.proxy import ProxyError
from repro.security.rsa import RsaKeyPair


@pytest.fixture()
def grid():
    g = Grid()
    g.add_site("A", nodes=2)
    g.add_site("B", nodes=1)
    g.connect_all()
    yield g
    g.shutdown()


def test_node_gets_encrypted_channel_to_its_proxy(grid):
    channel = grid.secure_node_channel("A", "A.n0")
    assert channel.peer.subject == "proxy.A"
    assert channel.peer.role == "proxy"
    channel.close()


def test_control_requests_served_over_local_channel(grid):
    channel = grid.secure_node_channel("A", "A.n0")
    try:
        request = ControlMessage(op=Op.PING, sender="A.n0")
        channel.send(request.to_frame())
        reply = ControlMessage.from_frame(channel.recv(timeout=10.0))
        assert reply.op == Op.PONG
        assert reply.reply_to == request.message_id
        assert reply.body["proxy"] == "proxy.A"
    finally:
        channel.close()


def test_status_query_over_local_channel(grid):
    channel = grid.secure_node_channel("A", "A.n1")
    try:
        request = ControlMessage(op=Op.STATUS_QUERY, sender="A.n1")
        channel.send(request.to_frame())
        reply = ControlMessage.from_frame(channel.recv(timeout=10.0))
        assert reply.op == Op.STATUS_REPORT
        assert len(reply.body["status"]) == 2  # both stations of site A
    finally:
        channel.close()


def test_unknown_node_rejected(grid):
    with pytest.raises(Exception):
        grid.secure_node_channel("A", "ghost.n0")


def test_wrong_site_rejected(grid):
    with pytest.raises(Exception, match="not at site"):
        grid.secure_node_channel("B", "A.n0")


def test_node_with_foreign_certificate_rejected(grid):
    """A certificate not signed by the grid CA must be refused."""
    from repro.security.ca import CertificationAuthority

    rogue = CertificationAuthority(key_bits=512, clock=grid.clock)
    keypair = RsaKeyPair.generate(512)
    certificate = rogue.issue("A.n0", "node", keypair.public)
    with pytest.raises(Exception):
        grid.proxy_of("A").open_secure_local_channel(keypair, certificate)


def test_user_certificate_role_rejected(grid):
    """Only role 'node' may open the local channel."""
    keypair = RsaKeyPair.generate(512)
    certificate = grid.ca.issue("mallory", "user", keypair.public)
    with pytest.raises(ProxyError):
        grid.proxy_of("A").open_secure_local_channel(keypair, certificate)


def test_channel_traffic_is_encrypted_records(grid):
    """The node-side channel speaks sealed records, not plain frames."""
    channel = grid.secure_node_channel("A", "A.n0")
    try:
        # SecureChannel's stats count record bytes; a PING round trip
        # must register encrypted traffic.
        request = ControlMessage(op=Op.PING, sender="A.n0")
        channel.send(request.to_frame())
        channel.recv(timeout=10.0)
        assert channel.stats.bytes_sent > 0
        assert channel.stats.bytes_received > 0
    finally:
        channel.close()

"""Integration tests: the same grid over real localhost TCP sockets.

Nothing in the middleware changes — only the transport the proxies dial
each other with.  This demonstrates the paper's architecture on an actual
network stack rather than in-process queues.
"""

import pytest

from repro.core.grid import Grid
from repro.mpi.datatypes import SUM


@pytest.fixture()
def tcp_grid():
    g = Grid(transport="tcp")
    g.add_site("A", nodes=2)
    g.add_site("B", nodes=2)
    g.connect_all()
    g.add_user("alice", "pw")
    g.grant("user:alice", "site:*", "submit")
    yield g
    g.shutdown()


def test_tunnels_over_tcp(tcp_grid):
    assert tcp_grid.proxy_of("A").peers() == ["proxy.B"]
    assert tcp_grid.proxy_of("B").peers() == ["proxy.A"]


def test_remote_job_over_tcp(tcp_grid):
    result = tcp_grid.submit_job(
        "alice", "pw", "sum_range", {"n": 50}, origin_site="A", target_site="B"
    )
    assert result == sum(range(50))


def test_status_over_tcp(tcp_grid):
    status = tcp_grid.global_status(via_site="A")
    assert sorted(status) == ["A", "B"]
    assert len(status["B"]) == 2


def test_mpi_across_sites_over_tcp(tcp_grid):
    def app(comm):
        return comm.allreduce(comm.rank + 1, SUM, timeout=30.0)

    result = tcp_grid.run_mpi(app, nprocs=4, timeout=60.0)
    assert result.ok
    assert all(r == 10 for r in result.returns)


def test_tcp_addresses_are_real_sockets(tcp_grid):
    address = tcp_grid.directory.address_of_proxy("proxy.A")
    host, _, port = address.rpartition(":")
    assert host == "127.0.0.1"
    assert int(port) > 0

"""Integration tests for the multi-core shard fleet.

A real :class:`ShardManager` spawns worker *processes* (spawn context,
never fork), so these tests exercise the whole production path: accept
sharding, the per-worker reactor + dispatch pipeline, the control links,
``SHARD_STATS`` folding, and crash → respawn → re-announce supervision.
Both distribution modes run where the platform supports them.
"""

from __future__ import annotations

import time

import pytest

from repro.core.grid import Grid
from repro.core.protocol import Op
from repro.core.proxy import PeerUnavailable
from repro.core.shardmgr import ShardClient, ShardManager
from repro.obs.metrics import fold_snapshots
from repro.transport.shard import supports_fd_passing, supports_reuseport

pytestmark = pytest.mark.slow

MODES = [
    mode
    for mode, ok in (
        ("reuseport", supports_reuseport()),
        ("fdpass", supports_fd_passing()),
    )
    if ok
]

if not MODES:  # pragma: no cover - no POSIX sharding primitives at all
    pytest.skip("no shard distribution mode supported", allow_module_level=True)


@pytest.fixture(scope="module", params=MODES)
def manager(request):
    """One two-worker fleet per supported mode, shared across the module."""
    mgr = ShardManager(
        shards=2, mode=request.param, name=f"it-{request.param}"
    ).start()
    yield mgr
    mgr.stop()


def _ping_until_both_shards(manager, attempts: int = 64) -> set[int]:
    """Open fresh connections until replies have come from both workers."""
    host, port = manager.address
    seen: set[int] = set()
    for i in range(attempts):
        with ShardClient(host, port, timeout=10.0) as client:
            reply = client.request(Op.PING, {"n": i})
            assert reply.op == Op.PONG
            assert reply.body["echo"] == {"n": i}
            seen.add(reply.body["shard"])
        if seen == {0, 1}:
            break
    return seen


class TestShardedEcho:
    def test_echo_spreads_across_both_workers(self, manager):
        assert _ping_until_both_shards(manager) == {0, 1}

    def test_many_frames_on_one_connection(self, manager):
        host, port = manager.address
        with ShardClient(host, port) as client:
            for i in range(50):
                reply = client.request(Op.PING, {"seq": i})
                assert reply.body["echo"] == {"seq": i}

    def test_unknown_op_gets_error_reply(self, manager):
        host, port = manager.address
        with ShardClient(host, port) as client:
            reply = client.request(Op.JOB_SUBMIT, {"task": "nope"})
            assert reply.op == Op.ERROR


class TestShardStats:
    def test_folded_counters_equal_sum_of_worker_registries(self, manager):
        _ping_until_both_shards(manager)
        per_worker = manager.stats()
        assert [body["shard"] for body in per_worker] == [0, 1]
        manual = {}
        for body in per_worker:
            for name, value in body["metrics"]["counters"].items():
                manual[name] = manual.get(name, 0) + value
        # The library fold agrees with the hand-rolled sum exactly.
        reference = fold_snapshots([body["metrics"] for body in per_worker])
        assert reference["counters"] == manual
        folded = manager.folded_snapshot()
        # folded_snapshot re-queries the workers, and the SHARD_STATS
        # requests themselves tick dispatch counters — so data-plane
        # counters match exactly while control-plane ones only grow.
        assert folded["counters"]["shard.frames"] == manual["shard.frames"]
        assert folded["counters"]["shard.replies"] == manual["shard.replies"]
        for name, value in manual.items():
            assert folded["counters"][name] >= value
        assert len(folded["workers"]) == 2
        assert folded["mode"] == manager.mode
        assert both_shards_served(per_worker)


def both_shards_served(per_worker: list[dict]) -> bool:
    return all(
        body["metrics"]["counters"].get("shard.frames", 0) > 0
        for body in per_worker
    )


class TestWorkerSupervision:
    @pytest.fixture()
    def crash_manager(self):
        mgr = ShardManager(shards=2, name="crash-it").start()
        yield mgr
        mgr.stop()

    def _await_respawn(self, manager, shard_id: int, old_pid: int) -> dict:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            workers = {
                body["shard"]: body["pid"] for body in manager.stats(timeout=5.0)
            }
            if workers.get(shard_id) not in (None, old_pid):
                return workers
            time.sleep(0.1)
        raise AssertionError(f"shard {shard_id} never re-announced")

    def test_crashed_worker_respawns_and_reannounces(self, crash_manager):
        old_pid = crash_manager.kill_worker(0)
        workers = self._await_respawn(crash_manager, 0, old_pid)
        assert workers[0] != old_pid
        assert crash_manager.respawns.get(0, 0) >= 1
        # The respawned fleet still serves traffic on the same address.
        assert _ping_until_both_shards(crash_manager) == {0, 1}

    def test_inflight_request_on_dead_worker_surfaces_not_hangs(
        self, crash_manager
    ):
        host, port = crash_manager.address
        client = ShardClient(host, port, timeout=10.0)
        try:
            reply = client.request(Op.PING, {})
            victim = reply.body["shard"]
            crash_manager.kill_worker(victim)
            start = time.monotonic()
            with pytest.raises(PeerUnavailable):
                # The connection terminates at the dead worker: the
                # request must fail loudly, never hang.
                for _ in range(10):
                    client.request(Op.PING, {}, timeout=5.0)
                    time.sleep(0.2)
            assert time.monotonic() - start < 30.0
        finally:
            client.close()


class TestProxyIntegration:
    def test_obs_dump_carries_one_folded_shard_snapshot(self):
        grid = Grid()
        try:
            grid.add_site("siteA", nodes=1)
            manager = grid.start_shard_frontend("siteA", shards=2)
            assert manager is not None
            host, port = manager.address
            with ShardClient(host, port) as client:
                for i in range(5):
                    client.request(Op.PING, {"i": i})
            dump = grid.proxy_of("siteA").observability()
            shards = dump["shards"]
            assert len(shards["workers"]) == 2
            assert shards["counters"]["shard.frames"] >= 5
            manual = sum(
                body["metrics"]["counters"].get("shard.frames", 0)
                for body in manager.stats()
            )
            assert shards["counters"]["shard.frames"] == manual
        finally:
            grid.shutdown()

    def test_env_unset_leaves_grid_unsharded(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        grid = Grid()
        try:
            grid.add_site("siteA", nodes=1)
            assert grid.start_shard_frontend("siteA") is None
            assert "shards" not in grid.proxy_of("siteA").observability()
        finally:
            grid.shutdown()

"""Integration tests: multiple proxies per site and failover.

The paper: "At least one proxy server per site is required to compose
the grid, although configurations with more than one proxy server per
site are also accepted."
"""

import time

import pytest

from repro.core.grid import Grid
from repro.core.proxy import ProxyError


@pytest.fixture()
def grid():
    g = Grid()
    g.add_site("A", nodes=2)
    g.add_site("B", nodes=2)
    g.add_extra_proxy("B")  # B runs two proxies
    g.connect_all()
    g.add_user("alice", "pw")
    g.grant("user:alice", "site:*", "submit")
    yield g
    g.shutdown()


def test_directory_lists_both_proxies(grid):
    assert grid.directory.proxies_of_site("B") == ["proxy.B", "proxy.B.1"]


def test_tunnels_to_every_proxy_of_the_site(grid):
    assert grid.proxy_of("A").peers() == ["proxy.B", "proxy.B.1"]


def test_extra_proxy_shares_the_site(grid):
    extra = grid.proxies["proxy.B.1"]
    assert extra.site is grid.sites["B"]
    assert len(extra.local_status()) == 2


def test_job_failover_to_surviving_proxy(grid):
    grid.proxies["proxy.B"].shutdown()
    time.sleep(0.1)
    result = grid.submit_job(
        "alice", "pw", "echo", {"value": "via backup"},
        origin_site="A", target_site="B",
    )
    assert result == "via backup"


def test_status_failover_to_surviving_proxy(grid):
    grid.proxies["proxy.B"].shutdown()
    time.sleep(0.1)
    status = grid.global_status(via_site="A")
    assert len(status["B"]) == 2


def test_both_proxies_down_fails_cleanly(grid):
    grid.proxies["proxy.B"].shutdown()
    grid.proxies["proxy.B.1"].shutdown()
    time.sleep(0.2)
    with pytest.raises(ProxyError, match="no proxy of site"):
        grid.submit_job(
            "alice", "pw", "noop", origin_site="A", target_site="B"
        )


def test_policy_rejection_is_not_retried(grid):
    """A rejection by a live proxy is final: both-end validation stands."""
    grid.add_user("bob", "pw")
    grid.grant("user:bob", "site:A", "submit")  # B not granted
    from repro.security.auth import PermissionDenied

    with pytest.raises(PermissionDenied):
        grid.submit_job("bob", "pw", "noop", origin_site="A", target_site="B")


def test_extra_proxy_on_unknown_site_rejected(grid):
    from repro.core.grid import GridError

    with pytest.raises(GridError):
        grid.add_extra_proxy("Z")


def test_mpi_still_runs_with_multiproxy_site(grid):
    from repro.mpi.datatypes import SUM

    result = grid.run_mpi(
        lambda comm: comm.allreduce(1, SUM, timeout=30.0), nprocs=4, timeout=60.0
    )
    assert result.ok
    assert all(r == 4 for r in result.returns)

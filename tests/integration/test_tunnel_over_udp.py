"""Integration: the secure tunnel running over the reliable-UDP transport.

Because every transport implements the same Channel contract, the
SSL-like handshake and record layer run unchanged over UDP + ARQ — even
with datagram loss underneath.
"""

import struct
import threading
import time

import pytest

from repro.security.ca import CertificationAuthority
from repro.security.handshake import accept_secure, connect_secure
from repro.security.rsa import RsaKeyPair
from repro.transport.frames import Frame, FrameKind
from repro.transport.udp import udp_pair

KEY_BITS = 512


@pytest.fixture(scope="module")
def pki():
    clock = time.time
    ca = CertificationAuthority(key_bits=KEY_BITS, clock=clock)
    key_a = RsaKeyPair.generate(KEY_BITS)
    key_b = RsaKeyPair.generate(KEY_BITS)
    return {
        "ca": ca,
        "clock": clock,
        "a": (key_a, ca.issue("proxy.A", "proxy", key_a.public)),
        "b": (key_b, ca.issue("proxy.B", "proxy", key_b.public)),
    }


def secure_over_udp(pki, loss_injector_a=None):
    raw_a, raw_b = udp_pair(loss_injector_a=loss_injector_a)
    result = {}

    def server():
        key, cert = pki["b"]
        result["b"] = accept_secure(
            raw_b, key, cert, pki["ca"].public_key, pki["clock"], timeout=60.0
        )

    thread = threading.Thread(target=server)
    thread.start()
    key, cert = pki["a"]
    secure_a = connect_secure(
        raw_a, key, cert, pki["ca"].public_key, pki["clock"], timeout=60.0
    )
    thread.join(timeout=60.0)
    return secure_a, result["b"], (raw_a, raw_b)


def test_handshake_and_records_over_udp(pki):
    secure_a, secure_b, raws = secure_over_udp(pki)
    try:
        secure_a.send(
            Frame(kind=FrameKind.CONTROL, headers={"op": "PING"}, payload=b"x" * 2048)
        )
        frame = secure_b.recv(timeout=10.0)
        assert frame.headers == {"op": "PING"}
        assert frame.payload == b"x" * 2048
    finally:
        for raw in raws:
            raw.close()


def test_handshake_survives_datagram_loss(pki):
    """Drop every 4th DATA datagram; ARQ masks it from the handshake."""
    counter = {"n": 0}

    def lossy(datagram):
        if struct.unpack_from("!B", datagram, 0)[0] != 1:
            return False
        counter["n"] += 1
        return counter["n"] % 4 == 0

    secure_a, secure_b, raws = secure_over_udp(pki, loss_injector_a=lossy)
    try:
        for i in range(10):
            secure_a.send(Frame(kind=FrameKind.DATA, headers={"seq": i}))
        got = [secure_b.recv(timeout=30.0).headers["seq"] for _ in range(10)]
        assert got == list(range(10))
        assert counter["n"] > 0  # loss actually happened
    finally:
        for raw in raws:
            raw.close()


def test_replay_protection_intact_over_udp(pki):
    """ARQ-level retransmissions must not look like record replays."""
    # Force heavy duplication by dropping half the ACKs coming back.
    counter = {"n": 0}

    def drop_acks(datagram):
        if struct.unpack_from("!B", datagram, 0)[0] != 2:
            return False
        counter["n"] += 1
        return counter["n"] % 2 == 0

    raw_a, raw_b = udp_pair(loss_injector_b=drop_acks)
    result = {}

    def server():
        key, cert = pki["b"]
        result["b"] = accept_secure(
            raw_b, key, cert, pki["ca"].public_key, pki["clock"], timeout=60.0
        )

    thread = threading.Thread(target=server)
    thread.start()
    key, cert = pki["a"]
    secure_a = connect_secure(
        raw_a, key, cert, pki["ca"].public_key, pki["clock"], timeout=60.0
    )
    thread.join(timeout=60.0)
    secure_b = result["b"]
    try:
        for i in range(20):
            secure_a.send(Frame(kind=FrameKind.DATA, headers={"seq": i}))
        got = [secure_b.recv(timeout=30.0).headers["seq"] for _ in range(20)]
        assert got == list(range(20))
    finally:
        raw_a.close()
        raw_b.close()

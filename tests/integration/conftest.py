"""Integration-suite configuration: race-sanitizer recording.

The integration tests run real proxies over real threads (reactor
loops, dispatch pools, shard workers), which is exactly the traffic the
data-race sanitizer exists to observe.  Instrumentation happens once in
the root conftest; this fixture flips the recording gate per test so
unit/property suites stay at marker-only cost.
"""

from __future__ import annotations

import pytest

from repro.obs import racesan


@pytest.fixture(autouse=True)
def _racesan_recording():
    sanitizer = racesan.active()
    if sanitizer is None or sanitizer.recording:
        yield
        return
    sanitizer.recording = True
    try:
        yield
    finally:
        sanitizer.recording = False

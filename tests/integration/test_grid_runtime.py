"""Integration tests: the full proxy grid on the in-process transport.

These drive the complete path the paper describes: CA-issued certificates,
proxy tunnels with the SSL-like handshake, authenticated + authorised job
submission validated at both ends, distributed status collection, and MPI
applications multiplexed through virtual slaves.
"""

import pytest

from repro.core.grid import Grid, GridError
from repro.core.proxy import ProxyError
from repro.mpi.datatypes import MAX, SUM
from repro.security.auth import AuthenticationError, PermissionDenied


@pytest.fixture()
def grid():
    g = Grid()
    g.add_site("A", nodes=2)
    g.add_site("B", nodes=2)
    g.add_site("C", nodes=1)
    g.connect_all()
    g.add_user("alice", "pw")
    g.grant("user:alice", "site:*", "submit")
    yield g
    g.shutdown()


class TestTopology:
    def test_full_mesh_of_tunnels(self, grid):
        assert grid.proxy_of("A").peers() == ["proxy.B", "proxy.C"]
        assert grid.proxy_of("B").peers() == ["proxy.A", "proxy.C"]
        assert grid.proxy_of("C").peers() == ["proxy.A", "proxy.B"]

    def test_ping_over_control_protocol(self, grid):
        from repro.core.protocol import Op

        reply = grid.proxy_of("A").request("proxy.C", Op.PING, timeout=10.0)
        assert reply.op == Op.PONG
        assert reply.body["proxy"] == "proxy.C"

    def test_duplicate_site_rejected(self, grid):
        with pytest.raises(GridError):
            grid.add_site("A")

    def test_connect_idempotent(self, grid):
        grid.connect("A", "B")  # second call is a no-op
        assert grid.proxy_of("A").peers().count("proxy.B") == 1

    def test_resource_location(self, grid):
        from repro.core.protocol import Op

        reply = grid.proxy_of("A").request(
            "proxy.B", Op.LOCATE_RESOURCE, {"node": "C.n0"}, timeout=10.0
        )
        assert reply.body["site"] == "C"


class TestJobs:
    def test_local_job(self, grid):
        assert grid.submit_job("alice", "pw", "echo", {"value": 1}, origin_site="A") == 1

    def test_remote_job_crosses_tunnel(self, grid):
        result = grid.submit_job(
            "alice", "pw", "sum_range", {"n": 100}, origin_site="A", target_site="B"
        )
        assert result == sum(range(100))

    def test_wrong_password_rejected_at_origin(self, grid):
        with pytest.raises(AuthenticationError):
            grid.submit_job("alice", "nope", "noop", origin_site="A")

    def test_unknown_user_rejected(self, grid):
        with pytest.raises(AuthenticationError):
            grid.submit_job("mallory", "pw", "noop", origin_site="A")

    def test_no_permission_rejected_at_origin(self, grid):
        grid.add_user("bob", "pw")  # no grants
        with pytest.raises(PermissionDenied):
            grid.submit_job("bob", "pw", "noop", origin_site="A", target_site="B")

    def test_site_scoped_permission(self, grid):
        grid.add_user("carol", "pw")
        grid.grant("user:carol", "site:A", "submit")
        assert grid.submit_job("carol", "pw", "echo", {"value": 5}, origin_site="A") == 5
        with pytest.raises(PermissionDenied):
            grid.submit_job("carol", "pw", "noop", origin_site="A", target_site="B")

    def test_group_permission_end_to_end(self, grid):
        grid.add_user("dave", "pw")
        grid.users.create_group("physics")
        grid.users.add_to_group("physics", "dave")
        grid.grant("group:physics", "site:B", "submit")
        result = grid.submit_job(
            "dave", "pw", "echo", {"value": "ok"}, origin_site="A", target_site="B"
        )
        assert result == "ok"

    def test_unknown_task_rejected_remotely(self, grid):
        with pytest.raises(ProxyError, match="rejected"):
            grid.submit_job(
                "alice", "pw", "not_a_task", origin_site="A", target_site="B"
            )

    def test_job_to_site_with_all_nodes_dead(self, grid):
        for node in grid.sites["C"].nodes.values():
            node.fail()
        with pytest.raises(ProxyError):
            grid.submit_job("alice", "pw", "noop", origin_site="A", target_site="C")


class TestMonitoring:
    def test_global_status_compiles_all_sites(self, grid):
        status = grid.global_status(via_site="A")
        assert sorted(status) == ["A", "B", "C"]
        assert len(status["A"]) == 2
        assert len(status["C"]) == 1
        entry = status["B"][0]
        assert entry["alive"] is True
        assert entry["site"] == "B"

    def test_status_reflects_failures(self, grid):
        grid.sites["B"].nodes["B.n0"].fail()
        status = grid.global_status(via_site="A")
        by_node = {e["node"]: e for e in status["B"]}
        assert by_node["B.n0"]["alive"] is False
        assert by_node["B.n1"]["alive"] is True

    def test_per_site_query_is_local_to_that_site(self, grid):
        """Distributed monitoring: asking one site touches one proxy."""
        proxy_a = grid.proxy_of("A")
        status = proxy_a.query_peer_status("proxy.B", timeout=10.0)
        assert len(status) == 2
        assert all(e["site"] == "B" for e in status)


class TestMpiOverGrid:
    def test_allreduce_across_three_sites(self, grid):
        def app(comm):
            return comm.allreduce(comm.rank + 1, SUM, timeout=30.0)

        result = grid.run_mpi(app, nprocs=5, timeout=60.0)
        assert result.ok
        assert all(r == 15 for r in result.returns)

    def test_placement_spans_sites_round_robin(self, grid):
        result = grid.run_mpi(lambda comm: comm.rank, nprocs=5, timeout=60.0)
        assert result.placement == ["A.n0", "A.n1", "B.n0", "B.n1", "C.n0"]

    def test_cross_site_point_to_point(self, grid):
        def app(comm):
            if comm.rank == 0:  # site A
                comm.send({"painload": list(range(50))}, dest=4, tag=3)  # site C
                return comm.recv(source=4, tag=4, timeout=30.0)
            if comm.rank == 4:
                got = comm.recv(source=0, tag=3, timeout=30.0)
                comm.send(len(got["painload"]), dest=0, tag=4)
                return got
            return None

        result = grid.run_mpi(app, nprocs=5, timeout=60.0)
        assert result.ok
        assert result.returns[0] == 50

    def test_virtual_slaves_created_per_remote_rank(self, grid):
        """The proxy of rank 0's site must hold slaves for all remote ranks."""
        probe = {}

        def app(comm):
            if comm.rank == 0:
                proxy = grid.proxy_of("A")
                # Find our app space (exactly one live app).
                with proxy._space_lock:
                    space = next(iter(proxy._spaces.values()))
                probe["local"] = space.local_ranks
                probe["remote"] = space.remote_ranks
                probe["slaves"] = sorted(space.slaves)
            comm.barrier(timeout=30.0)
            return comm.rank

        result = grid.run_mpi(app, nprocs=5, timeout=60.0)
        assert result.ok
        assert probe["local"] == [0, 1]
        assert probe["remote"] == [2, 3, 4]
        assert probe["slaves"] == [2, 3, 4]

    def test_local_traffic_not_tunneled(self, grid):
        """Messages between ranks at one site never touch the tunnels."""
        def app(comm):
            if comm.rank == 0:
                comm.send("local", dest=1)  # both at site A
            elif comm.rank == 1:
                return comm.recv(source=0, timeout=30.0)
            return None

        proxy_a = grid.proxy_of("A")
        before = {
            peer: proxy_a.tunnel_to(peer).stats.frames_sent
            for peer in proxy_a.peers()
        }
        result = grid.run_mpi(app, nprocs=2, timeout=60.0)
        assert result.ok
        # Only MPI_START/MPI_END control traffic may have crossed; with two
        # local ranks there are no remote sites, so nothing at all.
        after = {
            peer: proxy_a.tunnel_to(peer).stats.frames_sent
            for peer in proxy_a.peers()
        }
        assert before == after

    def test_app_spaces_cleaned_up(self, grid):
        result = grid.run_mpi(lambda comm: comm.rank, nprocs=5, timeout=60.0)
        assert result.ok
        for site in ["A", "B", "C"]:
            proxy = grid.proxy_of(site)
            with proxy._space_lock:
                assert proxy._spaces == {}

    def test_rank_failure_contained(self, grid):
        def app(comm):
            if comm.rank == 2:
                raise RuntimeError("rank 2 crashed")
            return "ok"

        result = grid.run_mpi(app, nprocs=3, timeout=60.0)
        assert not result.ok
        assert result.returns[0] == "ok"
        assert isinstance(result.errors[2], RuntimeError)
        # The grid survives: run another app immediately.
        again = grid.run_mpi(lambda comm: comm.size, nprocs=3, timeout=60.0)
        assert again.ok

    def test_collectives_heavy_mix_across_sites(self, grid):
        def app(comm):
            total = comm.allreduce(comm.rank, SUM, timeout=30.0)
            top = comm.allreduce(comm.rank, MAX, timeout=30.0)
            gathered = comm.gather(comm.rank * comm.rank, root=0, timeout=30.0)
            comm.barrier(timeout=30.0)
            scattered = comm.scatter(
                [i + 100 for i in range(comm.size)] if comm.rank == 0 else None,
                root=0,
                timeout=30.0,
            )
            return (total, top, gathered, scattered)

        result = grid.run_mpi(app, nprocs=5, timeout=120.0)
        assert result.ok
        total, top, gathered, scattered = result.returns[0]
        assert total == 10
        assert top == 4
        assert gathered == [0, 1, 4, 9, 16]
        assert [r[3] for r in result.returns] == [100, 101, 102, 103, 104]

    def test_load_balanced_placement_prefers_fast_nodes(self):
        grid = Grid()
        grid.add_site("slow", nodes=2, node_speed=1.0)
        grid.add_site("fast", nodes=2, node_speed=4.0)
        grid.connect_all()
        try:
            rank_to_site, _ = grid.place_ranks(2, policy="load_balanced")
            assert set(rank_to_site.values()) == {"fast"}
        finally:
            grid.shutdown()

    def test_unknown_policy_rejected(self, grid):
        with pytest.raises(GridError):
            grid.place_ranks(2, policy="quantum")


class TestTicketsOverGrid:
    def test_ticket_issued_and_verified_offline(self, grid):
        ticket = grid.tickets.issue("alice", "pw", rights=["mpi:run"])
        grid.tickets.verify(ticket, required_right="mpi:run")

    def test_ticket_wrong_password(self, grid):
        with pytest.raises(AuthenticationError):
            grid.tickets.issue("alice", "bad", rights=[])

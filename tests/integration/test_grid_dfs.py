"""Integration tests: the DFS extension mounted over a live grid."""

import pytest

from repro.core.grid import Grid, GridError


@pytest.fixture()
def grid():
    g = Grid()
    g.add_site("A", nodes=1)
    g.add_site("B", nodes=1)
    g.add_site("C", nodes=1)
    g.connect_all()
    yield g
    g.shutdown()


def test_filesystem_spans_all_sites(grid):
    fs = grid.create_filesystem(replication=2)
    assert fs.sites() == ["A", "B", "C"]


def test_write_read_over_grid_sites(grid):
    fs = grid.create_filesystem(replication=2, chunk_size=1024)
    payload = b"checkpoint data " * 1000
    fs.write("/jobs/1/state", payload, site="A")
    assert fs.read("/jobs/1/state", site="B") == payload


def test_survives_site_failure_and_repairs(grid):
    fs = grid.create_filesystem(replication=2, chunk_size=512)
    payload = bytes(range(256)) * 40
    fs.write("/data", payload)
    fs.store_of("A").fail()
    assert fs.read("/data") == payload
    recreated = fs.re_replicate("A")
    assert recreated >= 0  # chunks that had a replica on A were repaired
    fs.store_of("B").fail()
    assert fs.read("/data") == payload


def test_replication_exceeding_sites_rejected(grid):
    with pytest.raises(GridError, match="replication"):
        grid.create_filesystem(replication=5)


def test_write_locality_prefers_origin_site(grid):
    fs = grid.create_filesystem(replication=2, chunk_size=4096)
    entry = fs.write("/local-first", b"x" * 10_000, site="C")
    for index in range(entry.chunk_count):
        assert "C" in entry.sites_for(index)

"""Dual-mode conformance: the reactor and threaded engines must agree.

``REPRO_IO`` selects between two I/O engines — the shared-reactor event
loop and the thread-per-connection escape hatch.  They are different
machinery under the same contract, so every grid-level scenario here
runs once per engine and the *observable* results are compared for
equality: same status tables, same MPI answers, same failover outcome,
same echo payloads.  Timing, thread counts, and telemetry are allowed to
differ; answers are not.

Each scenario is a pure function of a freshly-built grid that returns a
deterministic, comparable value.  The parity assertion is then literal
``==`` between the two engines' results.
"""

import pytest

from repro.core.grid import Grid
from repro.core.protocol import Op
from repro.mpi.datatypes import SUM

MODES = ("reactor", "threaded")


def _run_in_mode(io: str, scenario, **grid_kwargs):
    """Build a grid under ``io``, run the scenario, tear down."""
    grid = Grid(io=io, **grid_kwargs)
    try:
        return scenario(grid)
    finally:
        grid.shutdown()


def _both_modes(scenario, **grid_kwargs) -> dict[str, object]:
    return {io: _run_in_mode(io, scenario, **grid_kwargs) for io in MODES}


def _assert_parity(results: dict[str, object]):
    assert results["reactor"] == results["threaded"], (
        f"engines disagree:\n  reactor={results['reactor']!r}\n"
        f"  threaded={results['threaded']!r}"
    )
    return results["reactor"]


# ---------------------------------------------------------------------------
# Scenario 1: global status compilation
# ---------------------------------------------------------------------------


def _status_scenario(grid: Grid):
    grid.add_site("A", nodes=2)
    grid.add_site("B", nodes=3)
    grid.connect_all()
    status = grid.global_status(via_site="A")
    # Load figures (ram_free, running_tasks) are time-dependent; the
    # *shape* of the compiled answer is the contract.
    return {
        site: sorted(
            (row["node"], row["site"], row["cpu_speed"], row["alive"])
            for row in rows
        )
        for site, rows in status.items()
    }


def test_global_status_identical_across_engines():
    compiled = _assert_parity(_both_modes(_status_scenario))
    assert set(compiled) == {"A", "B"}
    assert len(compiled["B"]) == 3


# ---------------------------------------------------------------------------
# Scenario 2: MPI round-trip across sites
# ---------------------------------------------------------------------------


def _mpi_scenario(grid: Grid):
    grid.add_site("A", nodes=2)
    grid.add_site("B", nodes=2)
    grid.connect_all()

    def app(comm):
        total = comm.allreduce(comm.rank + 1, SUM, timeout=30.0)
        return (comm.rank, total)

    result = grid.run_mpi(app, nprocs=4, timeout=60.0)
    assert not result.errors
    return {"returns": result.returns, "placement": result.placement}


def test_mpi_round_trip_identical_across_engines():
    outcome = _assert_parity(_both_modes(_mpi_scenario))
    assert outcome["returns"] == [(rank, 10) for rank in range(4)]


# ---------------------------------------------------------------------------
# Scenario 3: retry failover to a surviving proxy
# ---------------------------------------------------------------------------


def _failover_scenario(grid: Grid):
    grid.add_site("A", nodes=1)
    grid.add_site("B", nodes=2)
    grid.add_extra_proxy("B")
    grid.connect_all()
    grid.add_user("alice", "pw")
    grid.grant("user:alice", "site:*", "submit")
    grid.proxies["proxy.B"].shutdown()
    result = grid.submit_job(
        "alice", "pw", "echo", {"value": "via backup"},
        origin_site="A", target_site="B", timeout=60.0,
    )
    status = grid.global_status(via_site="A")
    return {"job": result, "b_nodes": len(status["B"])}


def test_retry_failover_identical_across_engines():
    outcome = _assert_parity(_both_modes(_failover_scenario))
    assert outcome == {"job": "via backup", "b_nodes": 2}


# ---------------------------------------------------------------------------
# Scenario 4: secure tunnel echo (control-plane round trip)
# ---------------------------------------------------------------------------


def _tunnel_echo_scenario(grid: Grid):
    grid.add_site("A", nodes=1)
    grid.add_site("B", nodes=1)
    grid.connect_all()
    grid.add_user("alice", "pw")
    grid.grant("user:alice", "site:*", "submit")
    origin = grid.proxy_of("A")
    peer = grid.directory.proxy_of_site("B")
    pong = origin.request(peer, Op.PING, timeout=30.0)
    payload = {"n": 7, "text": "café", "nested": {"ok": True}}
    echoed = grid.submit_job(
        "alice", "pw", "echo", {"value": payload},
        origin_site="A", target_site="B", timeout=60.0,
    )
    return {
        "pong_op": pong.op,
        "pong_sender": pong.sender,
        "echoed": echoed,
        "tunnel_mode": origin._tunnels[peer].mode,
    }


def test_secure_tunnel_echo_identical_across_engines():
    results = _both_modes(_tunnel_echo_scenario)
    # The engine label itself is *expected* to differ — it proves each
    # grid really ran on its own transport.  Everything else must match.
    assert results["reactor"].pop("tunnel_mode") == "reactor"
    assert results["threaded"].pop("tunnel_mode") == "threaded"
    outcome = _assert_parity(results)
    assert outcome["pong_op"] == Op.PONG
    assert outcome["echoed"] == {"n": 7, "text": "café", "nested": {"ok": True}}


# ---------------------------------------------------------------------------
# Scenario 5: workload-manager ops (JOB_QSUBMIT/JOB_CLAIM/JOB_STATUS/JOB_DONE)
# ---------------------------------------------------------------------------


def _wms_scenario(grid: Grid):
    from repro.control.wms import JobSpec

    grid.add_site("A", nodes=1)
    grid.add_site("B", nodes=2, node_speed=2.0)
    grid.connect_all()
    grid.attach_workload_manager("A", half_life=60.0)
    authority = grid.proxy_of("A").name
    pilot = grid.proxy_of("B")
    submits = [
        pilot.wms_submit(
            authority,
            JobSpec(job_id=f"j{i}", user=f"u{i % 2}", priority=i % 2,
                    work=1.0 + i, max_attempts=2),
        )
        for i in range(6)
    ]
    duplicate = pilot.wms_submit(authority, JobSpec(job_id="j0"))
    transcript = []
    while True:
        grants = pilot.wms_claim(authority, count=2)
        if not grants:
            break
        for grant in grants:
            job_id = grant["job"]["job_id"]
            if grant["token"] == "j3#1":  # one injected failure: requeue path
                ack = pilot.wms_done(
                    authority, job_id, grant["token"], ok=False, error="boom"
                )
            else:
                ack = pilot.wms_done(authority, job_id, grant["token"])
            transcript.append((job_id, grant["token"], ack["state"]))
    stale = pilot.wms_done(authority, "j3", "j3#1", ok=True)
    return {
        "submits": submits,
        "duplicate": duplicate,
        "transcript": transcript,
        "stale": stale,
        "job3": {
            key: value
            for key, value in pilot.wms_status(authority, job_id="j3").items()
            if key in ("state", "attempts", "error")
        },
        "queue": pilot.wms_status(authority),
    }


def test_wms_ops_identical_across_engines():
    outcome = _assert_parity(_both_modes(_wms_scenario))
    assert outcome["duplicate"]["duplicate"] is True
    assert outcome["stale"]["duplicate"] is True  # j3 finished on retry
    assert outcome["queue"]["done"] == 6
    assert outcome["queue"]["pending"] == outcome["queue"]["claimed"] == 0
    # The claim order itself is part of the contract: priority tier 1
    # first, fair-share alternation within a tier, j3 retried once.
    assert ("j3", "j3#2", "done") in outcome["transcript"]


# ---------------------------------------------------------------------------
# Scenario 6: token auth control plane (login / submit / deny / revoke)
# ---------------------------------------------------------------------------


def _auth_scenario(grid: Grid):
    import time

    from repro.core.proxy import ProxyError
    from repro.security.tokens import TokenError

    grid.add_site("A", nodes=1)
    grid.add_site("B", nodes=1)
    grid.connect_all()
    grid.enable_token_auth()
    grid.add_user("alice", "pw")
    grid.grant("user:alice", "site:*", "submit")

    blob = grid.login("alice", "pw", via_site="A")
    echoed = grid.submit_job_with_token(
        blob, "echo", {"value": "tokenised"},
        origin_site="A", target_site="B", timeout=60.0,
    )

    # A token narrowed away from jobs:submit is vetoed before dispatch.
    narrow = grid.login("alice", "pw", via_site="A", scopes=["wms:read"])
    try:
        grid.submit_job_with_token(
            narrow, "echo", {"value": "nope"},
            origin_site="A", target_site="B", timeout=60.0,
        )
        denied = "accepted"
    except (TokenError, ProxyError):
        denied = "denied"

    # Revocation: origin rejects immediately; the peer converges by
    # gossip-triggered pull, which we poll rather than sleep for.
    epoch = grid.revoke_token(blob, via_site="A")
    deadline = 30.0
    waited = 0.0
    peer = grid.proxy_of("B")
    while peer.tokens.epoch < epoch and waited < deadline:
        time.sleep(0.02)
        waited += 0.02
    outcomes = {}
    for site in ("A", "B"):
        try:
            grid.submit_job_with_token(
                blob, "echo", {"value": "zombie"},
                origin_site=site, target_site=site, timeout=60.0,
            )
            outcomes[site] = "accepted"
        except (TokenError, ProxyError):
            outcomes[site] = "revoked"
    return {
        "echoed": echoed,
        "denied": denied,
        "peer_epoch_reached": peer.tokens.epoch >= epoch,
        "post_revocation": outcomes,
    }


EXPECTED_AUTH_OUTCOME = {
    "echoed": "tokenised",
    "denied": "denied",
    "peer_epoch_reached": True,
    "post_revocation": {"A": "revoked", "B": "revoked"},
}


def test_token_auth_identical_across_engines(monkeypatch):
    # The scenario *is* the token plane; pin the mode so a REPRO_AUTH=legacy
    # sweep of the suite exercises legacy everywhere else but not here.
    monkeypatch.setenv("REPRO_AUTH", "token")
    outcome = _assert_parity(_both_modes(_auth_scenario))
    assert outcome == EXPECTED_AUTH_OUTCOME


def test_token_auth_identical_under_sharding(monkeypatch):
    monkeypatch.setenv("REPRO_AUTH", "token")
    monkeypatch.setenv("REPRO_SHARDS", "2")
    outcome = _assert_parity(_both_modes(_auth_scenario))
    assert outcome == EXPECTED_AUTH_OUTCOME


# ---------------------------------------------------------------------------
# Cross-cutting: OBS_DUMP works over both engines
# ---------------------------------------------------------------------------


def _obs_scenario(grid: Grid):
    grid.add_site("A", nodes=1)
    grid.add_site("B", nodes=1)
    grid.connect_all()
    origin = grid.proxy_of("A")
    origin.request(grid.directory.proxy_of_site("B"), Op.PING, timeout=30.0)
    view = grid.global_observability(via_site="A")
    return {
        site: {
            "name": dump["name"],
            "has_counters": bool(dump["metrics"]["counters"]),
        }
        for site, dump in view.items()
    }


@pytest.mark.parametrize("io", MODES)
def test_observability_dump_compiles_under_either_engine(io):
    view = _run_in_mode(io, _obs_scenario)
    assert view == {
        "A": {"name": "proxy.A", "has_counters": True},
        "B": {"name": "proxy.B", "has_counters": True},
    }

"""Integration tests for the CLI, web interface and distributed threads."""

import json
import urllib.request

import pytest

from repro.core.grid import Grid
from repro.threads.remote import GridExecutor, GridThread, GridThreadError
from repro.ui.cli import build_demo_grid, main
from repro.ui.web import GridWebServer


@pytest.fixture()
def grid():
    g = Grid()
    g.add_site("A", nodes=2)
    g.add_site("B", nodes=2)
    g.connect_all()
    g.add_user("alice", "pw")
    g.grant("user:alice", "site:*", "submit")
    yield g
    g.shutdown()


class TestCli:
    def test_status_command(self, capsys):
        assert main(["--sites", "2", "--nodes", "1", "status"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert sorted(out) == ["siteA", "siteB"]

    def test_station_command(self, capsys):
        assert main(["--sites", "1", "--nodes", "2", "station", "siteA.n1"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["node"] == "siteA.n1"
        assert out["alive"] is True

    def test_topology_command(self, capsys):
        assert main(["--sites", "2", "--nodes", "1", "topology"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["sites"]["siteA"]["tunnels"] == ["proxy.siteB"]

    def test_submit_command(self, capsys):
        assert main(
            ["--sites", "2", "--nodes", "1", "submit",
             "--task", "echo", "--params", '{"value": 9}',
             "--origin", "siteA", "--target", "siteB"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["result"] == 9

    def test_mpi_pi_command(self, capsys):
        assert main(
            ["--sites", "2", "--nodes", "2", "mpi-pi",
             "--nprocs", "4", "--samples", "2000"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert 2.8 < out["pi_estimate"] < 3.5
        assert len(out["placement"]) == 4

    def test_demo_grid_builder(self):
        grid = build_demo_grid(3, 1)
        try:
            assert sorted(grid.sites) == ["siteA", "siteB", "siteC"]
            assert grid.proxy_of("siteA").peers() == [
                "proxy.siteB", "proxy.siteC"
            ]
        finally:
            grid.shutdown()


class TestWebInterface:
    def fetch(self, url):
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, response.read()

    def test_summary_endpoint(self, grid):
        with GridWebServer(grid) as server:
            status, body = self.fetch(f"{server.url}/api/summary")
            assert status == 200
            summary = json.loads(body)
            assert summary["sites"] == 2
            assert summary["nodes"] == 4

    def test_status_endpoint(self, grid):
        with GridWebServer(grid) as server:
            _, body = self.fetch(f"{server.url}/api/status")
            status = json.loads(body)
            assert sorted(status) == ["A", "B"]

    def test_station_endpoint(self, grid):
        with GridWebServer(grid) as server:
            _, body = self.fetch(f"{server.url}/api/station?node=B.n0")
            assert json.loads(body)["site"] == "B"

    def test_unknown_station_404(self, grid):
        with GridWebServer(grid) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                self.fetch(f"{server.url}/api/station?node=ghost")
            assert err.value.code == 404

    def test_html_overview(self, grid):
        with GridWebServer(grid) as server:
            status, body = self.fetch(f"{server.url}/")
            assert status == 200
            text = body.decode()
            assert "proxy.A" in text
            assert "Computational Grid" in text

    def test_unknown_path_404(self, grid):
        with GridWebServer(grid) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                self.fetch(f"{server.url}/nope")
            assert err.value.code == 404


class TestGridThreads:
    def test_single_thread_remote_result(self, grid):
        thread = GridThread(
            grid, "alice", "pw", "sum_range", {"n": 10}, target_site="B"
        ).start()
        thread.join(timeout=30.0)
        assert thread.result() == 45

    def test_thread_error_propagates_on_result(self, grid):
        thread = GridThread(grid, "alice", "wrong-pw", "noop").start()
        thread.join(timeout=30.0)
        with pytest.raises(Exception):
            thread.result()

    def test_double_start_rejected(self, grid):
        thread = GridThread(grid, "alice", "pw", "noop").start()
        with pytest.raises(GridThreadError):
            thread.start()
        thread.join(timeout=30.0)

    def test_result_before_finish_rejected(self, grid):
        thread = GridThread(grid, "alice", "pw", "noop")
        with pytest.raises(GridThreadError):
            thread.join()
        thread.start()
        thread.join(timeout=30.0)
        thread.result()

    def test_executor_map_spreads_sites(self, grid):
        executor = GridExecutor(grid, "alice", "pw", origin_site="A")
        results = executor.map(
            "sum_range", [{"n": n} for n in [5, 10, 15, 20]]
        )
        assert results == [10, 45, 105, 190]
        executor.shutdown()

    def test_executor_submit_individual(self, grid):
        executor = GridExecutor(grid, "alice", "pw")
        a = executor.submit("echo", {"value": "x"}, target_site="A")
        b = executor.submit("echo", {"value": "y"}, target_site="B")
        a.join(timeout=30.0)
        b.join(timeout=30.0)
        assert (a.result(), b.result()) == ("x", "y")

"""Failure injection and adversarial-input tests for the live runtime.

The paper's reliability arguments — failures confined to a site,
unauthorized traffic discarded, external integration protecting the
middleware — are exercised here with deliberate faults: killed proxies,
dead nodes, hostile frames, corrupted records.
"""

import threading
import time

import pytest

from repro.core.grid import Grid
from repro.core.protocol import Op
from repro.core.proxy import ProxyError
from repro.mpi.datatypes import SUM
from repro.transport.frames import Frame, FrameKind, encode_value


@pytest.fixture()
def grid():
    g = Grid()
    g.add_site("A", nodes=2)
    g.add_site("B", nodes=2)
    g.add_site("C", nodes=2)
    g.connect_all()
    g.add_user("alice", "pw")
    g.grant("user:alice", "site:*", "submit")
    yield g
    g.shutdown()


class TestProxyFailure:
    def test_surviving_sites_keep_working(self, grid):
        grid.proxy_of("C").shutdown()
        # A <-> B remains fully functional.
        result = grid.submit_job(
            "alice", "pw", "echo", {"value": 1}, origin_site="A", target_site="B"
        )
        assert result == 1

    def test_request_to_dead_proxy_fails_fast(self, grid):
        grid.proxy_of("C").shutdown()
        time.sleep(0.1)  # let tunnel closure propagate
        with pytest.raises(ProxyError):
            grid.proxy_of("A").request("proxy.C", Op.PING, timeout=5.0)

    def test_peer_loss_callbacks_fire_on_both_sides(self, grid):
        lost_a, lost_b = [], []
        grid.proxy_of("A").on_peer_lost.append(lost_a.append)
        grid.proxy_of("B").on_peer_lost.append(lost_b.append)
        grid.proxy_of("C").shutdown()
        deadline = time.monotonic() + 10.0
        while (not lost_a or not lost_b) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert "proxy.C" in lost_a
        assert "proxy.C" in lost_b

    def test_mpi_on_surviving_sites_after_proxy_death(self, grid):
        grid.proxy_of("C").shutdown()
        for node in grid.sites["C"].nodes.values():
            node.fail()
        result = grid.run_mpi(
            lambda comm: comm.allreduce(1, SUM, timeout=30.0),
            nprocs=4,
            timeout=60.0,
        )
        assert result.ok
        assert all(r == 4 for r in result.returns)
        # C's dead nodes were skipped by placement.
        assert all(not name.startswith("C.") for name in result.placement)

    def test_in_flight_requests_cancelled_on_tunnel_loss(self, grid):
        """A request outstanding when the tunnel dies gets an error, not a hang."""
        sleeper = threading.Thread(
            target=lambda: grid.sites["C"].nodes["C.n0"].execute("sleep", {"duration": 2.0})
        )
        errors = []

        def submit():
            try:
                grid.proxy_of("A").request(
                    "proxy.C", Op.STATUS_QUERY, timeout=30.0
                )
            except ProxyError as exc:
                errors.append(str(exc))

        # Send the request, then kill the peer before it can matter.
        thread = threading.Thread(target=submit)
        grid.proxy_of("C").extension_handlers[Op.STATUS_QUERY] = (
            lambda msg, peer: None  # swallow: never reply
        )
        thread.start()
        time.sleep(0.1)
        grid.proxy_of("C").shutdown()
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        assert errors and "closed" in errors[0]


class TestNodeFailure:
    def test_job_routed_around_dead_node(self, grid):
        grid.sites["B"].nodes["B.n0"].fail()
        for _ in range(3):
            result = grid.submit_job(
                "alice", "pw", "echo", {"value": "x"},
                origin_site="A", target_site="B",
            )
            assert result == "x"

    def test_whole_site_dead_rejects_cleanly(self, grid):
        for node in grid.sites["B"].nodes.values():
            node.fail()
        with pytest.raises(ProxyError, match="rejected"):
            grid.submit_job(
                "alice", "pw", "noop", origin_site="A", target_site="B"
            )

    def test_node_recovery_restores_capacity(self, grid):
        for node in grid.sites["B"].nodes.values():
            node.fail()
        grid.sites["B"].nodes["B.n1"].recover()
        result = grid.submit_job(
            "alice", "pw", "echo", {"value": 5}, origin_site="A", target_site="B"
        )
        assert result == 5


class TestHostileTraffic:
    def test_unauthenticated_connection_discarded(self, grid):
        """A raw client that never completes the handshake is dropped."""
        address = grid.directory.address_of_proxy("proxy.A")
        raw = grid._fabric.connect(address)
        # Send garbage where a handshake HELLO belongs.
        raw.send(Frame(kind=FrameKind.HANDSHAKE, headers={"step": "hello"},
                       payload=b"not a dict"))
        # The proxy must survive and keep serving authenticated peers.
        time.sleep(0.1)
        reply = grid.proxy_of("B").request("proxy.A", Op.PING, timeout=10.0)
        assert reply.op == Op.PONG

    def test_malformed_control_body_ignored(self, grid):
        """Corrupt control frames over a real tunnel are discarded."""
        tunnel = grid.proxy_of("A").tunnel_to("proxy.B")
        tunnel.send(
            Frame(
                kind=FrameKind.CONTROL,
                headers={"op": 99999999, "id": 1},
                payload=encode_value({}),
            )
        )
        # B's proxy is still healthy.
        reply = grid.proxy_of("A").request("proxy.B", Op.PING, timeout=10.0)
        assert reply.op == Op.PONG

    def test_mpi_frame_for_unknown_app_ignored(self, grid):
        tunnel = grid.proxy_of("A").tunnel_to("proxy.B")
        tunnel.send(
            Frame(
                kind=FrameKind.MPI,
                headers={"app": "ghost-app", "src": 0, "dst": 1, "tag": 0},
                payload=encode_value("boo"),
            )
        )
        reply = grid.proxy_of("A").request("proxy.B", Op.PING, timeout=10.0)
        assert reply.op == Op.PONG

    def test_tampered_record_kills_only_that_tunnel(self, grid):
        """Record corruption is detected; the victim drops the tunnel."""
        proxy_a = grid.proxy_of("A")
        tunnel = proxy_a.tunnel_to("proxy.B")
        # Forge a DATA frame with a garbage record straight onto the
        # underlying channel, bypassing the cipher.
        tunnel._secure._inner.send(
            Frame(kind=FrameKind.DATA, payload=b"\x00" * 48)
        )
        deadline = time.monotonic() + 10.0
        while "proxy.A" in grid.proxy_of("B").peers() and time.monotonic() < deadline:
            time.sleep(0.02)
        # B tore down the corrupted tunnel; its other tunnel still works.
        assert "proxy.A" not in grid.proxy_of("B").peers()
        reply = grid.proxy_of("C").request("proxy.B", Op.PING, timeout=10.0)
        assert reply.op == Op.PONG


class TestRankFailureDuringCollectives:
    def test_failed_rank_reported_not_hung(self, grid):
        """A rank that dies before a collective leaves peers recoverable."""

        def app(comm):
            if comm.rank == 1:
                raise RuntimeError("early death")
            # Survivors only talk among themselves.
            if comm.rank == 0:
                comm.send("hi", dest=2, tag=1)
                return "sent"
            if comm.rank == 2:
                return comm.recv(source=0, tag=1, timeout=30.0)
            return None

        result = grid.run_mpi(app, nprocs=3, timeout=60.0)
        assert isinstance(result.errors[1], RuntimeError)
        assert result.returns[0] == "sent"
        assert result.returns[2] == "hi"

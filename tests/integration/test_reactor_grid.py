"""Integration tests for the event-driven core on a live grid.

The reactor migration's claims, checked end-to-end: O(loops + pool)
threads regardless of tunnel count, clean repeated start/shutdown with
no thread leaks, timer-driven heartbeats feeding the failure detector,
tunnel-level backpressure that congests without killing the link, and
the ``REPRO_IO=threaded`` escape hatch.
"""

import threading
import time

import pytest

from repro.control.failure import FailureDetector, PeerState
from repro.core.grid import Grid
from repro.core.tunnel import Tunnel, TunnelBusy
from repro.security.cipher import RecordCipher, derive_session_keys, random_master_secret
from repro.security.handshake import PeerIdentity, SecureChannel
from repro.transport.frames import Frame, FrameKind
from repro.transport.inproc import channel_pair


def _settled_thread_count(baseline: int, slack: int = 1, timeout: float = 5.0) -> int:
    """Wait for dying threads to finish, then return the live count."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        count = threading.active_count()
        if count <= baseline + slack:
            return count
        time.sleep(0.02)
    return threading.active_count()


class TestThreadBudget:
    def test_connected_grid_uses_loop_not_thread_per_tunnel(self):
        """4 sites fully meshed = 12 tunnels plus node-local secure
        channels; the I/O cost must stay one shared loop thread.  The
        remaining threads are per-node workers and per-proxy acceptors,
        which exist in both modes."""
        sites = ["A", "B", "C", "D"]
        nodes_per_site = 2
        before = threading.active_count()
        grid = Grid(io="reactor")  # the claim under test is reactor-specific
        try:
            for name in sites:
                grid.add_site(name, nodes=nodes_per_site)
            grid.connect_all()
            budget = len(sites) * nodes_per_site + len(sites) + 2
            assert threading.active_count() - before <= budget
            for name in sites:
                for peer in sites:
                    if peer != name:
                        tunnel = grid.proxy_of(name)._tunnels[f"proxy.{peer}"]
                        assert tunnel.mode == "reactor"
        finally:
            grid.shutdown()


class TestShutdownOrdering:
    def test_fifty_start_shutdown_cycles_leak_nothing(self):
        """Regression for the shutdown races: listener closed before
        tunnels, reader callbacks quiesced, every thread joined.  Any
        leak compounds over 50 cycles and trips the final bound."""
        baseline = threading.active_count()
        for cycle in range(50):
            grid = Grid()
            grid.add_site("A", nodes=1)
            grid.add_site("B", nodes=1)
            grid.connect_all()
            grid.shutdown()
        settled = _settled_thread_count(baseline, slack=1)
        assert settled <= baseline + 1, (
            f"thread leak after 50 cycles: {baseline} -> {settled}: "
            f"{[t.name for t in threading.enumerate()]}"
        )

    def test_shutdown_is_idempotent_and_reentrant(self):
        grid = Grid()
        grid.add_site("A", nodes=1)
        grid.add_site("B", nodes=1)
        grid.connect_all()
        grid.proxy_of("A").shutdown()
        grid.proxy_of("A").shutdown()
        grid.shutdown()
        grid.shutdown()


class TestTimerHeartbeats:
    def test_silence_is_detected_and_recovery_observed(self):
        """Proxy A heartbeats on a reactor timer; B stays silent.  A's
        detector must walk ALIVE -> SUSPECT -> DEAD on timer-driven
        ``check`` calls alone, then flip back to ALIVE when B finally
        speaks."""
        grid = Grid()
        try:
            grid.add_site("A", nodes=1)
            grid.add_site("B", nodes=1)
            grid.connect_all()
            pa = grid.proxy_of("A")
            pb = grid.proxy_of("B")

            detector = FailureDetector(
                clock=pa.clock, suspect_after=0.15, dead_after=0.4
            )
            dead, recovered = threading.Event(), threading.Event()
            detector.on_dead.append(lambda peer: dead.set())
            detector.on_recover.append(lambda peer: recovered.set())
            detector.watch("proxy.B")
            pa.health = detector

            pa.start_heartbeats(0.05)
            assert dead.wait(timeout=10.0), "silent peer never declared DEAD"
            assert detector.state_of("proxy.B") is PeerState.DEAD

            pb.start_heartbeats(0.05)
            assert recovered.wait(timeout=10.0), "peer never recovered"
            assert detector.state_of("proxy.B") is PeerState.ALIVE
        finally:
            grid.shutdown()

    def test_start_heartbeats_is_idempotent(self):
        grid = Grid()
        try:
            grid.add_site("A", nodes=1)
            pa = grid.proxy_of("A")
            first = pa.start_heartbeats(5.0)
            assert pa.start_heartbeats(5.0) is first
            pa.stop_heartbeats()
            assert pa._heartbeat_timer is None
        finally:
            grid.shutdown()

    def test_grid_level_interval_arms_every_proxy(self):
        grid = Grid(heartbeat_interval=5.0)
        try:
            grid.add_site("A", nodes=1)
            grid.add_site("B", nodes=1)
            assert grid.proxy_of("A")._heartbeat_timer is not None
            assert grid.proxy_of("B")._heartbeat_timer is not None
        finally:
            grid.shutdown()


class _FakePeer:
    subject = "test-peer"
    role = "proxy"


def _secure_pair(maxsize: int, send_timeout: float):
    """Secure channel pair over a bounded in-process buffer, skipping the
    RSA handshake (both ends derive from one master secret)."""
    raw_a, raw_b = channel_pair("busy", maxsize=maxsize, send_timeout=send_timeout)
    master = random_master_secret()
    ck = derive_session_keys(master, "client")
    sk = derive_session_keys(master, "server")
    peer = PeerIdentity(_FakePeer())
    suite = "shake128"
    a = SecureChannel(raw_a, RecordCipher(ck, suite), RecordCipher(sk, suite), peer)
    b = SecureChannel(raw_b, RecordCipher(sk, suite), RecordCipher(ck, suite), peer)
    return a, b


class TestTunnelBackpressure:
    def test_congested_tunnel_raises_busy_without_closing(self):
        secure_a, secure_b = _secure_pair(maxsize=4, send_timeout=0.05)
        sender = Tunnel(secure_a, "a")
        frame = Frame(kind=FrameKind.DATA, payload=b"\x42" * 64)
        # The peer never starts reading: the bounded buffer fills after
        # exactly ``maxsize`` frames, then sends fail fast and loudly.
        for _ in range(4):
            sender.send(frame)
        with pytest.raises(TunnelBusy):
            sender.send(frame)
        assert sender.alive, "backpressure must not tear the tunnel down"
        # Draining the peer un-wedges the very next send.
        secure_b.recv(timeout=1.0)
        sender.send(frame)
        sender.close()
        secure_b.close()

    def test_busy_is_a_tunnel_error_subclass(self):
        """Existing except-TunnelError callers keep working unchanged."""
        from repro.core.tunnel import TunnelError

        assert issubclass(TunnelBusy, TunnelError)


class TestThreadedEscapeHatch:
    def test_repro_io_threaded_restores_old_transport(self, monkeypatch):
        monkeypatch.setenv("REPRO_IO", "threaded")
        grid = Grid()
        try:
            grid.add_site("A", nodes=1)
            grid.add_site("B", nodes=1)
            grid.connect_all()
            grid.add_user("alice", "pw")
            grid.grant("user:alice", "site:*", "submit")
            tunnel = grid.proxy_of("A")._tunnels["proxy.B"]
            assert tunnel.mode == "threaded"
            result = grid.submit_job(
                "alice", "pw", "echo", {"value": 7}, origin_site="A", target_site="B"
            )
            assert result == 7
        finally:
            grid.shutdown()

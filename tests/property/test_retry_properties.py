"""Property-based tests: retry policy schedules and frame-decoder fuzzing.

The retry properties pin the contract the whole stack leans on — backoff
grows monotonically up to its cap, jitter stays inside its declared
band, and a deadline budget is never overspent.  The decoder properties
feed a frame stream through every split, truncation and corruption a
faulty transport can produce: the decoder must yield the right frames or
raise :class:`FrameError`, never crash and never invent data.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.retry import Deadline, RetryError, RetryPolicy
from repro.transport.errors import TransportError
from repro.transport.frames import (
    Frame,
    FrameDecoder,
    FrameError,
    FrameKind,
    encode_frame,
)

# ---------------------------------------------------------------------------
# RetryPolicy schedules
# ---------------------------------------------------------------------------

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay=st.floats(min_value=0.0, max_value=1.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=1.0, max_value=10.0),
    jitter=st.floats(min_value=0.0, max_value=0.5, exclude_max=True),
)


@settings(max_examples=100, deadline=None)
@given(policies)
def test_nominal_delays_monotone_and_capped(policy):
    delays = list(policy.nominal_delays())
    assert len(delays) == policy.max_attempts - 1
    assert all(d <= policy.max_delay for d in delays)
    assert delays == sorted(delays)
    if delays:
        assert delays[0] == min(policy.base_delay, policy.max_delay)


@settings(max_examples=100, deadline=None)
@given(policies, st.integers(min_value=0, max_value=2**32))
def test_jittered_delays_stay_in_band(policy, seed):
    rng = random.Random(seed)
    for nominal, jittered in zip(policy.nominal_delays(), policy.delays(rng=rng)):
        band = policy.jitter * nominal
        assert nominal - band <= jittered <= nominal + band
        assert jittered >= 0.0


@settings(max_examples=100, deadline=None)
@given(policies, st.integers(min_value=0, max_value=2**32))
def test_jitter_replays_from_seed(policy, seed):
    first = list(policy.delays(rng=random.Random(seed)))
    second = list(policy.delays(rng=random.Random(seed)))
    assert first == second


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0.01, max_value=5.0),
)
def test_deadline_budget_never_overspent(max_attempts, budget):
    """Simulated clock: the policy stops before sleeping past the deadline."""
    policy = RetryPolicy(
        max_attempts=max_attempts,
        base_delay=0.05,
        multiplier=2.0,
        max_delay=1.0,
        jitter=0.0,
        deadline=budget,
    )
    now = [0.0]

    def clock():
        return now[0]

    def sleep(duration):
        now[0] += duration

    def always_fails(deadline):
        now[0] += 0.01  # each attempt costs a little simulated time
        raise TransportError("injected")

    with pytest.raises(RetryError) as info:
        policy.call(always_fails, clock=clock, sleep=sleep)
    assert now[0] <= budget + 0.01  # never sleeps past the budget
    assert 1 <= info.value.attempts <= max_attempts


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=8))
def test_non_idempotent_runs_exactly_once(max_attempts):
    policy = RetryPolicy(max_attempts=max_attempts, base_delay=0.0, max_delay=0.0)
    calls = []

    def fails(deadline):
        calls.append(1)
        raise TransportError("injected")

    with pytest.raises(RetryError):
        policy.call(fails, idempotent=False, sleep=lambda _: None)
    assert len(calls) == 1


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10))
def test_attempt_count_is_exact(max_attempts, succeed_on):
    policy = RetryPolicy(
        max_attempts=max_attempts, base_delay=0.0, max_delay=0.0, jitter=0.0
    )
    calls = []

    def flaky(deadline):
        calls.append(1)
        if len(calls) <= succeed_on:
            raise TransportError("injected")
        return "done"

    if succeed_on < max_attempts:
        assert policy.call(flaky, sleep=lambda _: None) == "done"
        assert len(calls) == succeed_on + 1
    else:
        with pytest.raises(RetryError) as info:
            policy.call(flaky, sleep=lambda _: None)
        assert len(calls) == max_attempts
        assert info.value.attempts == max_attempts


def test_deadline_clamp_basic():
    now = [0.0]
    deadline = Deadline(2.0, clock=lambda: now[0])
    assert deadline.clamp(5.0) == 2.0
    assert deadline.clamp(1.0) == 1.0
    now[0] = 1.5
    assert abs(deadline.clamp(5.0) - 0.5) < 1e-9
    now[0] = 3.0
    assert deadline.clamp(5.0) == 0.0
    assert deadline.expired()


# ---------------------------------------------------------------------------
# FrameDecoder under hostile byte streams
# ---------------------------------------------------------------------------

frames_strategy = st.lists(
    st.builds(
        Frame,
        kind=st.sampled_from(list(FrameKind)),
        channel=st.integers(min_value=0, max_value=2**16),
        headers=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.integers(min_value=-(2**31), max_value=2**31), st.text(max_size=16)),
            max_size=3,
        ),
        payload=st.binary(max_size=256),
    ),
    min_size=1,
    max_size=5,
)


def drain(decoder):
    out = []
    while True:
        frame = decoder.next_frame()
        if frame is None:
            return out
        out.append(frame)


@settings(max_examples=100, deadline=None)
@given(frames_strategy, st.data())
def test_decoder_reassembles_any_split(frames, data):
    """Feeding the stream in arbitrary chunks reproduces every frame."""
    stream = b"".join(encode_frame(f) for f in frames)
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(stream)), max_size=8
            )
        )
    )
    decoder = FrameDecoder()
    got = []
    previous = 0
    for cut in cuts + [len(stream)]:
        decoder.feed(stream[previous:cut])
        got.extend(drain(decoder))
        previous = cut
    assert [(f.kind, f.channel, f.headers, f.payload) for f in got] == [
        (f.kind, f.channel, f.headers, f.payload) for f in frames
    ]
    assert decoder.pending_bytes == 0


@settings(max_examples=150, deadline=None)
@given(frames_strategy, st.data())
def test_decoder_truncation_never_crashes(frames, data):
    """A stream cut anywhere yields only complete frames, then waits."""
    stream = b"".join(encode_frame(f) for f in frames)
    cut = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
    decoder = FrameDecoder()
    decoder.feed(stream[:cut])
    got = drain(decoder)
    # Only fully-encoded frames come out; the tail stays pending.
    assert len(got) <= len(frames)
    for expected, actual in zip(frames, got):
        assert actual.payload == expected.payload
    # next_frame() stays None rather than raising on the incomplete tail.
    assert decoder.next_frame() is None


@settings(max_examples=150, deadline=None)
@given(frames_strategy, st.data())
def test_decoder_corruption_is_contained(frames, data):
    """Flip any byte: the decoder either raises FrameError or yields
    frames — never another exception type — and once it raises, it stays
    poisoned."""
    stream = bytearray(b"".join(encode_frame(f) for f in frames))
    position = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
    stream[position] ^= 0xFF
    decoder = FrameDecoder()
    try:
        decoder.feed(bytes(stream))
        while True:
            frame = decoder.next_frame()
            if frame is None:
                break
            assert isinstance(frame, Frame)  # decoded garbage is still typed
    except FrameError:
        with pytest.raises(FrameError):
            decoder.feed(b"\x00")
        with pytest.raises(FrameError):
            decoder.next_frame()

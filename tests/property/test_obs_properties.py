"""Property-based tests for the observability layer.

Two invariants the registry stakes its design on:

* **Nothing is lost.**  However counter/gauge/histogram updates are
  interleaved — across instruments, threads, and orders — the final
  state is exactly the sum of what was applied.  The instruments take a
  real lock per update precisely to buy this property; Hypothesis
  searches the interleavings.
* **Snapshots are monotone.**  Successive ``OBS_DUMP`` snapshots never
  show a counter (or a histogram's count) going backwards — the grid
  view is compiled from point-in-time snapshots taken at different
  moments, and operators difference them, so regression would read as
  negative traffic.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry

# One update instruction: (instrument kind, instrument index, amount).
_updates = st.lists(
    st.tuples(
        st.sampled_from(["counter", "gauge", "histogram"]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=-5, max_value=10),
    ),
    max_size=200,
)


def _apply(registry: MetricsRegistry, update) -> None:
    kind, index, amount = update
    if kind == "counter":
        registry.counter(f"c{index}").inc(abs(amount))
    elif kind == "gauge":
        registry.gauge(f"g{index}").add(amount)
    else:
        registry.histogram(f"h{index}", bounds=[1.0, 10.0]).observe(abs(amount))


def _expected(updates) -> dict:
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    hist_counts: dict[str, int] = {}
    for kind, index, amount in updates:
        if kind == "counter":
            counters[f"c{index}"] = counters.get(f"c{index}", 0) + abs(amount)
        elif kind == "gauge":
            gauges[f"g{index}"] = gauges.get(f"g{index}", 0) + amount
        else:
            hist_counts[f"h{index}"] = hist_counts.get(f"h{index}", 0) + 1
    return {"counters": counters, "gauges": gauges, "hist_counts": hist_counts}


@settings(max_examples=50, deadline=None)
@given(_updates)
def test_sequential_interleaving_loses_nothing(updates):
    registry = MetricsRegistry("prop")
    for update in updates:
        _apply(registry, update)
    snap = registry.snapshot()
    expected = _expected(updates)
    assert snap["counters"] == expected["counters"]
    assert snap["gauges"] == expected["gauges"]
    assert {
        name: h["count"] for name, h in snap["histograms"].items()
    } == expected["hist_counts"]


@settings(max_examples=15, deadline=None)
@given(_updates, st.integers(min_value=2, max_value=4))
def test_threaded_interleaving_loses_nothing(updates, nthreads):
    """The same updates split across threads must sum identically: the
    per-instrument locks make every interleaving equivalent to some
    sequential order, and these are all order-independent operations."""
    registry = MetricsRegistry("prop")
    chunks = [updates[i::nthreads] for i in range(nthreads)]
    barrier = threading.Barrier(nthreads)

    def worker(chunk):
        barrier.wait()
        for update in chunk:
            _apply(registry, update)

    threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = registry.snapshot()
    expected = _expected(updates)
    assert snap["counters"] == expected["counters"]
    assert snap["gauges"] == expected["gauges"]
    assert {
        name: h["count"] for name, h in snap["histograms"].items()
    } == expected["hist_counts"]


@settings(max_examples=30, deadline=None)
@given(
    st.lists(_updates, min_size=2, max_size=5),
)
def test_successive_snapshots_are_monotone(update_batches):
    """Counters and histogram counts never go backwards between dumps."""
    registry = MetricsRegistry("prop")
    previous = registry.snapshot()
    for batch in update_batches:
        for update in batch:
            _apply(registry, update)
        snap = registry.snapshot()
        for name, value in previous["counters"].items():
            assert snap["counters"][name] >= value
        for name, hist in previous["histograms"].items():
            assert snap["histograms"][name]["count"] >= hist["count"]
            assert snap["histograms"][name]["max"] >= hist["max"]
        previous = snap

"""Adversarial fuzzing of the handshake server.

A proxy's accept path processes bytes from unauthenticated peers, so any
input whatsoever must produce a clean HandshakeError — never a hang and
never an exception of another type escaping into the accept thread.
"""

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.security.ca import CertificationAuthority
from repro.security.handshake import HandshakeError, accept_secure
from repro.security.rsa import RsaKeyPair
from repro.transport.frames import Frame, FrameKind, encode_value
from repro.transport.inproc import channel_pair

KEY_BITS = 512


@pytest.fixture(scope="module")
def server_identity():
    clock = time.time
    ca = CertificationAuthority(key_bits=KEY_BITS, clock=clock)
    key = RsaKeyPair.generate(KEY_BITS)
    cert = ca.issue("proxy.victim", "proxy", key.public)
    return {"ca": ca, "clock": clock, "key": key, "cert": cert}


def run_server(identity, attacker_script):
    """Feed attacker frames to accept_secure; return its outcome."""
    attacker, server_end = channel_pair("fuzz")
    outcome = {}

    def server():
        try:
            accept_secure(
                server_end,
                identity["key"],
                identity["cert"],
                identity["ca"].public_key,
                identity["clock"],
                timeout=2.0,
            )
            outcome["result"] = "accepted"
        except HandshakeError as exc:
            outcome["result"] = f"rejected: {exc}"
        except BaseException as exc:  # the bug class we are hunting
            outcome["result"] = f"LEAKED {type(exc).__name__}: {exc}"

    thread = threading.Thread(target=server)
    thread.start()
    try:
        attacker_script(attacker)
    except Exception:
        pass  # attacker errors are irrelevant
    thread.join(timeout=20.0)
    assert not thread.is_alive(), "handshake server hung on hostile input"
    attacker.close()
    return outcome.get("result", "no outcome")


# Strategies for hostile handshake bodies.
hostile_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**64), max_value=2**64),
        st.binary(max_size=64),
        st.text(max_size=32),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)
hostile_bodies = st.dictionaries(
    st.sampled_from(["random", "modes", "preferred", "certificate",
                     "exchange", "signature", "mac", "junk"]),
    hostile_values,
    max_size=6,
)

FUZZ_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@FUZZ_SETTINGS
@given(hostile_bodies)
def test_arbitrary_hello_body_rejected_cleanly(server_identity, body):
    def attack(channel):
        channel.send(
            Frame(kind=FrameKind.HANDSHAKE, headers={"step": "hello"},
                  payload=encode_value(body))
        )

    result = run_server(server_identity, attack)
    assert result.startswith("rejected"), result


@FUZZ_SETTINGS
@given(st.binary(max_size=256))
def test_arbitrary_payload_bytes_rejected_cleanly(server_identity, blob):
    def attack(channel):
        channel.send(
            Frame(kind=FrameKind.HANDSHAKE, headers={"step": "hello"},
                  payload=blob)
        )

    result = run_server(server_identity, attack)
    assert result.startswith("rejected"), result


@FUZZ_SETTINGS
@given(st.sampled_from(list(FrameKind)), st.binary(max_size=64))
def test_wrong_frame_kind_rejected_cleanly(server_identity, kind, blob):
    def attack(channel):
        channel.send(Frame(kind=kind, headers={"step": "hello"}, payload=blob))

    result = run_server(server_identity, attack)
    if kind == FrameKind.HANDSHAKE:
        assert result.startswith("rejected"), result
    else:
        assert "LEAKED" not in result, result


def test_immediate_disconnect_rejected_cleanly(server_identity):
    result = run_server(server_identity, lambda channel: channel.close())
    assert result.startswith("rejected"), result


def test_valid_hello_then_garbage_keyex(server_identity):
    def attack(channel):
        channel.send(
            Frame(
                kind=FrameKind.HANDSHAKE,
                headers={"step": "hello"},
                payload=encode_value(
                    {"random": b"\x00" * 32, "modes": ["dh"], "preferred": "dh"}
                ),
            )
        )
        channel.recv(timeout=5.0)  # server hello
        channel.send(
            Frame(
                kind=FrameKind.HANDSHAKE,
                headers={"step": "keyex"},
                payload=encode_value(
                    {"certificate": b"forged", "exchange": {}, "signature": b"x"}
                ),
            )
        )

    result = run_server(server_identity, attack)
    assert result.startswith("rejected"), result


def test_valid_hello_then_silence_times_out(server_identity):
    def attack(channel):
        channel.send(
            Frame(
                kind=FrameKind.HANDSHAKE,
                headers={"step": "hello"},
                payload=encode_value(
                    {"random": b"\x00" * 32, "modes": ["dh"], "preferred": "dh"}
                ),
            )
        )
        # ...and never speak again.

    result = run_server(server_identity, attack)
    assert result.startswith("rejected"), result

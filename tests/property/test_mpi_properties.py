"""Property-based tests: minimpi collectives against reference semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.datatypes import MAX, MIN, PROD, SUM, ReduceOp
from repro.mpi.launcher import mpirun

# Thread-spawning collectives are not cheap; keep example counts modest.
COLLECTIVE_SETTINGS = settings(max_examples=15, deadline=None)

world_sizes = st.integers(min_value=1, max_value=7)
values_per_rank = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=7
)


@COLLECTIVE_SETTINGS
@given(world_sizes, st.integers(min_value=-100, max_value=100))
def test_bcast_delivers_root_value_everywhere(n, value):
    def app(comm):
        return comm.bcast(value if comm.rank == 0 else None, root=0, timeout=30.0)

    result = mpirun(app, n, timeout=60.0)
    assert result.ok
    assert result.returns == [value] * n


@COLLECTIVE_SETTINGS
@given(values_per_rank, st.sampled_from([SUM, PROD, MAX, MIN]))
def test_reduce_matches_sequential_fold(values, op):
    n = len(values)

    def app(comm):
        return comm.reduce(values[comm.rank], op, root=0, timeout=30.0)

    result = mpirun(app, n, timeout=60.0)
    assert result.ok
    assert result.returns[0] == op.reduce_all(values)


@COLLECTIVE_SETTINGS
@given(values_per_rank)
def test_allreduce_agrees_on_every_rank(values):
    n = len(values)

    def app(comm):
        return comm.allreduce(values[comm.rank], SUM, timeout=30.0)

    result = mpirun(app, n, timeout=60.0)
    assert result.ok
    assert set(result.returns) == {sum(values)}


@COLLECTIVE_SETTINGS
@given(values_per_rank)
def test_gather_reconstructs_rank_order(values):
    n = len(values)

    def app(comm):
        return comm.gather(values[comm.rank], root=0, timeout=30.0)

    result = mpirun(app, n, timeout=60.0)
    assert result.returns[0] == values


@COLLECTIVE_SETTINGS
@given(values_per_rank)
def test_scatter_is_gather_inverse(values):
    n = len(values)

    def app(comm):
        mine = comm.scatter(values if comm.rank == 0 else None, root=0, timeout=30.0)
        return comm.gather(mine, root=0, timeout=30.0)

    result = mpirun(app, n, timeout=60.0)
    assert result.returns[0] == values


@COLLECTIVE_SETTINGS
@given(values_per_rank)
def test_scan_prefix_property(values):
    n = len(values)

    def app(comm):
        return comm.scan(values[comm.rank], SUM, timeout=30.0)

    result = mpirun(app, n, timeout=60.0)
    assert result.returns == [sum(values[: k + 1]) for k in range(n)]


@COLLECTIVE_SETTINGS
@given(st.integers(min_value=1, max_value=6))
def test_alltoall_is_a_transpose(n):
    def app(comm):
        return comm.alltoall(
            [comm.rank * 100 + dest for dest in range(comm.size)], timeout=30.0
        )

    result = mpirun(app, n, timeout=60.0)
    assert result.ok
    for receiver, got in enumerate(result.returns):
        assert got == [sender * 100 + receiver for sender in range(n)]


@COLLECTIVE_SETTINGS
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=5),
)
def test_reduce_root_choice_irrelevant_to_value(n, root_seed):
    root = root_seed % n

    def app(comm):
        return comm.reduce(comm.rank + 1, SUM, root=root, timeout=30.0)

    result = mpirun(app, n, timeout=60.0)
    assert result.returns[root] == n * (n + 1) // 2
    assert all(result.returns[r] is None for r in range(n) if r != root)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # dest rank (world 4)
            st.integers(min_value=0, max_value=9),  # tag
            st.integers(min_value=-50, max_value=50),
        ),
        max_size=12,
    )
)
def test_p2p_messages_never_lost_or_duplicated(sends):
    """Rank 0 sends an arbitrary batch; receivers account for all of it."""

    def app(comm):
        if comm.rank == 0:
            for dest, tag, value in sends:
                if dest != 0:
                    comm.send(value, dest=dest, tag=tag)
            return [v for d, t, v in sends if d == 0]
        expected = [(t, v) for d, t, v in sends if d == comm.rank]
        got = []
        for _ in expected:
            value, status = comm.recv(source=0, with_status=True, timeout=30.0)
            got.append((status.tag, value))
        return got

    result = mpirun(app, 4, timeout=60.0)
    assert result.ok
    for rank in range(1, 4):
        expected = [(t, v) for d, t, v in sends if d == rank]
        assert sorted(result.returns[rank]) == sorted(expected)


@settings(max_examples=10, deadline=None)
@given(st.data())
def test_noncommutative_reduce_any_size_and_root(data):
    """Concatenation reduce must preserve rank order for any (n, root)."""
    n = data.draw(st.integers(min_value=1, max_value=7))
    root = data.draw(st.integers(min_value=0, max_value=n - 1))
    concat = ReduceOp("concat", lambda a, b: a + b)

    def app(comm):
        return comm.reduce(f"[{comm.rank}]", concat, root=root, timeout=30.0)

    result = mpirun(app, n, timeout=60.0)
    assert result.returns[root] == "".join(f"[{i}]" for i in range(n))

"""Property-based tests for the wire codec and frame format."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.frames import (
    Frame,
    FrameDecoder,
    FrameKind,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
)

# Values the codec supports (floats restricted to non-NaN: NaN != NaN
# breaks equality-based round-trip checking, and the middleware never
# sends NaN).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**256), max_value=2**256),
    st.floats(allow_nan=False),
    st.text(max_size=64),
    st.binary(max_size=64),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.lists(children, max_size=6).map(tuple),
        st.dictionaries(st.text(max_size=16), children, max_size=6),
    ),
    max_leaves=25,
)


@given(values)
def test_codec_round_trip(value):
    assert decode_value(encode_value(value)) == value


@given(values)
def test_codec_deterministic(value):
    assert encode_value(value) == encode_value(value)


@given(
    st.sampled_from(list(FrameKind)),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.dictionaries(st.text(max_size=16), scalars, max_size=8),
    st.binary(max_size=1024),
)
def test_frame_round_trip(kind, channel, headers, payload):
    frame = Frame(kind=kind, channel=channel, headers=headers, payload=payload)
    decoded = decode_frame(encode_frame(frame))
    assert decoded.kind == frame.kind
    assert decoded.channel == frame.channel
    assert decoded.headers == frame.headers
    assert decoded.payload == frame.payload


@settings(max_examples=25)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(FrameKind)),
            st.binary(max_size=200),
        ),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=1, max_value=37),
)
def test_decoder_reassembles_any_fragmentation(frames_spec, chunk_size):
    """Frames survive arbitrary TCP fragmentation and coalescing."""
    frames = [Frame(kind=k, payload=p) for k, p in frames_spec]
    blob = b"".join(encode_frame(f) for f in frames)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(blob), chunk_size):
        decoder.feed(blob[i : i + chunk_size])
        out.extend(decoder)
    assert len(out) == len(frames)
    for got, want in zip(out, frames):
        assert got.kind == want.kind
        assert got.payload == want.payload
    assert decoder.pending_bytes == 0


def _drain_in_chunks(blob, chunk_sizes):
    """Feed ``blob`` to a fresh decoder in the given chunk sizes."""
    decoder = FrameDecoder()
    out = []
    pos = 0
    i = 0
    while pos < len(blob):
        size = chunk_sizes[i % len(chunk_sizes)]
        decoder.feed(blob[pos : pos + size])
        out.extend(decoder)
        pos += size
        i += 1
    assert decoder.pending_bytes == 0
    return out


@settings(max_examples=25)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(FrameKind)),
            st.dictionaries(st.text(max_size=8), scalars, max_size=4),
            st.binary(max_size=300),
        ),
        min_size=1,
        max_size=8,
    ),
    st.lists(st.integers(min_value=1, max_value=97), min_size=1, max_size=8),
)
def test_chunking_is_invisible(frames_spec, random_chunks):
    """The decoder is a pure function of the byte stream: feeding the same
    stream byte-wise, in 7-byte slices, or in arbitrary random slices must
    yield identical frames.  This is exactly the guarantee the zero-copy
    offset buffer must preserve."""
    frames = [Frame(kind=k, headers=h, payload=p) for k, h, p in frames_spec]
    blob = b"".join(encode_frame(f) for f in frames)
    runs = [
        _drain_in_chunks(blob, [1]),
        _drain_in_chunks(blob, [7]),
        _drain_in_chunks(blob, random_chunks),
    ]
    for out in runs:
        assert len(out) == len(frames)
    for a, b, c in zip(*runs):
        for got in (b, c):
            assert got.kind == a.kind
            assert got.channel == a.channel
            assert got.headers == a.headers
            assert got.payload == a.payload

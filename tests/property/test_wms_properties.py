"""Property-based tests for the workload manager.

Three invariants the scheduler stakes its design on:

* **Conservation.**  However submits, claims, completions and failures
  interleave, every submitted job ends in exactly one terminal state
  (done or dead-letter) once the queue is drained — and rebuilding the
  manager from its journal mid-history loses nothing and duplicates
  nothing.  Hypothesis searches the interleavings.
* **No starvation.**  Fair share means a light user's jobs cannot wait
  behind a heavy user's backlog indefinitely: the decayed-usage
  ordering serves the least-served user first, so the light user's
  whole queue drains within a bounded number of claims.
* **Priority ordering.**  With no capability constraints, claims drain
  strictly from the highest non-empty priority tier downward.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.wms import (
    JobSpec,
    JobState,
    MemoryJournal,
    WorkloadManager,
)

pytestmark = pytest.mark.wms


def make_clock(step: float = 1.0):
    counter = itertools.count()
    return lambda: next(counter) * step


# One step of an interleaved history: an action and a pick index that
# the interpreter maps onto whatever is actually outstanding.
_histories = st.lists(
    st.tuples(
        st.sampled_from(["submit", "claim", "done", "fail"]),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=60,
)


def _run_history(wms: WorkloadManager, history) -> int:
    """Interpret a generated history against ``wms``; returns submits."""
    submitted = 0
    outstanding: list[dict] = []
    for action, pick in history:
        if action == "submit":
            wms.submit(
                JobSpec(
                    job_id=f"j{submitted}",
                    user=f"u{pick % 3}",
                    priority=pick % 3,
                    work=1.0 + pick,
                    max_attempts=2,
                )
            )
            submitted += 1
        elif action == "claim":
            outstanding.extend(wms.claim(f"p{pick % 2}", count=1 + pick % 2))
        elif outstanding:
            grant = outstanding.pop(pick % len(outstanding))
            if action == "done":
                wms.complete(grant["job"]["job_id"], grant["token"])
            else:
                wms.fail(grant["job"]["job_id"], grant["token"], "injected")
    return submitted


def _drain(wms: WorkloadManager) -> None:
    """Complete everything outstanding and claimable."""
    while True:
        status = wms.status()
        if status["pending"] == 0 and status["claimed"] == 0:
            return
        grants = wms.claim("drain", count=8)
        for grant in grants:
            wms.complete(grant["job"]["job_id"], grant["token"])
        if not grants and status["claimed"] == 0:
            raise AssertionError("pending jobs but nothing claimable")
        if not grants:
            # Jobs still held by history pilots: revoke their leases.
            for pilot in list(wms.status()["pilots"]):
                wms.release_pilot(pilot)


@settings(max_examples=60, deadline=None)
@given(_histories)
def test_conservation_after_drain(history):
    """Every submitted job ends in exactly one terminal state."""
    wms = WorkloadManager(clock=make_clock())
    submitted = _run_history(wms, history)
    _drain(wms)
    status = wms.status()
    assert status["submitted"] == submitted
    assert status["done"] + status["dead"] == submitted
    assert status["pending"] == 0 and status["claimed"] == 0
    terminal = [wms.status(f"j{i}")["state"] for i in range(submitted)]
    assert all(s in (JobState.DONE, JobState.DEAD) for s in terminal)


@settings(max_examples=60, deadline=None)
@given(_histories)
def test_conservation_survives_crash_replay(history):
    """Rebuilding from the journal mid-history loses and duplicates nothing."""
    journal = MemoryJournal()
    wms = WorkloadManager(clock=make_clock(), journal=journal)
    submitted = _run_history(wms, history)
    # Crash here: replay the journal into a fresh manager.
    rebuilt = WorkloadManager.replay(journal.events, clock=make_clock())
    assert rebuilt.status() == wms.status()
    assert rebuilt.pending_jobs() == wms.pending_jobs()
    # A duplicated submit after replay is still absorbed.
    if submitted:
        assert rebuilt.submit(JobSpec(job_id="j0"))["duplicate"] is True
    _drain(rebuilt)
    status = rebuilt.status()
    assert status["submitted"] == submitted
    assert status["done"] + status["dead"] == submitted


@settings(max_examples=40, deadline=None)
@given(
    light_jobs=st.integers(min_value=1, max_value=5),
    heavy_work=st.floats(min_value=1.0, max_value=100.0),
)
def test_no_starvation_under_fair_share(light_jobs, heavy_work):
    """A light user's queue drains within a bounded number of claims.

    The heavy user has 20 big jobs queued ahead; without fair share the
    light user would wait for all of them.  With decayed-usage ordering
    the light user is served as soon as their usage undercuts the
    heavy user's, which happens within ``2 * light_jobs + 1`` claims.
    """
    wms = WorkloadManager(clock=make_clock(), half_life=1e9)
    for i in range(20):
        wms.submit(JobSpec(job_id=f"h{i}", user="heavy", work=heavy_work))
    for i in range(light_jobs):
        wms.submit(JobSpec(job_id=f"l{i}", user="light", work=1.0))
    served_light = 0
    for claim_number in range(1, 2 * light_jobs + 2):
        [grant] = wms.claim("p")
        wms.complete(grant["job"]["job_id"], grant["token"])
        if grant["job"]["user"] == "light":
            served_light += 1
        if served_light == light_jobs:
            break
    assert served_light == light_jobs


@settings(max_examples=60, deadline=None)
@given(
    priorities=st.lists(
        st.integers(min_value=0, max_value=4), min_size=1, max_size=20
    )
)
def test_priority_ordering_under_unconstrained_claims(priorities):
    """Claimed priorities are non-increasing when every job fits."""
    wms = WorkloadManager(clock=make_clock())
    for index, priority in enumerate(priorities):
        wms.submit(JobSpec(job_id=f"j{index}", user=f"u{index % 2}",
                           priority=priority))
    claimed = []
    while True:
        grants = wms.claim("p")
        if not grants:
            break
        claimed.append(grants[0]["job"]["priority"])
        wms.complete(grants[0]["job"]["job_id"], grants[0]["token"])
    assert claimed == sorted(priorities, reverse=True)

"""Property-based tests: simulator, network routing, schedulers, DFS, security."""

import networkx as nx
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.control.scheduler import (
    Job,
    LoadBalancedScheduler,
    NodeView,
    RoundRobinScheduler,
)
from repro.dfs.filesystem import GridFileSystem
from repro.security.cipher import (
    CipherError,
    RecordCipher,
    derive_session_keys,
)
from repro.simulation.engine import Simulator
from repro.simulation.network import Network


# ---------------------------------------------------------------------------
# Simulator
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=20))
def test_simulated_time_is_monotonic_and_exact(delays):
    """Events fire at exactly their scheduled times, in order."""
    sim = Simulator()
    fired = []

    def proc(sim, delay):
        yield sim.timeout(delay)
        fired.append((sim.now, delay))

    for delay in delays:
        sim.spawn(proc(sim, delay))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    for fired_at, delay in fired:
        assert fired_at == delay


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=10.0),  # producer delay
            st.integers(min_value=0, max_value=100),  # item
        ),
        min_size=1,
        max_size=15,
    )
)
def test_queue_preserves_order_under_any_timing(schedule):
    sim = Simulator()
    queue = sim.queue()
    received = []

    def producer(sim):
        for delay, item in schedule:
            yield sim.timeout(delay)
            queue.put(item)

    def consumer(sim):
        for _ in schedule:
            item = yield queue.get()
            received.append(item)

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert received == [item for _, item in schedule]


# ---------------------------------------------------------------------------
# Network routing vs networkx ground truth
# ---------------------------------------------------------------------------


@st.composite
def random_topology(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=len(possible), unique=True)
    )
    return n, edges


@settings(max_examples=50, deadline=None)
@given(random_topology())
def test_routing_reachability_matches_networkx(topology):
    n, edges = topology
    sim = Simulator()
    net = Network(sim)
    graph = nx.Graph()
    for i in range(n):
        net.add_host(f"h{i}")
        graph.add_node(i)
    for a, b in edges:
        net.connect(f"h{a}", f"h{b}", latency=0.001, bandwidth=1e6)
        graph.add_edge(a, b)
    for i in range(n):
        for j in range(n):
            assert net.reachable(f"h{i}", f"h{j}") == nx.has_path(graph, i, j)


@settings(max_examples=50, deadline=None)
@given(random_topology())
def test_routing_paths_are_shortest(topology):
    n, edges = topology
    sim = Simulator()
    net = Network(sim)
    graph = nx.Graph()
    for i in range(n):
        net.add_host(f"h{i}")
        graph.add_node(i)
    for a, b in edges:
        net.connect(f"h{a}", f"h{b}", latency=0.001, bandwidth=1e6)
        graph.add_edge(a, b)
    for i in range(n):
        for j in range(n):
            if i != j and nx.has_path(graph, i, j):
                ours = net.path(f"h{i}", f"h{j}")
                # Path is valid: consecutive hops are edges.
                hops = [int(h[1:]) for h in ours]
                assert hops[0] == i and hops[-1] == j
                for a, b in zip(hops, hops[1:]):
                    assert graph.has_edge(a, b)
                # And optimal in hop count.
                assert len(ours) - 1 == nx.shortest_path_length(graph, i, j)


# ---------------------------------------------------------------------------
# Schedulers
# ---------------------------------------------------------------------------


node_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.25, max_value=8.0),  # speed
        st.floats(min_value=0.0, max_value=0.9),  # owner load
    ),
    min_size=1,
    max_size=8,
)
job_lists = st.lists(
    st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=30
)


def make_views(spec):
    return [
        NodeView(name=f"n{i}", site="g", speed=speed, owner_load=load)
        for i, (speed, load) in enumerate(spec)
    ]


@settings(max_examples=50, deadline=None)
@given(node_lists, job_lists)
def test_every_job_is_assigned_exactly_once(nodes_spec, works):
    scheduler = LoadBalancedScheduler(make_views(nodes_spec))
    jobs = [Job(work=w) for w in works]
    assignments = scheduler.assign_all(jobs)
    assert sorted(assignments) == sorted(job.job_id for job in jobs)
    assert all(node in scheduler.nodes for node in assignments.values())


@settings(max_examples=50, deadline=None)
@given(node_lists, job_lists)
def test_queued_work_accounting_is_conserved(nodes_spec, works):
    scheduler = LoadBalancedScheduler(make_views(nodes_spec))
    for w in works:
        scheduler.assign(Job(work=w))
    total_queued = sum(node.queued_work for node in scheduler.nodes.values())
    assert total_queued == pytest.approx(sum(works))


@settings(max_examples=50, deadline=None)
@given(node_lists, job_lists)
def test_lb_makespan_within_greedy_approximation_bound(nodes_spec, works):
    """Greedy min-ECT is a list scheduler: its makespan is bounded by
    (total work + largest job) at the aggregate rate — the classic
    2-approximation-style bound — never better than the trivial lower
    bound.  (Note it is NOT always <= round-robin: greedy list
    scheduling is only approximately optimal, and hypothesis finds
    counterexamples to the naive claim.)"""
    assume(any(load < 1.0 for _, load in nodes_spec))
    lb = LoadBalancedScheduler(make_views(nodes_spec))
    rates = [node.effective_rate() for node in lb.nodes.values()]
    assume(all(rate > 0 for rate in rates))
    for w in works:
        lb.assign(Job(work=w))
    total_rate = sum(rates)
    fastest = max(rates)
    lower_bound = max(sum(works) / total_rate, max(works) / fastest)
    upper_bound = sum(works) / total_rate + max(works) / min(rates)
    makespan = lb.makespan_estimate()
    assert makespan >= lower_bound * 0.999
    assert makespan <= upper_bound * 1.001


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=40))
def test_lb_equals_rr_on_identical_machines_and_jobs(machines, jobs):
    """With no heterogeneity and equal jobs the two policies coincide."""
    def views():
        return [NodeView(name=f"n{i}", site="g", speed=1.0) for i in range(machines)]

    rr = RoundRobinScheduler(views())
    lb = LoadBalancedScheduler(views())
    for _ in range(jobs):
        rr.assign(Job(work=10.0))
        lb.assign(Job(work=10.0))
    assert lb.makespan_estimate() == pytest.approx(rr.makespan_estimate())


@settings(max_examples=50, deadline=None)
@given(job_lists)
def test_round_robin_is_fair_in_counts(works):
    """RR assignment counts across equal nodes differ by at most one."""
    scheduler = RoundRobinScheduler(
        [NodeView(name=f"n{i}", site="g") for i in range(4)]
    )
    for w in works:
        scheduler.assign(Job(work=w))
    counts = {}
    for _, node in scheduler.assignments:
        counts[node] = counts.get(node, 0) + 1
    values = [counts.get(f"n{i}", 0) for i in range(4)]
    assert max(values) - min(values) <= 1


# ---------------------------------------------------------------------------
# DFS
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.binary(max_size=4096),
    st.integers(min_value=1, max_value=512),
    st.integers(min_value=1, max_value=3),
)
def test_dfs_round_trip_any_payload_and_chunking(data, chunk_size, replication):
    fs = GridFileSystem(replication=replication, chunk_size=chunk_size)
    for i in range(max(replication, 2)):
        fs.add_site(f"s{i}", capacity=1 << 22)
    fs.write("/f", data)
    assert fs.read("/f") == data


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=1, max_size=2048), st.integers(min_value=0, max_value=2))
def test_dfs_survives_any_single_site_failure(data, victim):
    fs = GridFileSystem(replication=2, chunk_size=64)
    for i in range(3):
        fs.add_site(f"s{i}", capacity=1 << 22)
    fs.write("/f", data)
    fs.store_of(f"s{victim}").fail()
    assert fs.read("/f") == data


# ---------------------------------------------------------------------------
# Security
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(max_size=512), min_size=1, max_size=10))
def test_record_stream_round_trips_any_sequence(plaintexts):
    keys = derive_session_keys(b"\x42" * 32, "client")
    sender, receiver = RecordCipher(keys), RecordCipher(keys)
    for plaintext in plaintexts:
        assert receiver.open(sender.seal(plaintext)) == plaintext


@settings(max_examples=30, deadline=None)
@given(
    st.binary(min_size=1, max_size=256),
    st.integers(min_value=0),
    st.integers(min_value=1, max_value=255),
)
def test_any_single_byte_corruption_is_detected(plaintext, position, delta):
    keys = derive_session_keys(b"\x42" * 32, "client")
    sender, receiver = RecordCipher(keys), RecordCipher(keys)
    record = bytearray(sender.seal(plaintext))
    record[position % len(record)] ^= delta
    with pytest.raises(CipherError):
        receiver.open(bytes(record))

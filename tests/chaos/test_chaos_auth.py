"""Chaos suite, auth level: revocation racing gossip under faults.

The token control plane's safety claim is *zero accepted-after-
revocation*: once a proxy has observed the revocation epoch, it must
never again accept the revoked token — no matter how the heartbeat
gossip, the anti-entropy pulls, and the client's submissions interleave.
Liveness rides along: the epoch reaches every proxy within a small
number of heartbeat rounds even when record traffic is being delayed.
"""

import itertools
import random
import time

import pytest

from repro.control.retry import RetryPolicy
from repro.core.grid import Grid
from repro.core.proxy import ProxyError
from repro.security.tokens import TokenError
from repro.transport.faulty import FaultInjector, FaultPlan, FaultyChannel

from tests.chaos.conftest import replaying

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

FAST_REDIAL = RetryPolicy(max_attempts=6, base_delay=0.005, max_delay=0.05)

#: Leave the handshake frames alone; stress the record traffic only.
RECORD_TRAFFIC = 5

HEARTBEAT = 0.05
#: Generous real-time bound for epoch convergence (many heartbeats).
CONVERGE_DEADLINE = 5.0

SITES = ("A", "B", "C")


def chaos_wrapper(seed: int, plan: FaultPlan):
    ordinals = itertools.count()

    def wrap(raw):
        return FaultyChannel(raw, FaultInjector(seed + 7919 * next(ordinals), plan))

    return wrap


def build_grid(seed: int, plan=None) -> Grid:
    grid = Grid(
        channel_wrapper=chaos_wrapper(seed, plan) if plan else None,
        handshake_retry=FAST_REDIAL,
        heartbeat_interval=HEARTBEAT,
    )
    for site in SITES:
        grid.add_site(site, nodes=1)
    grid.connect_all()
    grid.enable_token_auth()
    grid.add_user("alice", "pw")
    grid.grant("user:alice", "site:*", "submit")
    return grid


def epochs(grid: Grid) -> dict[str, int]:
    return {site: grid.proxy_of(site).tokens.epoch for site in SITES}


def run_revocation_race(seed: int, plan=None) -> dict:
    """Submit with one token round-robin across sites, revoke mid-stream.

    Returns the attempt log plus the revocation epoch, for the caller to
    assert the zero-accepted-after-revocation invariant on.
    """
    rng = random.Random(seed)
    grid = build_grid(seed, plan)
    attempts = []
    try:
        blob = grid.login("alice", "pw", via_site="A")
        revoke_after = rng.randrange(2, 5)
        target_epoch = None
        revoked_at = None
        deadline = None
        step = 0
        while True:
            site = SITES[step % len(SITES)]
            step += 1
            if target_epoch is None and step > revoke_after:
                target_epoch = grid.revoke_token(blob, via_site="A")
                revoked_at = time.monotonic()
                deadline = revoked_at + CONVERGE_DEADLINE
            proxy = grid.proxy_of(site)
            epoch_before = proxy.tokens.epoch
            target_site = SITES[step % len(SITES)]  # remote on most laps
            try:
                grid.submit_job_with_token(
                    blob, "echo", {"value": step},
                    origin_site=site, target_site=target_site,
                )
                outcome = "accepted"
            except (TokenError, ProxyError) as exc:
                outcome = f"rejected:{type(exc).__name__}"
            attempts.append((site, epoch_before, outcome))
            if target_epoch is None:
                continue
            if all(e >= target_epoch for e in epochs(grid).values()):
                break
            if time.monotonic() > deadline:
                pytest.fail(
                    f"revocation epoch {target_epoch} did not reach all "
                    f"proxies within {CONVERGE_DEADLINE}s: {epochs(grid)}"
                )
            time.sleep(HEARTBEAT / 2)
        # Converged: one more lap over every site must reject everywhere.
        post = []
        for site in SITES:
            try:
                grid.submit_job_with_token(
                    blob, "echo", {"value": 0},
                    origin_site=site, target_site=site,
                )
                post.append((site, "accepted"))
            except (TokenError, ProxyError) as exc:
                post.append((site, f"rejected:{type(exc).__name__}"))
        return {
            "attempts": attempts,
            "post": post,
            "target_epoch": target_epoch,
            "converge_seconds": time.monotonic() - revoked_at,
        }
    finally:
        grid.shutdown()


def assert_invariants(result: dict) -> None:
    target = result["target_epoch"]
    assert target >= 1
    # SAFETY: an attempt served by a proxy that had already observed the
    # revocation epoch must have been rejected.  Zero exceptions.
    accepted_after = [
        (site, epoch, outcome)
        for site, epoch, outcome in result["attempts"]
        if epoch >= target and outcome == "accepted"
    ]
    assert accepted_after == [], (
        f"token accepted after revocation was visible: {accepted_after}"
    )
    # LIVENESS: after convergence every site rejects, full stop.
    assert all(o.startswith("rejected") for _, o in result["post"]), result["post"]
    # Before the revocation the token worked (the grid was actually up).
    assert any(o == "accepted" for _, _, o in result["attempts"])


def test_revoked_token_rejected_grid_wide(chaos_seed, monkeypatch):
    """Clean network: revocation converges and nothing slips through."""
    monkeypatch.setenv("REPRO_AUTH", "token")
    with replaying(chaos_seed):
        assert_invariants(run_revocation_race(chaos_seed))


def test_revocation_survives_delayed_records(chaos_seed, monkeypatch):
    """Delay faults on record traffic: gossip is slower, never unsafe."""
    monkeypatch.setenv("REPRO_AUTH", "token")
    plan = FaultPlan(
        delay=0.15, delay_range=(0.0, 0.01), skip=RECORD_TRAFFIC, max_faults=6
    )
    with replaying(chaos_seed):
        assert_invariants(run_revocation_race(chaos_seed, plan))


def test_user_revocation_cuts_off_every_token(chaos_seed, monkeypatch):
    """revoke_user: *all* the user's outstanding tokens die grid-wide."""
    monkeypatch.setenv("REPRO_AUTH", "token")
    with replaying(chaos_seed):
        grid = build_grid(chaos_seed)
        try:
            blobs = [
                grid.login("alice", "pw", via_site=site) for site in SITES
            ]
            target = grid.revoke_user("alice", via_site="B")
            deadline = time.monotonic() + CONVERGE_DEADLINE
            while not all(e >= target for e in epochs(grid).values()):
                if time.monotonic() > deadline:
                    pytest.fail(f"epoch never converged: {epochs(grid)}")
                time.sleep(HEARTBEAT / 2)
            for blob in blobs:
                for site in SITES:
                    with pytest.raises((TokenError, ProxyError)):
                        grid.submit_job_with_token(
                            blob, "echo", {"value": 1},
                            origin_site=site, target_site=site,
                        )
        finally:
            grid.shutdown()

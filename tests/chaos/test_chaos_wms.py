"""Chaos suite, workload-manager level: site death mid-queue.

Two altitudes:

* **Simulation level** — a seeded :class:`RandomStream` drives an
  interleaved schedule of submits, claims, completions, failures and
  pilot kills against a :class:`WorkloadManager` on a logical clock.
  Everything is deterministic, so the assertion can be the strongest
  one available: the same ``chaos_seed`` produces the *identical
  journal*, event for event, and conservation holds at the end.
* **Grid level** — a real three-site grid with the authority on site A
  and pilots claiming over the wire; ``proxy.B`` is killed mid-queue
  and the failure detector must hand its leases back exactly once
  (the idempotency guard swallows the zombie's late report), after
  which the surviving site drains the queue.  Real-thread timing makes
  event order nondeterministic here, so this altitude asserts the
  conservation invariants, not the order.
"""

import time

import pytest

from repro.control.wms import JobSpec, JobState, MemoryJournal, WorkloadManager
from repro.core.grid import Grid
from repro.simulation.randomness import RandomStream

from tests.chaos.conftest import chaos_seeds, replaying

pytestmark = [pytest.mark.chaos, pytest.mark.slow, pytest.mark.wms]


def run_sim_schedule(seed: int) -> tuple[list[dict], dict]:
    """One seeded schedule against a journaling manager; returns
    (journal events, final status)."""
    rng = RandomStream(seed, "chaos-wms")
    ticks = iter(range(10_000))
    journal = MemoryJournal()
    wms = WorkloadManager(
        clock=lambda: float(next(ticks)), journal=journal, half_life=50.0
    )
    pilots = ["pilot.B", "pilot.C", "pilot.D"]
    outstanding: list[dict] = []
    submitted = 0
    for _ in range(120):
        roll = rng.randint(0, 9)
        if roll <= 3:  # submit
            wms.submit(
                JobSpec(
                    job_id=f"j{submitted}",
                    user=f"u{rng.randint(0, 2)}",
                    priority=rng.randint(0, 2),
                    work=float(rng.randint(1, 20)),
                    max_attempts=2,
                )
            )
            submitted += 1
        elif roll <= 6:  # claim
            grants = wms.claim(rng.choice(pilots), count=rng.randint(1, 3))
            outstanding.extend(grants)
        elif roll <= 7 and outstanding:  # report success
            grant = outstanding.pop(rng.randint(0, len(outstanding) - 1))
            wms.complete(grant["job"]["job_id"], grant["token"])
        elif roll <= 8 and outstanding:  # report failure
            grant = outstanding.pop(rng.randint(0, len(outstanding) - 1))
            wms.fail(grant["job"]["job_id"], grant["token"], "injected")
        else:  # site death: revoke every lease the pilot holds
            victim = rng.choice(pilots)
            released = set(wms.release_pilot(victim, error="site killed"))
            outstanding = [
                g for g in outstanding if g["job"]["job_id"] not in released
            ]
    # Drain: surviving capacity finishes everything still live.
    for grant in outstanding:
        wms.complete(grant["job"]["job_id"], grant["token"])
    while True:
        grants = wms.claim("pilot.drain", count=8)
        if not grants:
            break
        for grant in grants:
            wms.complete(grant["job"]["job_id"], grant["token"])
    return journal.events, wms.status()


def test_sim_schedule_conserves_jobs(chaos_seed):
    """Kills, failures and requeues never lose or duplicate a job."""
    with replaying(chaos_seed):
        events, status = run_sim_schedule(chaos_seed)
        assert status["done"] + status["dead"] == status["submitted"]
        assert status["pending"] == 0 and status["claimed"] == 0
        # Exactly one terminal event per job, ever — no duplicates.
        terminal = [e["job"] for e in events if e["ev"] in ("done", "dead")]
        assert len(terminal) == len(set(terminal)) == status["submitted"]
        # max_attempts=2 bounds every job to at most one requeue.
        requeues = [e["job"] for e in events if e["ev"] == "requeue"]
        assert len(requeues) == len(set(requeues))


@pytest.mark.parametrize("chaos_seed", chaos_seeds()[:2])
def test_sim_schedule_replays_identically(chaos_seed):
    """Same chaos_seed, same schedule, journal identical event-for-event."""
    with replaying(chaos_seed):
        events_a, status_a = run_sim_schedule(chaos_seed)
        events_b, status_b = run_sim_schedule(chaos_seed)
        assert events_a == events_b
        assert status_a == status_b


def test_grid_site_kill_mid_queue(chaos_seed):
    """Kill a pilot proxy holding live claims: the failure detector
    requeues its leases exactly once, the zombie's late report is
    ignored, and the surviving site drains the queue."""
    rng = RandomStream(chaos_seed, "chaos-wms-grid")
    with replaying(chaos_seed):
        grid = Grid()
        grid.add_site("A", nodes=1)
        grid.add_site("B", nodes=2)
        grid.add_site("C", nodes=2)
        grid.connect_all()
        wms = grid.attach_workload_manager("A", half_life=60.0)
        authority = grid.proxy_of("A").name
        proxy_b, proxy_c = grid.proxy_of("B"), grid.proxy_of("C")
        try:
            total = 12 + rng.randint(0, 6)
            for i in range(total):
                proxy_b.wms_submit(
                    authority,
                    JobSpec(
                        job_id=f"j{i}",
                        user=f"u{i % 3}",
                        work=float(1 + i % 5),
                        max_attempts=3,
                    ),
                )
            # B completes a seeded amount of work, then claims more and
            # dies holding the leases.
            for grant in proxy_b.wms_claim(authority, count=rng.randint(1, 4)):
                proxy_b.wms_done(authority, grant["job"]["job_id"], grant["token"])
            doomed = proxy_b.wms_claim(authority, count=rng.randint(2, 4))
            assert doomed
            proxy_b.shutdown()
            deadline = time.monotonic() + 10.0
            while wms.status()["pilots"].get(proxy_b.name):
                assert time.monotonic() < deadline, "leases never released"
                time.sleep(0.02)
            # Requeued exactly once: attempts == 1 claim + nothing else.
            for grant in doomed:
                view = wms.status(grant["job"]["job_id"])
                assert view["state"] in (JobState.PENDING, JobState.DEAD)
                assert view["attempts"] == 1
            # The zombie's late reports carry spent tokens — ignored.
            for grant in doomed:
                result = wms.complete(grant["job"]["job_id"], grant["token"])
                assert result.get("stale") or result.get("duplicate")
            # C drains everything that remains.
            while True:
                grants = proxy_c.wms_claim(authority, count=4)
                if not grants:
                    break
                for grant in grants:
                    proxy_c.wms_done(
                        authority, grant["job"]["job_id"], grant["token"]
                    )
            status = proxy_c.wms_status(authority)
            assert status["submitted"] == total
            assert status["done"] == total  # zero lost, zero dead
            assert status["pending"] == status["claimed"] == 0
        finally:
            grid.shutdown()


def test_grid_repeated_failures_reach_dead_letter(chaos_seed):
    """A job that fails at every site lands in the dead-letter set after
    exactly max_attempts tries, and the queue stays drainable."""
    with replaying(chaos_seed):
        grid = Grid()
        grid.add_site("A", nodes=1)
        grid.add_site("B", nodes=1)
        grid.connect_all()
        grid.attach_workload_manager("A")
        authority = grid.proxy_of("A").name
        proxy_b = grid.proxy_of("B")
        try:
            proxy_b.wms_submit(
                authority, JobSpec(job_id="cursed", max_attempts=2)
            )
            proxy_b.wms_submit(authority, JobSpec(job_id="fine"))
            for attempt in (1, 2):
                # FIFO head first; a failed attempt requeues at the
                # front, so single claims return "cursed" both times.
                [grant] = proxy_b.wms_claim(authority)
                assert grant["token"] == f"cursed#{attempt}"
                proxy_b.wms_done(
                    authority, "cursed", grant["token"],
                    ok=False, error="always breaks",
                )
            view = proxy_b.wms_status(authority, job_id="cursed")
            assert view["state"] == JobState.DEAD
            assert view["attempts"] == 2
            # The healthy job is unaffected and still completes.
            [grant] = proxy_b.wms_claim(authority)
            assert grant["job"]["job_id"] == "fine"
            proxy_b.wms_done(authority, "fine", grant["token"])
            status = proxy_b.wms_status(authority)
            assert status["dead"] == 1 and status["done"] == 1
        finally:
            grid.shutdown()

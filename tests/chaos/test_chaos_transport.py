"""Chaos suite, transport level: deterministic fault injection.

Single-threaded traffic over an in-process pair, so the fault schedule
*and* the delivered frame sequence are exactly reproducible — run any
test twice with the same seed and byte-identical results come out.  This
is the foundation the grid-level chaos tests stand on.
"""

import pytest

from repro.transport.errors import ChannelClosed, TransportTimeout
from repro.transport.faulty import (
    FaultInjector,
    FaultPlan,
    FaultyChannel,
    FaultyListener,
    faulty_pair,
)
from repro.transport.frames import Frame, FrameKind
from repro.transport.inproc import InprocFabric

from tests.chaos.conftest import chaos_seeds, replaying

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


def frames(count: int, size: int = 64) -> list[Frame]:
    return [
        Frame(kind=FrameKind.DATA, headers={"n": i}, payload=bytes([i % 256]) * size)
        for i in range(count)
    ]


def pump(sender, receiver, outgoing):
    """Push frames through, collecting deliveries and the failure, if any."""
    error = None
    for frame in outgoing:
        try:
            sender.send(frame)
        except ChannelClosed as exc:
            error = str(exc)
            break
    delivered = []
    while True:
        try:
            delivered.append(receiver.recv(timeout=0.05))
        except (TransportTimeout, ChannelClosed):
            break
    return delivered, error


def run_scenario(seed: int, plan: FaultPlan, count: int = 40):
    sender, receiver = faulty_pair(seed, plan)
    delivered, error = pump(sender, receiver, frames(count))
    return {
        "payloads": [f.payload for f in delivered],
        "headers": [f.headers for f in delivered],
        "error": error,
        "schedule": list(sender.injector.schedule),
    }


MIXED_PLAN = FaultPlan(
    drop=0.08, corrupt=0.08, truncate=0.08, reorder=0.08, delay=0.08,
    delay_range=(0.0, 0.001),
)


def test_same_seed_same_schedule_and_delivery(chaos_seed):
    """The determinism contract: chaos_seed → schedule → delivered bytes."""
    with replaying(chaos_seed):
        first = run_scenario(chaos_seed, MIXED_PLAN)
        second = run_scenario(chaos_seed, MIXED_PLAN)
        assert first["schedule"] == second["schedule"]
        assert first["payloads"] == second["payloads"]
        assert first["headers"] == second["headers"]
        assert first["error"] == second["error"]
        assert first["schedule"], "plan with these rates should inject something"


def test_different_seeds_diverge():
    runs = {tuple(run_scenario(s, MIXED_PLAN)["schedule"]) for s in chaos_seeds()}
    assert len(runs) > 1, "all seeds produced identical schedules"


def test_injector_decisions_are_pure():
    plan = FaultPlan(drop=0.2, corrupt=0.2, delay=0.2)
    a, b = FaultInjector(99, plan), FaultInjector(99, plan)
    decisions_a = [a.decide(d, i) for d in ("send", "recv") for i in range(200)]
    decisions_b = [b.decide(d, i) for d in ("send", "recv") for i in range(200)]
    assert decisions_a == decisions_b
    assert a.schedule == b.schedule


def test_zero_plan_is_transparent():
    result = run_scenario(7, FaultPlan(), count=20)
    assert result["payloads"] == [f.payload for f in frames(20)]
    assert result["error"] is None
    assert result["schedule"] == []


def test_drop_loses_exactly_the_scheduled_frames(chaos_seed):
    with replaying(chaos_seed):
        result = run_scenario(chaos_seed, FaultPlan(drop=0.25))
        dropped = {idx for (_, idx, action, _) in result["schedule"]}
        assert all(action == "drop" for (_, _, action, _) in result["schedule"])
        survivors = [h["n"] for h in result["headers"]]
        assert survivors == [i for i in range(40) if i not in dropped]


def test_corrupt_flips_one_byte(chaos_seed):
    with replaying(chaos_seed):
        result = run_scenario(chaos_seed, FaultPlan(corrupt=0.25))
        corrupted = {idx for (_, idx, action, _) in result["schedule"]}
        assert corrupted, "no corruption at this rate would be suspicious"
        originals = [f.payload for f in frames(40)]
        for header, payload in zip(result["headers"], result["payloads"]):
            original = originals[header["n"]]
            if header["n"] in corrupted:
                diff = [i for i in range(len(payload)) if payload[i] != original[i]]
                assert len(diff) == 1
                assert payload[diff[0]] == original[diff[0]] ^ 0xFF
            else:
                assert payload == original


def test_truncate_shortens_never_lengthens(chaos_seed):
    with replaying(chaos_seed):
        result = run_scenario(chaos_seed, FaultPlan(truncate=0.25))
        truncated = {idx for (_, idx, action, _) in result["schedule"]}
        assert truncated
        for header, payload in zip(result["headers"], result["payloads"]):
            if header["n"] in truncated:
                assert len(payload) < 64
            else:
                assert len(payload) == 64


def test_reorder_permutes_without_inventing_frames(chaos_seed):
    with replaying(chaos_seed):
        result = run_scenario(chaos_seed, FaultPlan(reorder=0.3))
        assert result["schedule"], "no reorders at this rate would be suspicious"
        order = [h["n"] for h in result["headers"]]
        survivors = sorted(order)
        # At most the frame still held at stream end is missing; nothing
        # is duplicated or invented.
        assert len(survivors) >= 39
        assert len(set(order)) == len(order)
        assert set(order) <= set(range(40))
        # A reorder followed by a clean frame is a visible swap.
        reordered = [i for (_, i, a, _) in result["schedule"] if a == "reorder"]
        if any(i + 1 not in reordered and i + 1 < 40 for i in reordered):
            assert order != survivors


def test_disconnect_closes_midstream(chaos_seed):
    with replaying(chaos_seed):
        result = run_scenario(chaos_seed, FaultPlan(disconnect=0.15))
        if result["schedule"]:
            assert result["error"] is not None
            assert "injected disconnect" in result["error"]
            (direction, index, action, _), = result["schedule"]
            assert (direction, action) == ("send", "disconnect")
            # Everything before the disconnect was delivered untouched.
            assert [h["n"] for h in result["headers"]] == list(range(index))
        else:  # this chaos_seed scheduled no disconnect in 40 frames
            assert result["error"] is None
            assert len(result["headers"]) == 40


def test_delay_preserves_content_and_order(chaos_seed):
    with replaying(chaos_seed):
        result = run_scenario(chaos_seed, FaultPlan(delay=0.3, delay_range=(0.0, 0.002)))
        assert [h["n"] for h in result["headers"]] == list(range(40))
        assert all(a == "delay" for (_, _, a, _) in result["schedule"])


def test_max_faults_bounds_injection():
    result = run_scenario(42, FaultPlan(drop=0.9, max_faults=3), count=60)
    assert len(result["schedule"]) == 3
    assert len(result["payloads"]) == 57


def test_skip_spares_the_prefix():
    plan = FaultPlan(drop=0.9, skip=10)
    result = run_scenario(42, plan, count=30)
    assert all(idx >= 10 for (_, idx, _, _) in result["schedule"])
    assert [h["n"] for h in result["headers"][:10]] == list(range(10))


def test_recv_side_injection():
    from repro.transport.inproc import channel_pair

    left, right = channel_pair(name="recv-chaos")
    injector = FaultInjector(21, FaultPlan(drop=0.25))
    receiver = FaultyChannel(right, injector, on_recv=True)
    for frame in frames(30):
        left.send(frame)
    got = []
    while True:
        try:
            got.append(receiver.recv(timeout=0.05))
        except (TransportTimeout, ChannelClosed):
            break
    dropped = {idx for (_, idx, action, _) in injector.schedule}
    assert all(d == "recv" for (d, _, _, _) in injector.schedule)
    assert [f.headers["n"] for f in got] == [
        i for i in range(30) if i not in dropped
    ]


def test_faulty_listener_gives_each_accept_its_own_schedule():
    fabric = InprocFabric()
    listener = FaultyListener(
        fabric.listen("chaos.listen"), seed=5, plan=FaultPlan(drop=0.3)
    )
    dialers = [fabric.connect("chaos.listen") for _ in range(2)]
    accepted = [listener.accept(timeout=1.0) for _ in range(2)]
    for channel in accepted:
        for frame in frames(20):
            channel.send(frame)
    schedules = [tuple(inj.schedule) for inj in listener.injectors]
    assert len(schedules) == 2 and schedules[0] != schedules[1]
    for dialer in dialers:
        dialer.close()
    listener.close()

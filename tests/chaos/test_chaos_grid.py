"""Chaos suite, grid level: proxies under injected transport faults.

Every dialed inter-proxy channel is wrapped in a :class:`FaultyChannel`
whose schedule derives from the test seed, so each scenario asserts the
paper's robustness claim the only way that counts: the operation either
*completes* or fails with a *clean, typed error* — never a hang, never a
stack trace from the bowels of the stack.  A mid-stream proxy kill must
cost the grid exactly that site, nothing more.
"""

import itertools
import threading
import time

import pytest

from repro.control.retry import RetryPolicy
from repro.core.grid import Grid, GridError
from repro.core.protocol import Op
from repro.core.proxy import PeerUnavailable, ProxyError, RequestTimeout
from repro.core.tunnel import TunnelError
from repro.transport.faulty import FaultInjector, FaultPlan, FaultyChannel

from tests.chaos.conftest import chaos_seeds, replaying

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

#: Fast handshake retry so injected dial failures do not slow the suite.
FAST_REDIAL = RetryPolicy(max_attempts=6, base_delay=0.005, max_delay=0.05)

#: Skip the dial-side connection setup (3 handshake frames + HELLO) so
#: faults land on record traffic, not mid-handshake.
RECORD_TRAFFIC = 5


def chaos_wrapper(seed: int, plan: FaultPlan):
    """One injector per dialed channel, seeds derived from the base seed."""
    ordinals = itertools.count()

    def wrap(raw):
        return FaultyChannel(raw, FaultInjector(seed + 7919 * next(ordinals), plan))

    return wrap


def build_grid(seed: int, plan: FaultPlan, transport: str = "tcp") -> Grid:
    grid = Grid(
        transport=transport,
        channel_wrapper=chaos_wrapper(seed, plan),
        handshake_retry=FAST_REDIAL,
    )
    grid.add_site("A", nodes=1)
    grid.add_site("B", nodes=1)
    grid.connect_all()
    grid.add_user("alice", "pw")
    grid.grant("user:alice", "site:*", "submit")
    return grid


def test_grid_builds_despite_handshake_disconnects(chaos_seed):
    """Mid-handshake disconnects are survived by redialing fresh channels."""
    plan = FaultPlan(disconnect=0.08, delay=0.08, delay_range=(0.0, 0.002),
                     max_faults=1)
    with replaying(chaos_seed):
        try:
            grid = build_grid(chaos_seed, plan)
        except (GridError, TunnelError, ProxyError) as exc:
            pytest.fail(f"redial should have absorbed the faults: {exc}")
        try:
            result = grid.submit_job(
                "alice", "pw", "echo", {"value": chaos_seed},
                origin_site="A", target_site="B",
            )
            assert result == chaos_seed
        finally:
            grid.shutdown()


def drop_scenario_outcomes(seed: int) -> list[str]:
    """Fire status queries at a peer whose request frames get dropped."""
    plan = FaultPlan(drop=0.3, skip=RECORD_TRAFFIC, max_faults=4)
    grid = build_grid(seed, plan)
    origin = grid.proxy_of("A")
    outcomes = []
    try:
        for _ in range(6):
            try:
                reply = origin.request(
                    "proxy.B", Op.STATUS_QUERY, timeout=1.2
                )
                assert reply.op == Op.STATUS_REPORT
                assert isinstance(reply.body["status"], list)
                outcomes.append("ok")
            except (RequestTimeout, PeerUnavailable) as exc:
                outcomes.append(type(exc).__name__)
    finally:
        grid.shutdown()
    return outcomes


def test_requests_survive_record_drops(chaos_seed):
    """Dropped request frames: retries recover, or the error is typed."""
    with replaying(chaos_seed):
        outcomes = drop_scenario_outcomes(chaos_seed)
        assert len(outcomes) == 6
        # max_faults bounds the losses, so retries must pull most through.
        assert outcomes.count("ok") >= 3


@pytest.mark.parametrize("chaos_seed", chaos_seeds()[:2])
def test_drop_outcomes_replay_exactly(chaos_seed):
    """Same chaos_seed, same fault schedule, same outcome — the replay contract."""
    with replaying(chaos_seed):
        assert drop_scenario_outcomes(chaos_seed) == drop_scenario_outcomes(chaos_seed)


def test_corruption_degrades_cleanly(chaos_seed):
    """A corrupted record kills the tunnel's MAC check — the peer must
    degrade to unavailable, not wedge."""
    plan = FaultPlan(corrupt=0.3, skip=RECORD_TRAFFIC, max_faults=3)
    with replaying(chaos_seed):
        grid = build_grid(chaos_seed, plan)
        origin = grid.proxy_of("A")
        try:
            for _ in range(5):
                try:
                    reply = origin.request(
                        "proxy.B", Op.STATUS_QUERY, timeout=1.2
                    )
                    assert reply.op == Op.STATUS_REPORT
                except (RequestTimeout, PeerUnavailable):
                    pass  # clean, typed degradation is the requirement
            status = grid.global_status(via_site="A", allow_partial=True)
            assert isinstance(status["A"], list)
            assert status["B"] is None or isinstance(status["B"], list)
        finally:
            grid.shutdown()


def test_midstream_proxy_kill_degrades_one_site_only():
    """Kill a proxy while its site has work in flight: that site degrades,
    every other site keeps completing jobs — the paper's failure
    confinement, end to end."""
    grid = Grid()
    grid.add_site("A", nodes=2)
    grid.add_site("B", nodes=2)
    grid.add_extra_proxy("B")
    grid.add_site("C", nodes=2)
    grid.connect_all()
    grid.add_user("alice", "pw")
    grid.grant("user:alice", "site:*", "submit")
    try:
        in_flight: dict = {"error": None, "done": threading.Event()}

        def slow_job_to_c():
            try:
                grid.submit_job(
                    "alice", "pw", "sleep", {"duration": 5.0},
                    origin_site="A", target_site="C", timeout=10.0,
                )
            except ProxyError as exc:
                in_flight["error"] = exc
            finally:
                in_flight["done"].set()

        worker = threading.Thread(target=slow_job_to_c)
        worker.start()
        time.sleep(0.2)  # let the request reach proxy.C
        grid.proxies["proxy.C"].shutdown()

        # The in-flight request dies promptly with a typed error — it
        # does not sit out the full job timeout.
        assert in_flight["done"].wait(timeout=5.0)
        assert isinstance(in_flight["error"], ProxyError)

        # Surviving sites keep completing work.
        assert grid.submit_job(
            "alice", "pw", "echo", {"value": "B lives"},
            origin_site="A", target_site="B",
        ) == "B lives"

        # Partial global status: C degrades to None, the rest report.
        status = grid.global_status(via_site="A", allow_partial=True)
        assert status["C"] is None
        assert len(status["A"]) == 2 and len(status["B"]) == 2

        # New work for the dead site fails cleanly.
        with pytest.raises(ProxyError):
            grid.submit_job(
                "alice", "pw", "noop", origin_site="A", target_site="C",
                timeout=5.0,
            )

        # MPI routes around the unreachable site: C's stations are
        # healthy but nothing can tunnel their traffic, so placement
        # skips them and the application runs on the survivors.
        result = grid.run_mpi(lambda comm: comm.rank, nprocs=4, timeout=30.0)
        assert result.ok and result.returns == [0, 1, 2, 3]
        assert all(not node.startswith("C.") for node in result.placement)
    finally:
        grid.shutdown()

"""Chaos suite, shard level: worker processes killed mid-stream.

The fleet's resilience claim mirrors the grid's: a hard-killed worker
costs the client a typed error (:class:`PeerUnavailable` /
:class:`RequestTimeout`) on the connections it was serving — never a
hang — and the supervisor respawns it, so the *service* keeps its
capacity.  The kill point and victim are seeded, so any failure replays
exactly (see ``tests/chaos/conftest.py``).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.protocol import Op
from repro.core.proxy import PeerUnavailable, RequestTimeout
from repro.core.shardmgr import ShardClient, ShardManager

from tests.chaos.conftest import replaying

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

#: Requests per seed; the kill lands somewhere inside the stream.
STREAM_LEN = 40


@pytest.fixture(scope="module")
def fleet():
    manager = ShardManager(shards=2, name="chaos-shards").start()
    yield manager
    manager.stop()


def _await_capacity(manager, workers: int = 2, timeout: float = 30.0):
    """Block until ``workers`` live workers answer SHARD_STATS."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(manager.stats(timeout=5.0)) >= workers:
            return
        time.sleep(0.1)
    raise AssertionError("fleet never recovered full capacity")


def test_kill_mid_stream_fails_typed_then_recovers(fleet, chaos_seed):
    rng = random.Random(chaos_seed)
    kill_at = rng.randrange(5, STREAM_LEN - 5)
    victim = rng.randrange(fleet.shards)
    host, port = fleet.address
    completed = failed = 0
    with replaying(chaos_seed):
        _await_capacity(fleet)
        client = ShardClient(host, port, timeout=10.0)
        try:
            for i in range(STREAM_LEN):
                if i == kill_at:
                    fleet.kill_worker(victim)
                try:
                    reply = client.request(Op.PING, {"i": i}, timeout=10.0)
                except PeerUnavailable:
                    # This connection was pinned to the victim: the
                    # stream dies loudly.  Reconnect — the survivor (or
                    # the respawn) picks the new connection up.
                    failed += 1
                    client.close()
                    client = ShardClient(host, port, timeout=10.0)
                except RequestTimeout:
                    failed += 1  # typed, bounded — acceptable under chaos
                else:
                    assert reply.op == Op.PONG
                    assert reply.body["echo"] == {"i": i}
                    completed += 1
        finally:
            client.close()
        # The stream made real progress on both sides of the kill, and
        # losing one worker never cost more than a few in-flight sends.
        assert completed >= STREAM_LEN - 10
        assert failed <= 10
        # Supervision restores full capacity for the next seed.
        _await_capacity(fleet)
        assert sum(fleet.respawns.values()) >= 1


def test_replay_is_deterministic(fleet, chaos_seed):
    """The seeded schedule itself is replayable: same seed, same kill
    point and victim — the precondition for CHAOS_SEED debugging."""
    with replaying(chaos_seed):
        first = random.Random(chaos_seed)
        second = random.Random(chaos_seed)
        assert (
            first.randrange(5, STREAM_LEN - 5),
            first.randrange(fleet.shards),
        ) == (
            second.randrange(5, STREAM_LEN - 5),
            second.randrange(fleet.shards),
        )

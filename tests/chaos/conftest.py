"""Shared machinery for the chaos suite.

Every chaos test is parametrized over a fixed set of seeds, and every
fault schedule is a pure function of its seed — so a failure is
replayable: the test's failure message names the seed, and

    CHAOS_SEED=<seed> PYTHONPATH=src python -m pytest -m chaos

re-runs the whole suite under exactly that schedule.  ``CHAOS_SEED``
accepts a comma-separated list to replay several at once.
"""

import os
from contextlib import contextmanager

import pytest

from repro.obs import racesan

#: The default seed set.  Fixed, not random: the suite must fail the same
#: way tomorrow as it does today.
CHAOS_SEEDS = [11, 42, 1337, 9001, 20260806]


def chaos_seeds() -> list[int]:
    override = os.environ.get("CHAOS_SEED")
    if override:
        return [int(part) for part in override.split(",") if part.strip()]
    return CHAOS_SEEDS


def pytest_generate_tests(metafunc):
    """Parametrize any test asking for ``chaos_seed`` over the seed set.

    This is the single home of the ``CHAOS_SEED`` override: tests take a
    ``chaos_seed`` argument instead of reading the environment (or
    snapshotting the seed list at import time) themselves.
    """
    if "chaos_seed" in metafunc.fixturenames:
        # A test may pin its own (sub)set with an explicit parametrize —
        # e.g. the replay-determinism check runs a slice of the seeds.
        for marker in metafunc.definition.iter_markers("parametrize"):
            if "chaos_seed" in str(marker.args[0]):
                return
        metafunc.parametrize("chaos_seed", chaos_seeds())


@pytest.fixture(autouse=True)
def _racesan_recording():
    """Chaos tests interleave threads on purpose: record every access.

    Instrumentation is session-wide (root conftest); this only flips the
    recording gate for the duration of each chaos test.
    """
    sanitizer = racesan.active()
    if sanitizer is None or sanitizer.recording:
        yield
        return
    sanitizer.recording = True
    try:
        yield
    finally:
        sanitizer.recording = False


@contextmanager
def replaying(seed: int):
    """Annotate any failure inside the block with its replay seed."""
    try:
        yield
    except Exception as exc:
        exc.add_note(
            f"[chaos] replay with: CHAOS_SEED={seed} "
            f"PYTHONPATH=src python -m pytest -m chaos"
        )
        raise

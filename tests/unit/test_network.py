"""Unit tests for the simulated network."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.network import (
    LAN_PROFILE,
    WAN_PROFILE,
    Network,
    Packet,
)


def make_pair():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", latency=0.010, bandwidth=1_000_000.0)
    return sim, net


def test_packet_rejects_negative_size():
    with pytest.raises(ValueError):
        Packet(source="a", destination="b", size=-1)


def test_duplicate_host_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    with pytest.raises(ValueError):
        net.add_host("a")


def test_link_validation():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    with pytest.raises(ValueError):
        net.connect("a", "b", latency=-1.0, bandwidth=1.0)
    with pytest.raises(ValueError):
        net.connect("a", "b", latency=0.0, bandwidth=0.0)
    with pytest.raises(KeyError):
        net.connect("a", "nope", latency=0.0, bandwidth=1.0)


def test_delivery_time_is_latency_plus_transmission():
    sim, net = make_pair()
    got = []
    net.hosts["b"].on_packet(lambda p: got.append((sim.now, p)))
    # 1000 bytes at 1 MB/s = 1 ms transmission + 10 ms latency
    net.hosts["a"].send("b", size=1000)
    sim.run()
    assert len(got) == 1
    assert got[0][0] == pytest.approx(0.011)


def test_fifo_serialisation_on_link():
    sim, net = make_pair()
    times = []
    net.hosts["b"].on_packet(lambda p: times.append(sim.now))
    # Two back-to-back 1000-byte packets: second waits for the transmitter.
    net.hosts["a"].send("b", size=1000)
    net.hosts["a"].send("b", size=1000)
    sim.run()
    assert times[0] == pytest.approx(0.011)
    assert times[1] == pytest.approx(0.012)


def test_inbox_default_delivery():
    sim, net = make_pair()
    received = []

    def consumer(sim):
        packet = yield net.hosts["b"].inbox.get()
        received.append(packet.payload)

    sim.spawn(consumer(sim))
    net.hosts["a"].send("b", size=10, payload="hello")
    sim.run()
    assert received == ["hello"]


def test_multi_hop_routing_through_relay():
    sim = Simulator()
    net = Network(sim)
    for name in ["a", "relay", "b"]:
        net.add_host(name)
    net.connect("a", "relay", latency=0.001, bandwidth=1e6)
    net.connect("relay", "b", latency=0.001, bandwidth=1e6)
    got = []
    net.hosts["b"].on_packet(lambda p: got.append(p))
    net.hosts["a"].send("b", size=100)
    sim.run()
    assert len(got) == 1
    assert got[0].hops == 2
    assert net.path("a", "b") == ["a", "relay", "b"]


def test_no_route_raises():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")  # not connected
    with pytest.raises(KeyError):
        net.hosts["a"].send("b", size=1)


def test_reachability():
    sim, net = make_pair()
    assert net.reachable("a", "b")
    assert net.reachable("a", "a")
    net.add_host("c")
    assert not net.reachable("a", "c")


def test_shortest_path_chosen():
    sim = Simulator()
    net = Network(sim)
    for name in ["a", "b", "x", "y"]:
        net.add_host(name)
    net.connect("a", "b", latency=0.001, bandwidth=1e6)  # direct
    net.connect("a", "x", latency=0.001, bandwidth=1e6)
    net.connect("x", "y", latency=0.001, bandwidth=1e6)
    net.connect("y", "b", latency=0.001, bandwidth=1e6)
    assert net.path("a", "b") == ["a", "b"]


def test_remove_host_breaks_route():
    sim = Simulator()
    net = Network(sim)
    for name in ["a", "relay", "b"]:
        net.add_host(name)
    net.connect("a", "relay", latency=0.001, bandwidth=1e6)
    net.connect("relay", "b", latency=0.001, bandwidth=1e6)
    assert net.reachable("a", "b")
    net.remove_host("relay")
    assert not net.reachable("a", "b")


def test_disconnect_breaks_route():
    sim, net = make_pair()
    net.disconnect("a", "b")
    assert not net.reachable("a", "b")


def test_link_stats_accumulate():
    sim, net = make_pair()
    net.hosts["b"].on_packet(lambda p: None)
    net.hosts["a"].send("b", size=500)
    net.hosts["a"].send("b", size=700)
    sim.run()
    link = net.link("a", "b")
    assert link.stats.packets == 2
    assert link.stats.bytes == 1200
    assert link.stats.busy_time == pytest.approx(1200 / 1_000_000.0)


def test_drop_predicate_blackholes_packet():
    sim, net = make_pair()
    got = []
    net.hosts["b"].on_packet(lambda p: got.append(p))
    net.link("a", "b").drop_predicate = lambda p: True
    arrival = net.hosts["a"].send("b", size=100)
    sim.run()
    assert arrival == float("inf")
    assert got == []


def test_network_metrics_count_traffic():
    sim, net = make_pair()
    net.hosts["b"].on_packet(lambda p: None)
    net.hosts["a"].send("b", size=100)
    sim.run()
    snap = net.metrics.snapshot()
    assert snap["net.packets"] == 1
    assert snap["net.bytes"] == 100


def test_profiles_have_sane_shape():
    assert WAN_PROFILE["latency"] > LAN_PROFILE["latency"]
    assert WAN_PROFILE["bandwidth"] < LAN_PROFILE["bandwidth"]


def test_utilisation_bounded():
    sim, net = make_pair()
    net.hosts["b"].on_packet(lambda p: None)
    net.hosts["a"].send("b", size=1_000_000)
    sim.run()
    link = net.link("a", "b")
    assert 0.0 < link.utilisation(sim.now) <= 1.0
    assert link.utilisation(0.0) == 0.0

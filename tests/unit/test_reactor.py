"""Unit tests for the shared reactor: loops, timers, channels, backpressure."""

import socket
import threading
import time

import pytest

from repro.transport.errors import ChannelBusy, ChannelClosed
from repro.transport.faulty import FaultInjector, FaultPlan, FaultyChannel
from repro.transport.frames import Frame, FrameKind
from repro.transport.inproc import channel_pair
from repro.transport.reactor import (
    Reactor,
    ReactorTcpChannel,
    ReactorTcpListener,
    connect_tcp_reactor,
    io_mode,
    on_reactor_thread,
)


@pytest.fixture
def reactor():
    r = Reactor(loops=1, name="test-reactor").start()
    yield r
    r.stop()


def _frame(payload: bytes = b"x", kind=FrameKind.CONTROL) -> Frame:
    return Frame(kind=kind, payload=payload)


# ---------------------------------------------------------------------------
# Mode selection
# ---------------------------------------------------------------------------


class TestIoMode:
    def test_default_is_reactor(self, monkeypatch):
        monkeypatch.delenv("REPRO_IO", raising=False)
        assert io_mode() == "reactor"

    def test_env_selects_threaded(self, monkeypatch):
        monkeypatch.setenv("REPRO_IO", "threaded")
        assert io_mode() == "threaded"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_IO", "threaded")
        assert io_mode("reactor") == "reactor"

    def test_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_IO", "fibers")
        with pytest.raises(ValueError, match="fibers"):
            io_mode()


# ---------------------------------------------------------------------------
# Timers
# ---------------------------------------------------------------------------


class TestTimers:
    def test_call_later_fires_once(self, reactor):
        fired = threading.Event()
        reactor.call_later(0.01, fired.set)
        assert fired.wait(timeout=2.0)

    def test_call_later_cancel(self, reactor):
        fired = threading.Event()
        handle = reactor.call_later(0.05, fired.set)
        handle.cancel()
        assert not fired.wait(timeout=0.2)

    def test_call_every_is_periodic(self, reactor):
        ticks = []
        done = threading.Event()

        def tick():
            ticks.append(time.monotonic())
            if len(ticks) >= 5:
                done.set()

        handle = reactor.call_every(0.02, tick)
        assert done.wait(timeout=5.0)
        handle.cancel()

    def test_call_every_cancel_stops_firing(self, reactor):
        count = [0]
        handle = reactor.call_every(0.01, lambda: count.__setitem__(0, count[0] + 1))
        deadline = time.monotonic() + 2.0
        while count[0] < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert count[0] >= 2
        handle.cancel()
        settled = count[0]
        time.sleep(0.08)
        # at most one in-flight firing after cancel
        assert count[0] <= settled + 1

    def test_jitter_stays_within_bounds(self, reactor):
        handle = reactor.call_every(1.0, lambda: None, jitter=0.1)
        delays = {handle._next_delay() for _ in range(50)}
        assert all(0.9 <= d <= 1.1 for d in delays)
        assert len(delays) > 1  # actually jittered, not constant

    def test_timer_exception_does_not_kill_loop(self, reactor):
        fired = threading.Event()

        def bad():
            raise RuntimeError("boom")

        reactor.call_later(0.0, bad)
        reactor.call_later(0.02, fired.set)
        assert fired.wait(timeout=2.0)


# ---------------------------------------------------------------------------
# Channel adapters on the loop
# ---------------------------------------------------------------------------


class TestAddChannel:
    def test_inproc_frames_arrive_via_callback(self, reactor):
        a, b = channel_pair("t")
        got = []
        done = threading.Event()

        def on_frame(frame):
            got.append(frame.payload)
            if len(got) == 5:
                done.set()

        reactor.add_channel(b, on_frame)
        for i in range(5):
            a.send(_frame(b"m%d" % i))
        assert done.wait(timeout=2.0)
        assert got == [b"m0", b"m1", b"m2", b"m3", b"m4"]

    def test_frames_buffered_before_registration_are_drained(self, reactor):
        a, b = channel_pair("t")
        for i in range(3):
            a.send(_frame(b"%d" % i))
        got = []
        done = threading.Event()
        reactor.add_channel(
            b, lambda f: (got.append(f.payload), len(got) == 3 and done.set())
        )
        assert done.wait(timeout=2.0)
        assert got == [b"0", b"1", b"2"]

    def test_on_close_fires_once_when_peer_closes(self, reactor):
        a, b = channel_pair("t")
        closes = []
        closed = threading.Event()
        reactor.add_channel(
            b, lambda f: None, on_close=lambda ch, exc: (closes.append(exc), closed.set())
        )
        a.close()
        assert closed.wait(timeout=2.0)
        time.sleep(0.05)
        assert len(closes) == 1
        assert isinstance(closes[0], ChannelClosed)

    def test_non_reactor_channel_rejected(self, reactor):
        from repro.transport.channel import Channel

        class Legacy(Channel):
            def send(self, frame):
                pass

            def recv(self, timeout=None):
                raise NotImplementedError

            def close(self):
                pass

            @property
            def closed(self):
                return False

        with pytest.raises(ValueError, match="does not support reactor"):
            reactor.add_channel(Legacy(name="legacy"), lambda f: None)

    def test_faulty_channel_drops_on_the_loop(self, reactor):
        """A fault-injected wrapper runs on the loop; dropped frames never
        surface and the rest keep their order."""
        a, b = channel_pair("chaos")
        plan = FaultPlan(drop=0.5, max_faults=None)
        faulty = FaultyChannel(b, FaultInjector(seed=42, plan=plan), on_recv=True)
        # Replay the schedule to know exactly which of the 20 survive.
        oracle = FaultInjector(seed=42, plan=plan)
        expected = [
            b"m%d" % i
            for i in range(20)
            if oracle.decide("recv", i)[0] != "drop"
        ]
        got = []
        done = threading.Event()

        def on_frame(frame):
            got.append(frame.payload)
            if len(got) == len(expected):
                done.set()

        reactor.add_channel(faulty, on_frame)
        for i in range(20):
            a.send(_frame(b"m%d" % i))
        assert done.wait(timeout=5.0)
        assert got == expected

    def test_handler_exception_does_not_stop_delivery(self, reactor):
        a, b = channel_pair("t")
        got = []
        done = threading.Event()

        def on_frame(frame):
            got.append(frame.payload)
            if frame.payload == b"bad":
                raise RuntimeError("handler fault")
            if frame.payload == b"last":
                done.set()

        reactor.add_channel(b, on_frame)
        a.send(_frame(b"bad"))
        a.send(_frame(b"last"))
        assert done.wait(timeout=2.0)
        assert got == [b"bad", b"last"]


# ---------------------------------------------------------------------------
# Reactor TCP transport
# ---------------------------------------------------------------------------


class TestReactorTcp:
    def test_round_trip_via_callbacks(self, reactor):
        listener = ReactorTcpListener(reactor=reactor)
        client = connect_tcp_reactor(listener.host, listener.port, reactor=reactor)
        server = listener.accept(timeout=5.0)
        try:
            got = []
            done = threading.Event()
            reactor.add_channel(
                server,
                lambda f: (got.append(f.payload), len(got) == 10 and done.set()),
            )
            client.send_many(_frame(b"n%d" % i) for i in range(10))
            assert done.wait(timeout=5.0)
            assert got == [b"n%d" % i for i in range(10)]
        finally:
            client.close()
            server.close()
            listener.close()

    def test_blocking_recv_works_before_registration(self, reactor):
        """The synchronous handshake path: recv blocks without a callback."""
        listener = ReactorTcpListener(reactor=reactor)
        client = connect_tcp_reactor(listener.host, listener.port, reactor=reactor)
        server = listener.accept(timeout=5.0)
        try:
            client.send(_frame(b"hello", kind=FrameKind.HANDSHAKE))
            frame = server.recv(timeout=5.0)
            assert frame.payload == b"hello"
            server.send(_frame(b"olleh", kind=FrameKind.HANDSHAKE))
            assert client.recv(timeout=5.0).payload == b"olleh"
        finally:
            client.close()
            server.close()
            listener.close()

    def test_close_propagates_to_peer(self, reactor):
        listener = ReactorTcpListener(reactor=reactor)
        client = connect_tcp_reactor(listener.host, listener.port, reactor=reactor)
        server = listener.accept(timeout=5.0)
        listener.close()
        client.close()
        with pytest.raises(ChannelClosed):
            for _ in range(100):
                server.recv(timeout=1.0)
        server.close()


# ---------------------------------------------------------------------------
# Backpressure: bounded write queues made deterministic
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_slow_tcp_peer_raises_channel_busy(self, reactor):
        """A peer that never reads fills the socket buffer, then the
        bounded write queue, then ``send`` fails fast with ChannelBusy."""
        listener = ReactorTcpListener(reactor=reactor)
        raw = socket.create_connection((listener.host, listener.port))
        raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
        server = listener.accept(timeout=5.0)
        assert isinstance(server, ReactorTcpChannel)
        server.max_write_queue = 64 * 1024
        server.send_timeout = 0.2
        payload = b"\x5a" * 4096
        try:
            with pytest.raises(ChannelBusy):
                for _ in range(1000):
                    server.send(_frame(payload))
            # Bounded: the queue never exceeded its cap plus one frame.
            assert server._wq_bytes <= server.max_write_queue + 5000
            assert not server.closed  # backpressure is not failure
        finally:
            server.close()
            raw.close()
            listener.close()

    def test_send_unblocks_when_peer_drains(self, reactor):
        listener = ReactorTcpListener(reactor=reactor)
        raw = socket.create_connection((listener.host, listener.port))
        raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
        server = listener.accept(timeout=5.0)
        server.max_write_queue = 32 * 1024
        server.send_timeout = 10.0
        payload = b"\x5a" * 4096
        try:
            # Fill until a send would have to wait.
            while server._wq_bytes + 5000 <= server.max_write_queue:
                server.send(_frame(payload))

            def drain():
                time.sleep(0.1)
                while True:
                    try:
                        if not raw.recv(65536):
                            return
                    except OSError:
                        return

            drainer = threading.Thread(target=drain, daemon=True)
            drainer.start()
            start = time.monotonic()
            for _ in range(30):
                server.send(_frame(payload))  # blocks, then proceeds
            assert time.monotonic() - start < 8.0
        finally:
            server.close()
            raw.close()
            listener.close()

    def test_partial_write_accounting_returns_to_zero(self, reactor):
        """Partial writes must not leak queued-byte accounting: once the
        peer drains everything, ``_wq_bytes`` returns to exactly zero and
        later sends see no phantom backpressure."""
        listener = ReactorTcpListener(reactor=reactor)
        raw = socket.create_connection((listener.host, listener.port))
        raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
        server = listener.accept(timeout=5.0)
        # Tiny send buffer + large frames force partial sendmsg writes.
        server._sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
        server.max_write_queue = 1024 * 1024
        server.send_timeout = 5.0
        payload = b"\x5a" * 32768
        stop = threading.Event()

        def drain():
            raw.settimeout(0.2)
            while not stop.is_set():
                try:
                    if not raw.recv(65536):
                        return
                except socket.timeout:
                    continue
                except OSError:
                    return

        drainer = threading.Thread(target=drain, daemon=True)
        try:
            for _ in range(8):
                server.send(_frame(payload))
            drainer.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and server._wq:
                time.sleep(0.01)
            assert not server._wq
            assert server._wq_bytes == 0
            server.send(_frame(b"still healthy"))  # no phantom ChannelBusy
        finally:
            stop.set()
            server.close()
            raw.close()
            listener.close()

    def test_bounded_inproc_buffer_raises_channel_busy(self):
        a, b = channel_pair("bounded", maxsize=4, send_timeout=0.05)
        for _ in range(4):
            a.send(_frame(b"x"))
        with pytest.raises(ChannelBusy):
            a.send(_frame(b"overflow"))
        # Draining one slot lets the next send through.
        b.recv(timeout=1.0)
        a.send(_frame(b"fits-now"))
        assert b.pending_frames() == 4


# ---------------------------------------------------------------------------
# Batch delivery and adaptive write coalescing
# ---------------------------------------------------------------------------


class TestBatchDelivery:
    def test_buffered_frames_arrive_as_one_batch(self, reactor):
        """Frames queued before registration drain in a single
        ``on_batch`` call, not five ``on_frame`` calls."""
        a, b = channel_pair("t")
        for i in range(5):
            a.send(_frame(b"m%d" % i))
        batches = []
        done = threading.Event()
        reactor.add_channel(
            b, on_batch=lambda fs: (batches.append(fs), done.set())
        )
        assert done.wait(timeout=2.0)
        assert len(batches) == 1
        assert [f.payload for f in batches[0]] == [b"m0", b"m1", b"m2", b"m3", b"m4"]

    def test_batch_delivered_before_close_notice(self, reactor):
        """A death notice must not eat drained frames: the final batch is
        handed over before ``on_close`` fires."""
        a, b = channel_pair("t")
        for i in range(3):
            a.send(_frame(b"%d" % i))
        a.close()
        order = []
        closed = threading.Event()
        reactor.add_channel(
            b,
            on_batch=lambda fs: order.append(("batch", len(fs))),
            on_close=lambda ch, exc: (order.append(("close", type(exc))), closed.set()),
        )
        assert closed.wait(timeout=2.0)
        assert order == [("batch", 3), ("close", ChannelClosed)]

    def test_add_channel_requires_a_callback(self, reactor):
        a, b = channel_pair("t")
        with pytest.raises(ValueError):
            reactor.add_channel(b)

    def test_tcp_round_trip_via_batch(self, reactor):
        listener = ReactorTcpListener(reactor=reactor)
        client = ReactorTcpChannel(
            socket.create_connection((listener.host, listener.port)),
            reactor=reactor,
        )
        server = listener.accept(timeout=5.0)
        got = []
        done = threading.Event()
        # Zero-copy delivery hands out memoryview payloads valid only for
        # the duration of the batch: copy before retaining.
        reactor.add_channel(
            server,
            on_batch=lambda fs: (
                got.extend(bytes(f.payload) for f in fs),
                len(got) >= 4 and done.set(),
            ),
        )
        try:
            client.send_many([_frame(b"b%d" % i) for i in range(4)])
            assert done.wait(timeout=5.0)
            assert sorted(got) == [b"b0", b"b1", b"b2", b"b3"]
        finally:
            client.close()
            server.close()
            listener.close()


class TestWriteCoalescing:
    def _drained_pair(self, reactor):
        """A server channel whose raw peer continuously drains."""
        listener = ReactorTcpListener(reactor=reactor)
        raw = socket.create_connection((listener.host, listener.port))
        server = listener.accept(timeout=5.0)
        stop = threading.Event()

        def drain():
            raw.settimeout(0.2)
            while not stop.is_set():
                try:
                    if not raw.recv(65536):
                        return
                except socket.timeout:
                    continue
                except OSError:
                    return

        drainer = threading.Thread(target=drain, daemon=True)
        drainer.start()
        return listener, raw, server, stop

    def test_window_grows_under_burst_then_shrinks_when_idle(self, reactor):
        listener, raw, server, stop = self._drained_pair(reactor)
        try:
            assert server._coalesce_window == 1
            # Bursts keep each flush observing a deep queue: the window
            # widens so concurrent producers share a sendmsg.
            deadline = time.monotonic() + 5.0
            while server._coalesce_window < 4 and time.monotonic() < deadline:
                server.send_many([_frame(b"burst") for _ in range(16)])
                time.sleep(0.005)
            assert server._coalesce_window >= 4
            # Shallow traffic shrinks it back: an idle channel must not
            # keep paying the deferred-flush latency.
            deadline = time.monotonic() + 5.0
            while server._coalesce_window > 1 and time.monotonic() < deadline:
                server.send(_frame(b"single"))
                time.sleep(0.02)
            assert server._coalesce_window == 1
        finally:
            stop.set()
            server.close()
            raw.close()
            listener.close()

    def test_window_never_exceeds_cap(self, reactor):
        listener, raw, server, stop = self._drained_pair(reactor)
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and server._coalesce_window < (
                ReactorTcpChannel.MAX_COALESCE_WINDOW
            ):
                server.send_many([_frame(b"x") for _ in range(128)])
                time.sleep(0.002)
            assert server._coalesce_window <= ReactorTcpChannel.MAX_COALESCE_WINDOW
        finally:
            stop.set()
            server.close()
            raw.close()
            listener.close()

    def test_send_many_burst_rejects_eagerly_without_partial_queue(self, reactor):
        """Satellite regression: under a full write queue a burst must
        raise ChannelBusy *before* queuing anything — a partial batch
        left behind would be sent later, violating all-or-nothing."""
        listener = ReactorTcpListener(reactor=reactor)
        raw = socket.create_connection((listener.host, listener.port))
        raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
        server = listener.accept(timeout=5.0)
        server.max_write_queue = 64 * 1024
        server.send_timeout = 0.2
        payload = b"\x5a" * 4096
        try:
            with pytest.raises(ChannelBusy):
                for _ in range(1000):
                    server.send(_frame(payload))
            time.sleep(0.3)  # let in-flight flushes settle against the full peer
            before_len = len(server._wq)
            before_bytes = server._wq_bytes
            with pytest.raises(ChannelBusy):
                server.send_many([_frame(payload) for _ in range(8)])
            # All-or-nothing: the rejected burst left no partial batch.
            assert len(server._wq) == before_len
            assert server._wq_bytes == before_bytes
            assert not server.closed
        finally:
            server.close()
            raw.close()
            listener.close()


# ---------------------------------------------------------------------------
# Lifecycle and loop-thread detection
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_restart_after_stop_runs_timers(self):
        """A stopped reactor must not silently drop work handed to dead
        loops: the next use restarts with fresh loops."""
        r = Reactor(loops=1, name="restart-test").start()
        r.stop()
        fired = threading.Event()
        r.call_later(0.0, fired.set)  # next_loop() restarts transparently
        assert fired.wait(timeout=5.0)
        r.stop()

    def test_on_reactor_thread_detection(self, reactor):
        assert on_reactor_thread() is False  # the test runner's thread
        result = {}
        done = threading.Event()

        def probe():
            result["on_loop"] = on_reactor_thread()
            done.set()

        reactor.next_loop().schedule(probe)
        assert done.wait(timeout=5.0)
        assert result["on_loop"] is True


# ---------------------------------------------------------------------------
# Thread budget
# ---------------------------------------------------------------------------


class TestThreadBudget:
    def test_many_channels_one_loop_thread(self, reactor):
        """50 registered channels must not add 50 threads: that is the
        whole point of the migration."""
        before = threading.active_count()
        pairs = [channel_pair(f"p{i}") for i in range(50)]
        seen = [0]
        done = threading.Event()
        lock = threading.Lock()

        def on_frame(frame):
            with lock:
                seen[0] += 1
                if seen[0] == 50:
                    done.set()

        for a, b in pairs:
            reactor.add_channel(b, on_frame)
        assert threading.active_count() <= before + 1
        for a, _ in pairs:
            a.send(_frame(b"ping"))
        assert done.wait(timeout=5.0)
        for a, b in pairs:
            a.close()

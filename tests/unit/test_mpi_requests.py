"""Unit tests for non-blocking request handles and probe semantics."""

import time

import pytest

from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, Request
from repro.mpi.launcher import mpirun


class TestRequest:
    def test_test_before_completion(self):
        request = Request()
        assert not request.test()
        request._complete(value=7)
        assert request.test()
        assert request.wait() == 7

    def test_wait_timeout(self):
        request = Request()
        with pytest.raises(TimeoutError):
            request.wait(timeout=0.01)

    def test_error_reraised_on_wait(self):
        request = Request()
        request._complete(error=ValueError("bad"))
        with pytest.raises(ValueError, match="bad"):
            request.wait()


class TestNonBlockingOverlap:
    def test_irecv_posted_before_send_arrives(self):
        def app(comm):
            if comm.rank == 1:
                request = comm.irecv(source=0, tag=3)
                # Not yet complete: the sender is deliberately slow.
                early = request.test()
                value = request.wait(timeout=30.0)
                return (early, value)
            time.sleep(0.1)
            comm.send("late delivery", dest=1, tag=3)
            return None

        result = mpirun(app, 2, timeout=30.0)
        assert result.ok
        early, value = result.returns[1]
        assert value == "late delivery"
        assert not early  # genuinely overlapped

    def test_multiple_irecv_by_tag(self):
        def app(comm):
            if comm.rank == 0:
                a = comm.irecv(source=1, tag=1)
                b = comm.irecv(source=1, tag=2)
                return (a.wait(timeout=30.0), b.wait(timeout=30.0))
            comm.send("two", dest=0, tag=2)
            comm.send("one", dest=0, tag=1)
            return None

        result = mpirun(app, 2, timeout=30.0)
        assert result.returns[0] == ("one", "two")

    def test_isend_completes_immediately(self):
        def app(comm):
            if comm.rank == 0:
                request = comm.isend("x", dest=1)
                done = request.test()
                request.wait(timeout=5.0)
                return done
            return comm.recv(source=0, timeout=30.0)

        result = mpirun(app, 2, timeout=30.0)
        assert result.returns[0] is True
        assert result.returns[1] == "x"

    def test_isend_to_invalid_rank_reports_via_request(self):
        def app(comm):
            request = comm.isend("x", dest=99)
            try:
                request.wait(timeout=5.0)
            except Exception as exc:
                return type(exc).__name__
            return "no error"

        result = mpirun(app, 1, timeout=30.0)
        assert result.returns[0] == "MpiError"

    def test_irecv_invalid_source_reports_via_request(self):
        # Matching isend: validation errors complete the Request rather
        # than raising from the irecv call itself.
        def app(comm):
            request = comm.irecv(source=99)
            try:
                request.wait(timeout=5.0)
            except Exception as exc:
                return type(exc).__name__
            return "no error"

        result = mpirun(app, 1, timeout=30.0)
        assert result.returns[0] == "MpiError"


class TestProbeSemantics:
    def test_probe_wildcards(self):
        def app(comm):
            if comm.rank == 0:
                comm.send("m", dest=1, tag=5)
                comm.send("done", dest=1, tag=0)
                return None
            comm.recv(source=0, tag=0, timeout=30.0)
            by_any = comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            by_tag = comm.probe(tag=5)
            by_source = comm.probe(source=0)
            missing = comm.probe(tag=9)
            comm.recv(source=0, tag=5, timeout=30.0)
            return (
                by_any is not None,
                by_tag.tag if by_tag else None,
                by_source.source if by_source else None,
                missing,
            )

        result = mpirun(app, 2, timeout=30.0)
        assert result.returns[1] == (True, 5, 0, None)

    def test_probe_does_not_consume(self):
        def app(comm):
            if comm.rank == 0:
                comm.send("still here", dest=1, tag=1)
                return None
            # Wait for arrival, probing repeatedly.
            for _ in range(100):
                if comm.probe(tag=1) is not None:
                    break
                time.sleep(0.01)
            comm.probe(tag=1)
            comm.probe(tag=1)
            return comm.recv(source=0, tag=1, timeout=30.0)

        result = mpirun(app, 2, timeout=30.0)
        assert result.returns[1] == "still here"

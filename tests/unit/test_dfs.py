"""Unit tests for the distributed filing system."""

import pytest

from repro.dfs.filesystem import DfsError, GridFileSystem
from repro.dfs.metadata import FileEntry, Namespace, NamespaceError
from repro.dfs.storage import ChunkStore, StorageError, chunk_id


class TestChunkStore:
    def test_put_get_round_trip(self):
        store = ChunkStore("A", capacity=1000)
        cid = store.put(b"hello chunks")
        assert store.get(cid) == b"hello chunks"
        assert store.has(cid)

    def test_content_addressing(self):
        store = ChunkStore("A")
        assert store.put(b"data") == chunk_id(b"data")

    def test_deduplication(self):
        store = ChunkStore("A", capacity=100)
        store.put(b"same")
        store.put(b"same")
        assert store.chunk_count() == 1
        assert store.used == 4

    def test_refcounted_release(self):
        store = ChunkStore("A")
        cid = store.put(b"x")
        store.put(b"x")
        store.release(cid)
        assert store.has(cid)
        store.release(cid)
        assert not store.has(cid)

    def test_capacity_enforced(self):
        store = ChunkStore("A", capacity=10)
        store.put(b"12345678")
        with pytest.raises(StorageError, match="full"):
            store.put(b"xyz")

    def test_missing_chunk(self):
        store = ChunkStore("A")
        with pytest.raises(StorageError, match="not at site"):
            store.get("0" * 64)

    def test_failed_store_rejects_everything(self):
        store = ChunkStore("A")
        cid = store.put(b"x")
        store.fail()
        assert not store.available
        assert not store.has(cid)
        with pytest.raises(StorageError, match="down"):
            store.get(cid)
        with pytest.raises(StorageError, match="down"):
            store.put(b"y")
        store.recover()
        assert store.get(cid) == b"x"

    def test_invalid_capacity(self):
        with pytest.raises(StorageError):
            ChunkStore("A", capacity=0)


class TestNamespace:
    def test_create_get_remove(self):
        ns = Namespace()
        ns.create(FileEntry(path="/a/b", size=3, chunk_size=10))
        assert ns.get("/a/b").size == 3
        assert ns.exists("/a/b")
        ns.remove("/a/b")
        assert not ns.exists("/a/b")

    def test_duplicate_rejected(self):
        ns = Namespace()
        ns.create(FileEntry(path="/x", size=1, chunk_size=1))
        with pytest.raises(NamespaceError, match="exists"):
            ns.create(FileEntry(path="/x", size=1, chunk_size=1))

    def test_relative_path_rejected(self):
        ns = Namespace()
        with pytest.raises(NamespaceError):
            ns.create(FileEntry(path="no-slash", size=1, chunk_size=1))

    def test_missing_path(self):
        ns = Namespace()
        with pytest.raises(NamespaceError, match="no such file"):
            ns.get("/ghost")

    def test_list_by_prefix(self):
        ns = Namespace()
        for path in ["/data/a", "/data/b", "/logs/x"]:
            ns.create(FileEntry(path=path, size=1, chunk_size=1))
        assert ns.list("/data") == ["/data/a", "/data/b"]
        assert len(ns.list("/")) == 3

    def test_totals(self):
        ns = Namespace()
        ns.create(FileEntry(path="/a", size=10, chunk_size=1))
        ns.create(FileEntry(path="/b", size=20, chunk_size=1))
        assert ns.total_bytes() == 30
        assert ns.file_count() == 2


class TestGridFileSystem:
    def make(self, sites=3, replication=2, chunk_size=16):
        fs = GridFileSystem(replication=replication, chunk_size=chunk_size)
        for name in [f"site{i}" for i in range(sites)]:
            fs.add_site(name, capacity=10_000)
        return fs

    def test_write_read_round_trip(self):
        fs = self.make()
        data = bytes(range(256)) * 3
        fs.write("/data/blob", data)
        assert fs.read("/data/blob") == data

    def test_empty_file(self):
        fs = self.make()
        fs.write("/empty", b"")
        assert fs.read("/empty") == b""

    def test_chunking(self):
        fs = self.make(chunk_size=16)
        data = b"x" * 50  # 4 chunks: 16+16+16+2
        entry = fs.write("/f", data)
        assert entry.chunk_count == 4

    def test_replication_across_distinct_sites(self):
        fs = self.make(replication=2)
        entry = fs.write("/f", b"payload")
        for index in range(entry.chunk_count):
            holders = entry.sites_for(index)
            assert len(holders) == 2
            assert len(set(holders)) == 2

    def test_duplicate_path_rejected(self):
        fs = self.make()
        fs.write("/f", b"1")
        with pytest.raises(DfsError, match="exists"):
            fs.write("/f", b"2")

    def test_survives_single_site_failure(self):
        fs = self.make(sites=3, replication=2)
        data = b"important" * 100
        fs.write("/critical", data)
        fs.store_of("site0").fail()
        assert fs.read("/critical") == data

    def test_read_prefers_local_site(self):
        fs = self.make(sites=3, replication=3)  # replica everywhere
        fs.write("/f", b"payload")
        fs.read("/f", site="site1")
        assert fs.local_chunk_reads == 1
        assert fs.remote_chunk_reads == 0

    def test_remote_read_accounted(self):
        fs = self.make(sites=3, replication=1)
        entry = fs.write("/f", b"payload")
        holder = entry.sites_for(0)[0]
        other = next(s for s in fs.sites() if s != holder)
        fs.read("/f", site=other)
        assert fs.remote_chunk_reads == 1

    def test_all_replicas_down_raises(self):
        fs = self.make(sites=2, replication=2)
        fs.write("/f", b"data")
        fs.store_of("site0").fail()
        fs.store_of("site1").fail()
        with pytest.raises(DfsError, match="unavailable"):
            fs.read("/f")

    def test_delete_frees_space(self):
        fs = self.make()
        fs.write("/f", b"z" * 100)
        used_before = sum(fs.store_of(s).used for s in fs.sites())
        assert used_before > 0
        fs.delete("/f")
        assert sum(fs.store_of(s).used for s in fs.sites()) == 0
        assert not fs.namespace.exists("/f")

    def test_insufficient_sites_rejected(self):
        fs = GridFileSystem(replication=3)
        fs.add_site("only", capacity=1000)
        with pytest.raises(DfsError, match="only 1 available"):
            fs.write("/f", b"data")

    def test_failed_write_rolls_back(self):
        fs = GridFileSystem(replication=2, chunk_size=100)
        fs.add_site("big", capacity=10_000)
        fs.add_site("small", capacity=150)
        # Second chunk cannot find two sites with room -> whole write fails.
        with pytest.raises(DfsError):
            fs.write("/f", b"q" * 300)
        assert fs.store_of("big").used == 0
        assert fs.store_of("small").used == 0
        assert not fs.namespace.exists("/f")

    def test_re_replication_restores_redundancy(self):
        fs = self.make(sites=3, replication=2)
        data = b"replicate me" * 50
        fs.write("/f", data)
        entry = fs.stat("/f")
        victim = entry.sites_for(0)[0]
        fs.store_of(victim).fail()
        recreated = fs.re_replicate(victim)
        assert recreated >= 1
        # Now even a second failure of the re-replication source is survivable.
        entry = fs.stat("/f")
        for index in range(entry.chunk_count):
            live = [
                s for s in entry.sites_for(index) if fs.store_of(s).available
            ]
            assert len(live) >= 2

    def test_ls_and_stat(self):
        fs = self.make()
        fs.write("/data/a", b"1")
        fs.write("/data/b", b"22")
        assert fs.ls("/data") == ["/data/a", "/data/b"]
        assert fs.stat("/data/b").size == 2

    def test_validation(self):
        with pytest.raises(DfsError):
            GridFileSystem(replication=0)
        with pytest.raises(DfsError):
            GridFileSystem(chunk_size=0)
        fs = self.make()
        with pytest.raises(DfsError):
            fs.add_site("site0")  # duplicate
        with pytest.raises(DfsError):
            fs.store_of("nope")

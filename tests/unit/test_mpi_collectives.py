"""Unit tests for minimpi collectives across world sizes.

World sizes cover 1, 2, powers of two and awkward odd sizes, because the
binomial-tree algorithms have distinct code paths for each.
"""

import pytest

from repro.mpi.communicator import MpiError
from repro.mpi.datatypes import MAX, MIN, PROD, SUM, LAND, LOR
from repro.mpi.launcher import mpirun

SIZES = [1, 2, 3, 4, 5, 7, 8]


@pytest.mark.parametrize("n", SIZES)
def test_barrier_completes(n):
    result = mpirun(lambda comm: comm.barrier(timeout=10.0) or "ok", n, timeout=20.0)
    assert result.ok


def test_barrier_orders_side_effects():
    import threading

    arrived = []
    lock = threading.Lock()

    def app(comm):
        with lock:
            arrived.append(("before", comm.rank))
        comm.barrier(timeout=10.0)
        with lock:
            arrived.append(("after", comm.rank))

    result = mpirun(app, 4, timeout=20.0)
    assert result.ok
    phases = [phase for phase, _ in arrived]
    assert phases.index("after") >= phases.count("before") - phases[::-1].count("before")
    # All "before" entries precede all "after" entries.
    last_before = max(i for i, p in enumerate(phases) if p == "before")
    first_after = min(i for i, p in enumerate(phases) if p == "after")
    assert last_before < first_after


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_from_any_root(n, root):
    root_rank = n - 1 if root == "last" else 0

    def app(comm):
        payload = {"data": [1, 2, 3]} if comm.rank == root_rank else None
        return comm.bcast(payload, root=root_rank, timeout=10.0)

    result = mpirun(app, n, timeout=20.0)
    assert result.ok
    assert all(r == {"data": [1, 2, 3]} for r in result.returns)


@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum(n):
    def app(comm):
        return comm.reduce(comm.rank + 1, SUM, root=0, timeout=10.0)

    result = mpirun(app, n, timeout=20.0)
    assert result.ok
    assert result.returns[0] == n * (n + 1) // 2
    assert all(r is None for r in result.returns[1:])


@pytest.mark.parametrize("n", SIZES)
def test_reduce_to_nonzero_root(n):
    root = n - 1

    def app(comm):
        return comm.reduce(comm.rank, SUM, root=root, timeout=10.0)

    result = mpirun(app, n, timeout=20.0)
    assert result.returns[root] == sum(range(n))


@pytest.mark.parametrize("op,values,expected", [
    (SUM, [1, 2, 3, 4], 10),
    (PROD, [1, 2, 3, 4], 24),
    (MAX, [3, 1, 4, 1], 4),
    (MIN, [3, 1, 4, 1], 1),
    (LAND, [True, True, False, True], False),
    (LOR, [False, False, True, False], True),
])
def test_reduce_operations(op, values, expected):
    def app(comm):
        return comm.reduce(values[comm.rank], op, root=0, timeout=10.0)

    result = mpirun(app, len(values), timeout=20.0)
    assert result.returns[0] == expected


def test_reduce_noncommutative_preserves_rank_order():
    """String concatenation is associative but not commutative."""
    def app(comm):
        from repro.mpi.datatypes import ReduceOp
        concat = ReduceOp("concat", lambda a, b: a + b)
        return comm.reduce(str(comm.rank), concat, root=0, timeout=10.0)

    for n in [2, 3, 4, 5, 8]:
        result = mpirun(app, n, timeout=20.0)
        assert result.returns[0] == "".join(str(i) for i in range(n)), f"n={n}"


@pytest.mark.parametrize("n", SIZES)
def test_allreduce(n):
    def app(comm):
        return comm.allreduce(comm.rank + 1, SUM, timeout=10.0)

    result = mpirun(app, n, timeout=20.0)
    assert result.ok
    assert all(r == n * (n + 1) // 2 for r in result.returns)


@pytest.mark.parametrize("n", SIZES)
def test_gather(n):
    def app(comm):
        return comm.gather(comm.rank * 2, root=0, timeout=10.0)

    result = mpirun(app, n, timeout=20.0)
    assert result.returns[0] == [i * 2 for i in range(n)]
    assert all(r is None for r in result.returns[1:])


@pytest.mark.parametrize("n", SIZES)
def test_allgather(n):
    def app(comm):
        return comm.allgather(f"r{comm.rank}", timeout=10.0)

    result = mpirun(app, n, timeout=20.0)
    expected = [f"r{i}" for i in range(n)]
    assert all(r == expected for r in result.returns)


@pytest.mark.parametrize("n", SIZES)
def test_scatter(n):
    def app(comm):
        values = [i * 100 for i in range(comm.size)] if comm.rank == 0 else None
        return comm.scatter(values, root=0, timeout=10.0)

    result = mpirun(app, n, timeout=20.0)
    assert result.returns == [i * 100 for i in range(n)]


def test_scatter_wrong_length_rejected():
    def app(comm):
        values = [1] if comm.rank == 0 else None
        return comm.scatter(values, root=0, timeout=2.0)

    result = mpirun(app, 2, timeout=10.0)
    assert isinstance(result.errors[0], MpiError)


@pytest.mark.parametrize("n", SIZES)
def test_alltoall(n):
    def app(comm):
        values = [f"{comm.rank}->{dest}" for dest in range(comm.size)]
        return comm.alltoall(values, timeout=10.0)

    result = mpirun(app, n, timeout=20.0)
    assert result.ok
    for rank, got in enumerate(result.returns):
        assert got == [f"{src}->{rank}" for src in range(n)]


def test_alltoall_wrong_length_rejected():
    def app(comm):
        return comm.alltoall([1], timeout=2.0)

    result = mpirun(app, 2, timeout=10.0)
    assert isinstance(result.errors[0], MpiError)
    assert isinstance(result.errors[1], MpiError)


@pytest.mark.parametrize("n", SIZES)
def test_scan_inclusive_prefix(n):
    def app(comm):
        return comm.scan(comm.rank + 1, SUM, timeout=10.0)

    result = mpirun(app, n, timeout=20.0)
    assert result.returns == [sum(range(1, k + 2)) for k in range(n)]


def test_consecutive_collectives_do_not_interfere():
    def app(comm):
        first = comm.allreduce(1, SUM, timeout=10.0)
        comm.barrier(timeout=10.0)
        second = comm.allreduce(comm.rank, MAX, timeout=10.0)
        third = comm.bcast("x" if comm.rank == 0 else None, root=0, timeout=10.0)
        return (first, second, third)

    n = 5
    result = mpirun(app, n, timeout=30.0)
    assert result.ok
    assert all(r == (n, n - 1, "x") for r in result.returns)


def test_collectives_interleaved_with_p2p():
    def app(comm):
        if comm.rank == 0:
            comm.send("side-channel", dest=1, tag=7)
        total = comm.allreduce(1, SUM, timeout=10.0)
        if comm.rank == 1:
            extra = comm.recv(source=0, tag=7, timeout=10.0)
            return (total, extra)
        return (total, None)

    result = mpirun(app, 3, timeout=20.0)
    assert result.ok
    assert result.returns[1] == (3, "side-channel")


def test_bcast_invalid_root_rejected():
    def app(comm):
        return comm.bcast("x", root=5, timeout=2.0)

    result = mpirun(app, 2, timeout=10.0)
    assert isinstance(result.errors[0], MpiError)

"""Wire-compatibility oracle for the data-plane fast path.

The golden hex blobs below were produced by the seed implementation
(per-byte XOR cipher, copying codec) *before* the fast path landed.  The
fast path must emit byte-identical frames and records and accept the
seed's bytes, so a pre-change peer and a post-change peer interoperate.
"""

import binascii

import pytest

from repro.security.cipher import CipherError, RecordCipher, SessionKeys
from repro.transport.frames import (
    Frame,
    FrameDecoder,
    FrameKind,
    decode_frame,
    encode_frame,
    encode_frame_views,
)

# (frame fields, seed-encoded hex) — covers every kind, empty and busy
# headers, nested values, unicode, big ints, and binary payloads.
GOLDEN_FRAMES = [
    (
        dict(kind=FrameKind.CONTROL, channel=0, headers={}, payload=b""),
        "475801010000000000000005000000000800000000",
    ),
    (
        dict(
            kind=FrameKind.DATA,
            channel=7,
            headers={"op": "PUT", "seq": 3},
            payload=b"body-bytes",
        ),
        "4758010200000007000000230000000a080000000205000000026f70050000000350"
        "5554050000000373657103000000020003626f64792d6279746573",
    ),
    (
        dict(
            kind=FrameKind.HANDSHAKE,
            channel=0,
            headers={"step": "hello"},
            payload=bytes(range(64)),
        ),
        "475801030000000000000018000000400800000001050000000473746570050000000568"
        "656c6c6f000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f",
    ),
    (
        dict(
            kind=FrameKind.HEARTBEAT,
            channel=4294967295,
            headers={"t": 1.5, "big": 2**100, "u": "açã"},
            payload=b"\x00" * 33,
        ),
        "47580104ffffffff0000003f000000210800000003050000000174043ff8000000000000"
        "0500000003626967030000000e0010000000000000000000000000050000000175"
        "050000000561c3a7c3a3" + "00" * 33,
    ),
    (
        dict(
            kind=FrameKind.MPI,
            channel=12,
            headers={
                "rank": 2,
                "nest": {"a": [1, (2, b"x")], "none": None, "flag": True},
            },
            payload=b"Z" * 100,
        ),
        "475801050000000c0000005b0000006408000000020500000004"
        "72616e6b0300000002000205000000046e65737408000000030500000001"
        "6107000000020300000002000109000000020300000002000206000000017805"
        "000000046e6f6e65000500000004666c616701" + "5a" * 100,
    ),
]

# Records sealed by the seed RecordCipher under fixed keys, sequences 0..5.
GOLDEN_KEYS = SessionKeys(encrypt_key=bytes(range(32)), mac_key=bytes(range(32, 64)))
GOLDEN_PLAINTEXTS = [b"", b"a", b"x" * 31, b"y" * 32, b"z" * 33]
GOLDEN_RECORDS = [
    "000000000000000048317b1d19db4290655946a2a2353d347c105fd577f8e43ec0a288f0fdd07436",
    "00000000000000013323c85bffee532c422ffa31247e79371292968926b8f3db783cdc767ceef9a63d",
    "0000000000000002ba7255462acd8cab00ef9bda6f61d78ba032f32bff2f2082c28f0871ad379036"
    "5db133cccbc494383ca2c6252719196b272039403e258d9c0337389decc2a1",
    "0000000000000003045f0a64c24107db5e3511d6e81b92a6705e84325499b15d17459df4444b2939"
    "9c4358f586d7f00e15f599123b9385d49ffac1c1250226bc41827a75cd63246e",
    "000000000000000479ee45e64543662c179c06b2c30595dc0503759436e533809eb38829b1081ec5"
    "efcd4371326c1cf63290bb4c10334047a181352142e90bec5c119e2ba1aaed9df0",
]


def _golden_frame_blobs():
    for fields, *hex_parts in GOLDEN_FRAMES:
        yield Frame(**fields), binascii.unhexlify("".join(hex_parts))


class TestGoldenFrames:
    def test_encode_matches_seed_bytes(self):
        for frame, blob in _golden_frame_blobs():
            assert encode_frame(frame) == blob

    def test_views_concatenate_to_seed_bytes(self):
        for frame, blob in _golden_frame_blobs():
            views = encode_frame_views(frame)
            assert b"".join(views) == blob
            # payload rides zero-copy as the final view
            assert views[-1] == frame.payload

    def test_decode_accepts_seed_bytes(self):
        for frame, blob in _golden_frame_blobs():
            decoded = decode_frame(blob)
            assert decoded.kind == frame.kind
            assert decoded.channel == frame.channel
            assert decoded.headers == frame.headers
            assert decoded.payload == frame.payload

    def test_decoder_reassembles_seed_stream(self):
        stream = b"".join(blob for _, blob in _golden_frame_blobs())
        decoder = FrameDecoder()
        for i in range(0, len(stream), 5):
            decoder.feed(stream[i : i + 5])
        decoded = list(decoder)
        assert [f.kind for f in decoded] == [f.kind for f, _ in _golden_frame_blobs()]
        assert decoder.pending_bytes == 0


class TestGoldenRecords:
    def test_seal_matches_seed_bytes(self):
        # Default suite is the seed-compatible sha256ctr.
        sender = RecordCipher(GOLDEN_KEYS)
        for plaintext, golden in zip(GOLDEN_PLAINTEXTS, GOLDEN_RECORDS):
            assert sender.seal(plaintext) == binascii.unhexlify(golden)

    def test_open_accepts_seed_records(self):
        receiver = RecordCipher(GOLDEN_KEYS)
        for plaintext, golden in zip(GOLDEN_PLAINTEXTS, GOLDEN_RECORDS):
            assert receiver.open(binascii.unhexlify(golden)) == plaintext

    def test_open_accepts_sequence_gap(self):
        # Dropped carriers must not wedge the stream: only monotonicity
        # is enforced, exactly as in the seed.
        receiver = RecordCipher(GOLDEN_KEYS)
        assert receiver.open(binascii.unhexlify(GOLDEN_RECORDS[0])) == b""
        assert receiver.open(binascii.unhexlify(GOLDEN_RECORDS[3])) == b"y" * 32
        with pytest.raises(CipherError):
            receiver.open(binascii.unhexlify(GOLDEN_RECORDS[1]))  # behind now

    def test_shake_suite_shares_layout_but_not_bytes(self):
        fast = RecordCipher(GOLDEN_KEYS, suite="shake128")
        record = fast.seal(b"y" * 32)
        golden = binascii.unhexlify(GOLDEN_RECORDS[3])
        # skip to the same sequence number as the golden record
        fast2 = RecordCipher(GOLDEN_KEYS, suite="shake128")
        for _ in range(3):
            fast2.seal(b"")
        record = fast2.seal(b"y" * 32)
        assert len(record) == len(golden)
        assert record[:8] == golden[:8]  # same seq header
        assert record != golden  # different keystream/MAC bytes
        opener = RecordCipher(GOLDEN_KEYS, suite="shake128")
        assert opener.open(record) == b"y" * 32


class TestDecoderInvariants:
    def test_pending_bytes_tracks_fed_minus_consumed(self):
        frames = [
            Frame(kind=FrameKind.DATA, headers={"i": i}, payload=bytes([i]) * (i * 7))
            for i in range(12)
        ]
        stream = b"".join(encode_frame(f) for f in frames)
        sizes = [f.wire_size() for f in frames]
        decoder = FrameDecoder()
        fed = consumed = 0
        out = []
        for i in range(0, len(stream), 9):
            chunk = stream[i : i + 9]
            decoder.feed(chunk)
            fed += len(chunk)
            while True:
                frame = decoder.next_frame()
                if frame is None:
                    break
                out.append(frame)
                consumed += decoder.last_frame_wire_size
                assert decoder.pending_bytes == fed - consumed
            assert decoder.pending_bytes == fed - consumed
        assert [f.headers["i"] for f in out] == list(range(12))
        assert consumed == sum(sizes) == len(stream)
        assert decoder.pending_bytes == 0

    def test_compaction_across_large_consumed_prefix(self):
        # Push the consumed offset past the lazy-compaction threshold and
        # confirm frame boundaries stay intact.
        big = Frame(kind=FrameKind.DATA, payload=b"\xab" * (300 * 1024))
        tail = Frame(kind=FrameKind.CONTROL, headers={"done": True})
        stream = encode_frame(big) + encode_frame(tail)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), 4096):
            decoder.feed(stream[i : i + 4096])
            out.extend(decoder)
        assert len(out) == 2
        assert out[0].payload == big.payload
        assert out[1].headers == {"done": True}
        assert decoder.pending_bytes == 0

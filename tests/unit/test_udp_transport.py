"""Unit tests for the reliable-UDP transport, including loss injection."""

import struct
import threading

import pytest

from repro.transport.errors import ChannelClosed, FrameError, TransportTimeout
from repro.transport.frames import Frame, FrameKind
from repro.transport.udp import MAX_UDP_FRAME, udp_pair


def data_frame(payload=b"x", **headers):
    return Frame(kind=FrameKind.DATA, headers=headers, payload=payload)


def close_pair(a, b):
    a.close()
    b.close()


class TestLossFree:
    def test_round_trip(self):
        a, b = udp_pair()
        try:
            a.send(data_frame(b"over real datagrams", seq=1))
            frame = b.recv(timeout=5.0)
            assert frame.payload == b"over real datagrams"
            assert frame.headers == {"seq": 1}
        finally:
            close_pair(a, b)

    def test_bidirectional(self):
        a, b = udp_pair()
        try:
            a.send(data_frame(b"ping"))
            assert b.recv(timeout=5.0).payload == b"ping"
            b.send(data_frame(b"pong"))
            assert a.recv(timeout=5.0).payload == b"pong"
        finally:
            close_pair(a, b)

    def test_order_preserved(self):
        a, b = udp_pair()
        try:
            for i in range(100):
                a.send(data_frame(seq=i))
            got = [b.recv(timeout=5.0).headers["seq"] for _ in range(100)]
            assert got == list(range(100))
        finally:
            close_pair(a, b)

    def test_recv_timeout(self):
        a, b = udp_pair()
        try:
            with pytest.raises(TransportTimeout):
                b.recv(timeout=0.05)
        finally:
            close_pair(a, b)

    def test_oversized_frame_rejected(self):
        a, b = udp_pair()
        try:
            with pytest.raises(FrameError, match="too large"):
                a.send(data_frame(b"\x00" * (MAX_UDP_FRAME + 1)))
        finally:
            close_pair(a, b)

    def test_close_propagates(self):
        a, b = udp_pair()
        a.send(data_frame(b"last"))
        assert b.recv(timeout=5.0).payload == b"last"
        a.close()
        with pytest.raises(ChannelClosed):
            b.recv(timeout=5.0)
        b.close()

    def test_send_after_close_raises(self):
        a, b = udp_pair()
        close_pair(a, b)
        with pytest.raises(ChannelClosed):
            a.send(data_frame())

    def test_threaded_echo(self):
        a, b = udp_pair()

        def echo():
            for _ in range(50):
                frame = b.recv(timeout=10.0)
                b.send(frame)

        thread = threading.Thread(target=echo)
        thread.start()
        try:
            for i in range(50):
                a.send(data_frame(seq=i))
            got = [a.recv(timeout=10.0).headers["seq"] for _ in range(50)]
            assert got == list(range(50))
            thread.join(timeout=10.0)
        finally:
            close_pair(a, b)


class TestUnderLoss:
    """The ARQ layer must mask dropped datagrams, exactly like TCP would."""

    def make_dropper(self, drop_indices):
        counter = {"n": 0}

        def drop(datagram):
            dtype = struct.unpack_from("!B", datagram, 0)[0]
            if dtype != 1:  # only drop DATA; ACK/FIN loss tested separately
                return False
            index = counter["n"]
            counter["n"] += 1
            return index in drop_indices

        return drop

    def test_single_drop_recovered_by_retransmit(self):
        a, b = udp_pair(loss_injector_a=self.make_dropper({0}))
        try:
            a.send(data_frame(b"must arrive"))
            assert b.recv(timeout=10.0).payload == b"must arrive"
        finally:
            close_pair(a, b)

    def test_burst_drops_preserve_order(self):
        # Drop the first transmission of frames 2, 3 and 7.
        a, b = udp_pair(loss_injector_a=self.make_dropper({2, 3, 7}))
        try:
            for i in range(10):
                a.send(data_frame(seq=i))
            got = [b.recv(timeout=10.0).headers["seq"] for _ in range(10)]
            assert got == list(range(10))
        finally:
            close_pair(a, b)

    def test_periodic_loss_full_stream_delivered(self):
        # Every 5th DATA datagram (first transmission or retransmission)
        # vanishes; cumulative ACK + retransmission still delivers all.
        counter = {"n": 0}

        def drop_every_5th(datagram):
            if struct.unpack_from("!B", datagram, 0)[0] != 1:
                return False
            counter["n"] += 1
            return counter["n"] % 5 == 0

        a, b = udp_pair(loss_injector_a=drop_every_5th)
        try:
            for i in range(40):
                a.send(data_frame(seq=i))
            got = [b.recv(timeout=20.0).headers["seq"] for _ in range(40)]
            assert got == list(range(40))
        finally:
            close_pair(a, b)

    def test_ack_loss_tolerated(self):
        """Dropping ACKs causes duplicate DATA, which must be discarded."""
        counter = {"n": 0}

        def drop_some_acks(datagram):
            if struct.unpack_from("!B", datagram, 0)[0] != 2:
                return False
            counter["n"] += 1
            return counter["n"] % 2 == 0

        a, b = udp_pair(loss_injector_b=drop_some_acks)
        try:
            for i in range(20):
                a.send(data_frame(seq=i))
            got = [b.recv(timeout=20.0).headers["seq"] for _ in range(20)]
            assert got == list(range(20))  # no duplicates delivered
        finally:
            close_pair(a, b)

    def test_total_blackhole_eventually_closes(self):
        a, b = udp_pair(loss_injector_a=lambda d: True)  # nothing escapes
        try:
            a.send(data_frame(b"doomed"))
            # The retransmitter gives up and closes the channel.
            deadline = 20.0
            import time

            start = time.monotonic()
            while not a.closed and time.monotonic() - start < deadline:
                time.sleep(0.1)
            assert a.closed
        finally:
            close_pair(a, b)

"""Unit tests for metrics primitives."""

import pytest

from repro.simulation.metrics import Counter, Histogram, MetricsRegistry, TimeSeries


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0.0

    def test_add_accumulates(self):
        c = Counter("c")
        c.add()
        c.add(2.5)
        assert c.value == 3.5

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)

    def test_reset(self):
        c = Counter("c")
        c.add(5)
        c.reset()
        assert c.value == 0.0


class TestHistogram:
    def test_empty_summary_is_zero(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.count == 0

    def test_mean_and_extremes(self):
        h = Histogram("h")
        for x in [1.0, 2.0, 3.0, 4.0]:
            h.observe(x)
        assert h.mean == 2.5
        assert h.minimum == 1.0
        assert h.maximum == 4.0
        assert h.total == 10.0

    def test_median_exact(self):
        h = Histogram("h")
        for x in [5.0, 1.0, 3.0]:
            h.observe(x)
        assert h.quantile(0.5) == 3.0

    def test_quantile_interpolates(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(10.0)
        assert h.quantile(0.25) == 2.5

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_observe_after_quantile_resorts(self):
        h = Histogram("h")
        h.observe(10.0)
        h.observe(0.0)
        assert h.quantile(0.0) == 0.0
        h.observe(-5.0)
        assert h.quantile(0.0) == -5.0

    def test_stddev(self):
        h = Histogram("h")
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            h.observe(x)
        assert h.stddev == pytest.approx(2.138, abs=0.01)

    def test_stddev_single_sample_zero(self):
        h = Histogram("h")
        h.observe(3.0)
        assert h.stddev == 0.0

    def test_summary_keys(self):
        h = Histogram("h")
        h.observe(1.0)
        assert set(h.summary()) == {"count", "mean", "p50", "p95", "p99", "min", "max"}


class TestTimeSeries:
    def test_record_and_last(self):
        ts = TimeSeries("s")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert ts.last() == (1.0, 2.0)
        assert len(ts) == 2

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries("s")
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_time_weighted_mean(self):
        ts = TimeSeries("s")
        ts.record(0.0, 0.0)  # value 0 for 1s
        ts.record(1.0, 10.0)  # value 10 for 3s
        ts.record(4.0, 0.0)
        assert ts.time_weighted_mean() == pytest.approx((0 * 1 + 10 * 3) / 4)

    def test_time_weighted_mean_single_point(self):
        ts = TimeSeries("s")
        ts.record(2.0, 7.0)
        assert ts.time_weighted_mean() == 7.0

    def test_values(self):
        ts = TimeSeries("s")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert ts.values() == [1.0, 2.0]


class TestMetricsRegistry:
    def test_counter_is_memoised(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_snapshot_flattens_all_metrics(self):
        reg = MetricsRegistry()
        reg.counter("ops").add(3)
        reg.histogram("lat").observe(1.0)
        reg.timeseries("util").record(0.0, 0.5)
        snap = reg.snapshot()
        assert snap["ops"] == 3
        assert snap["lat.mean"] == 1.0
        assert "util.twmean" in snap

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("ops").add(3)
        reg.reset()
        assert reg.snapshot() == {}

"""Session-ticket resumption tests for the secure handshake.

A full handshake issues an opaque ticket inside the server FINISH; a
later dial presents it in HELLO and, if the server redeems it, both
ends skip the asymmetric exchange entirely.  Any rejection must fall
back to the full handshake on the same connection — resumption is an
optimisation, never a new failure mode.
"""

from __future__ import annotations

import threading

import pytest

from repro.security.ca import CertificationAuthority
from repro.security.cipher import CIPHER_SUITES
from repro.security.handshake import (
    HandshakeError,
    ResumptionTicket,
    SessionTicketKeeper,
    accept_secure,
    connect_secure,
)
from repro.security.rsa import RsaKeyPair
from repro.transport.frames import Frame, FrameKind, decode_value, encode_value
from repro.transport.inproc import channel_pair

KEY_BITS = 512


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


@pytest.fixture(scope="module")
def client_key():
    return RsaKeyPair.generate(KEY_BITS)


@pytest.fixture(scope="module")
def server_key():
    return RsaKeyPair.generate(KEY_BITS)


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def ca(clock):
    return CertificationAuthority(key_bits=KEY_BITS, clock=clock)


@pytest.fixture()
def keeper(clock):
    return SessionTicketKeeper(clock)


def run_handshake(
    ca,
    clock,
    client_key,
    server_key,
    keeper=None,
    resumption=None,
    **server_kwargs,
):
    """Drive both ends over an in-process pair; returns (client, server)."""
    client_cert = ca.issue("proxy.siteA", "proxy", client_key.public)
    server_cert = ca.issue("proxy.siteB", "proxy", server_key.public)
    a, b = channel_pair("hs-resume")
    result = {}

    def server():
        try:
            result["server"] = accept_secure(
                b,
                server_key,
                server_cert,
                ca.public_key,
                clock,
                ticket_keeper=keeper,
                **server_kwargs,
            )
        except Exception as exc:
            result["error"] = exc
            b.close()  # unblock the client instead of letting it time out

    thread = threading.Thread(target=server, daemon=True)
    thread.start()
    try:
        client = connect_secure(
            a,
            client_key,
            client_cert,
            ca.public_key,
            clock,
            resumption=resumption,
        )
    except Exception:
        a.close()  # unblock the server thread
        raise
    thread.join(timeout=10.0)
    return client, result["server"]


def assert_round_trip(client, server):
    client.send(Frame(kind=FrameKind.CONTROL, headers={"op": "PING"}))
    assert server.recv(timeout=5.0).headers == {"op": "PING"}
    server.send(Frame(kind=FrameKind.CONTROL, headers={"op": "PONG"}))
    assert client.recv(timeout=5.0).headers == {"op": "PONG"}


class TestTicketIssue:
    def test_full_handshake_banks_a_ticket(self, ca, clock, client_key, server_key, keeper):
        client, server = run_handshake(ca, clock, client_key, server_key, keeper)
        assert client.resumed is False
        ticket = client.resumption_ticket
        assert isinstance(ticket, ResumptionTicket)
        assert ticket.peer_cert.subject == "proxy.siteB"
        assert keeper.issued == 1
        assert_round_trip(client, server)

    def test_no_keeper_no_ticket(self, ca, clock, client_key, server_key):
        client, _ = run_handshake(ca, clock, client_key, server_key, keeper=None)
        assert client.resumption_ticket is None


class TestResumption:
    def test_resumed_dial_skips_asymmetric_path(
        self, ca, clock, client_key, server_key, keeper
    ):
        first, _ = run_handshake(ca, clock, client_key, server_key, keeper)
        second, server = run_handshake(
            ca, clock, client_key, server_key, keeper,
            resumption=first.resumption_ticket,
        )
        assert second.resumed is True
        assert server.resumed is True
        assert second.peer.subject == "proxy.siteB"
        assert keeper.redeemed == 1
        assert_round_trip(second, server)

    def test_each_resumption_rotates_the_ticket(
        self, ca, clock, client_key, server_key, keeper
    ):
        client, _ = run_handshake(ca, clock, client_key, server_key, keeper)
        seen = {client.resumption_ticket.blob}
        for _ in range(3):
            client, _ = run_handshake(
                ca, clock, client_key, server_key, keeper,
                resumption=client.resumption_ticket,
            )
            assert client.resumed is True
            assert client.resumption_ticket is not None
            assert client.resumption_ticket.blob not in seen
            seen.add(client.resumption_ticket.blob)
        assert keeper.redeemed == 3

    def test_resumed_channel_keys_ratchet(
        self, ca, clock, client_key, server_key, keeper
    ):
        first, _ = run_handshake(ca, clock, client_key, server_key, keeper)
        second, _ = run_handshake(
            ca, clock, client_key, server_key, keeper,
            resumption=first.resumption_ticket,
        )
        # The rotated ticket seals a *new* master, not the cached one.
        assert second.resumption_ticket.master != first.resumption_ticket.master


class TestFallback:
    def test_expired_ticket_falls_back_to_full(
        self, ca, clock, client_key, server_key, keeper
    ):
        first, _ = run_handshake(ca, clock, client_key, server_key, keeper)
        clock.now += keeper.lifetime + 1.0
        client, server = run_handshake(
            ca, clock, client_key, server_key, keeper,
            resumption=first.resumption_ticket,
        )
        assert client.resumed is False
        assert keeper.rejected == 1
        assert_round_trip(client, server)

    def test_garbage_ticket_falls_back(self, ca, clock, client_key, server_key, keeper):
        first, _ = run_handshake(ca, clock, client_key, server_key, keeper)
        bogus = ResumptionTicket(
            b"not-a-ticket",
            first.resumption_ticket.master,
            first.resumption_ticket.suite,
            first.resumption_ticket.peer_cert,
        )
        client, server = run_handshake(
            ca, clock, client_key, server_key, keeper, resumption=bogus
        )
        assert client.resumed is False
        assert keeper.rejected == 1
        assert_round_trip(client, server)

    def test_server_restart_invalidates_tickets(
        self, ca, clock, client_key, server_key
    ):
        keeper1 = SessionTicketKeeper(clock)
        first, _ = run_handshake(ca, clock, client_key, server_key, keeper1)
        keeper2 = SessionTicketKeeper(clock)  # fresh STEK after "restart"
        client, server = run_handshake(
            ca, clock, client_key, server_key, keeper2,
            resumption=first.resumption_ticket,
        )
        assert client.resumed is False
        assert keeper2.rejected == 1
        assert_round_trip(client, server)

    def test_bad_cached_suite_disqualifies_after_redeem(
        self, ca, clock, client_key, server_key, keeper
    ):
        # A ticket that redeems but carries an unusable cached suite is
        # disqualified *before any send*, so the full handshake proceeds
        # cleanly on the same connection.
        first, _ = run_handshake(ca, clock, client_key, server_key, keeper)
        cert_bytes = ca.issue(
            "proxy.siteA", "proxy", client_key.public
        ).to_bytes()
        stale = ResumptionTicket(
            keeper.seal(b"m" * 32, cert_bytes, "no-such-suite"),
            first.resumption_ticket.master,
            first.resumption_ticket.suite,
            first.resumption_ticket.peer_cert,
        )
        client, server = run_handshake(
            ca, clock, client_key, server_key, keeper, resumption=stale
        )
        assert client.resumed is False
        assert keeper.redeemed == 1  # it *did* redeem, then got vetoed
        assert_round_trip(client, server)

    def test_tampered_master_fails_loudly(
        self, ca, clock, client_key, server_key, keeper
    ):
        # A client whose cached master diverges (simulated corruption)
        # must not silently negotiate garbage keys: the FINISH MACs
        # disagree and the handshake errors out.
        first, _ = run_handshake(ca, clock, client_key, server_key, keeper)
        corrupt = ResumptionTicket(
            first.resumption_ticket.blob,
            b"\x00" * 32,
            first.resumption_ticket.suite,
            first.resumption_ticket.peer_cert,
        )
        with pytest.raises(HandshakeError, match="FINISH"):
            run_handshake(
                ca, clock, client_key, server_key, keeper, resumption=corrupt
            )


class TestSuiteTamper:
    def test_tampered_resumed_cipher_is_rejected(
        self, ca, clock, client_key, server_key, keeper
    ):
        # The suite rides the resumed hello in cleartext; an active
        # attacker rewriting it (downgrade) must desync the FINISH
        # transcripts, not silently rebind the record layer.
        first, _ = run_handshake(ca, clock, client_key, server_key, keeper)
        original = first.resumption_ticket.suite
        downgraded = next(s for s in CIPHER_SUITES if s != original)

        client_cert = ca.issue("proxy.siteA", "proxy", client_key.public)
        server_cert = ca.issue("proxy.siteB", "proxy", server_key.public)
        c_a, c_b = channel_pair("mitm-client")
        s_a, s_b = channel_pair("mitm-server")
        result = {}

        def server():
            try:
                accept_secure(
                    s_b, server_key, server_cert, ca.public_key, clock,
                    ticket_keeper=keeper, timeout=5.0,
                )
            except Exception as exc:
                result["server_error"] = exc

        def client():
            try:
                connect_secure(
                    c_a, client_key, client_cert, ca.public_key, clock,
                    resumption=first.resumption_ticket, timeout=5.0,
                )
            except Exception as exc:
                result["client_error"] = exc

        threads = [
            threading.Thread(target=server, daemon=True),
            threading.Thread(target=client, daemon=True),
        ]
        for t in threads:
            t.start()
        try:
            s_a.send(c_b.recv(timeout=5.0))  # client hello, untouched
            hello = s_a.recv(timeout=5.0)  # server resumed hello
            body = decode_value(hello.payload)
            assert body.get("resumed") is True
            assert body["cipher"] == original
            body["cipher"] = downgraded
            c_b.send(
                Frame(
                    kind=FrameKind.HANDSHAKE,
                    headers=hello.headers,
                    payload=encode_value(body),
                )
            )
            c_b.send(s_a.recv(timeout=5.0))  # server FINISH, untouched
        finally:
            threads[1].join(timeout=10.0)
            for ch in (c_a, c_b, s_a, s_b):
                ch.close()
            threads[0].join(timeout=10.0)
        err = result.get("client_error")
        assert isinstance(err, HandshakeError)
        assert "FINISH" in str(err)


class TestKeeper:
    def test_redeem_counts(self, keeper):
        assert keeper.redeem(b"junk") is None
        assert keeper.rejected == 1
        blob = keeper.seal(b"m" * 32, b"cert-bytes", "sha256ctr")
        state = keeper.redeem(blob)
        assert state is not None
        assert state["master"] == b"m" * 32
        assert keeper.issued == 1
        assert keeper.redeemed == 1

    def test_ticket_blob_hides_master(self, keeper):
        master = b"super-secret-master-secret-32byt"
        blob = keeper.seal(master, b"cert-bytes", "sha256ctr")
        assert master not in blob

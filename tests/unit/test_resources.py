"""Unit tests for node resource models and owner priority."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStream
from repro.simulation.resources import NodeResources, OwnerActivity


def test_idle_node_runs_job_at_full_speed():
    sim = Simulator()
    node = NodeResources(sim, "n0", cpu_speed=1.0)
    done = node.submit(cpu_work=10.0)
    sim.run()
    assert done.triggered
    assert done.value == pytest.approx(10.0)


def test_faster_node_finishes_sooner():
    sim = Simulator()
    node = NodeResources(sim, "n0", cpu_speed=2.0)
    done = node.submit(cpu_work=10.0)
    sim.run()
    assert done.value == pytest.approx(5.0)


def test_owner_load_slows_grid_job():
    sim = Simulator()
    node = NodeResources(sim, "n0", cpu_speed=1.0)
    node.set_owner_load(0.5)
    done = node.submit(cpu_work=10.0)
    sim.run()
    assert done.value == pytest.approx(20.0)


def test_owner_load_change_mid_job_retimes():
    sim = Simulator()
    node = NodeResources(sim, "n0", cpu_speed=1.0)
    done = node.submit(cpu_work=10.0)

    def owner(sim):
        yield sim.timeout(5.0)  # job half done
        node.set_owner_load(0.5)  # remaining 5 units now take 10s

    sim.spawn(owner(sim))
    sim.run()
    assert done.value == pytest.approx(15.0)


def test_full_owner_load_stalls_job():
    sim = Simulator()
    node = NodeResources(sim, "n0")
    node.set_owner_load(1.0)
    done = node.submit(cpu_work=1.0)

    def owner(sim):
        yield sim.timeout(100.0)
        node.set_owner_load(0.0)

    sim.spawn(owner(sim))
    sim.run()
    assert done.value == pytest.approx(101.0)


def test_processor_sharing_between_jobs():
    sim = Simulator()
    node = NodeResources(sim, "n0", cpu_speed=1.0)
    first = node.submit(cpu_work=10.0)
    second = node.submit(cpu_work=10.0)
    sim.run()
    # Both share the CPU: each finishes at t=20.
    assert first.value == pytest.approx(20.0)
    assert second.value == pytest.approx(20.0)
    assert node.jobs_completed == 2


def test_short_job_departure_speeds_up_survivor():
    sim = Simulator()
    node = NodeResources(sim, "n0", cpu_speed=1.0)
    short = node.submit(cpu_work=5.0)
    long = node.submit(cpu_work=10.0)
    sim.run()
    # Shared until short finishes at t=10 (5 work at rate 0.5);
    # long then has 5 work left at full rate: t=15.
    assert short.value == pytest.approx(10.0)
    assert long.value == pytest.approx(15.0)


def test_zero_work_job_completes_immediately():
    sim = Simulator()
    node = NodeResources(sim, "n0")
    done = node.submit(cpu_work=0.0)
    sim.run()
    assert done.triggered
    assert done.value == pytest.approx(0.0)


def test_ram_accounting_and_exhaustion():
    sim = Simulator()
    node = NodeResources(sim, "n0", ram_total=100)
    node.submit(cpu_work=1.0, ram=80)
    with pytest.raises(MemoryError):
        node.submit(cpu_work=1.0, ram=30)
    sim.run()
    assert node.ram_used == 0  # released on completion


def test_disk_allocation():
    sim = Simulator()
    node = NodeResources(sim, "n0", disk_total=1000)
    node.allocate_disk(600)
    with pytest.raises(OSError):
        node.allocate_disk(500)
    node.release_disk(600)
    node.allocate_disk(1000)
    with pytest.raises(ValueError):
        node.release_disk(2000)


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        NodeResources(sim, "n0", cpu_speed=0.0)
    node = NodeResources(sim, "n0")
    with pytest.raises(ValueError):
        node.submit(cpu_work=-1.0)
    with pytest.raises(ValueError):
        node.submit(cpu_work=1.0, ram=-1)
    with pytest.raises(ValueError):
        node.set_owner_load(1.5)


def test_snapshot_reflects_state():
    sim = Simulator()
    node = NodeResources(sim, "n0", cpu_speed=2.0, ram_total=100, disk_total=50)
    node.submit(cpu_work=100.0, ram=40)
    snap = node.snapshot()
    assert snap.node == "n0"
    assert snap.cpu_speed == 2.0
    assert snap.ram_available == 60
    assert snap.disk_available == 50
    assert snap.running_jobs == 1
    assert 0.0 < snap.effective_speed <= 2.0


def test_execute_generator_form():
    sim = Simulator()
    node = NodeResources(sim, "n0")
    results = []

    def app(sim):
        runtime = yield from node.execute(cpu_work=3.0)
        results.append(runtime)

    sim.spawn(app(sim))
    sim.run()
    assert results == [pytest.approx(3.0)]


class TestOwnerActivity:
    def test_duty_cycle(self):
        rng = RandomStream(1, "owner")
        owner = OwnerActivity(rng, mean_idle=30.0, mean_busy=10.0)
        assert owner.duty_cycle() == pytest.approx(0.25)

    def test_invalid_fraction_rejected(self):
        rng = RandomStream(1, "owner")
        with pytest.raises(ValueError):
            OwnerActivity(rng, busy_fraction=1.5)

    def test_activity_toggles_node_load(self):
        sim = Simulator()
        rng = RandomStream(42, "owner")
        node = NodeResources(sim, "n0")
        owner = OwnerActivity(rng, mean_idle=10.0, mean_busy=10.0, busy_fraction=0.7)
        sim.spawn(owner.run(node))
        loads = set()

        def sampler(sim):
            for _ in range(200):
                yield sim.timeout(1.0)
                loads.add(node.owner_load)

        sim.spawn(sampler(sim))
        sim.run(until=200.0)
        assert loads == {0.0, 0.7}

    def test_grid_job_slower_under_owner_activity(self):
        def run_with(mean_busy):
            sim = Simulator()
            rng = RandomStream(7, "owner")
            node = NodeResources(sim, "n0")
            if mean_busy > 0:
                owner = OwnerActivity(
                    rng, mean_idle=5.0, mean_busy=mean_busy, busy_fraction=0.9
                )
                sim.spawn(owner.run(node))
            done = node.submit(cpu_work=50.0)
            sim.run(until=10_000.0)
            return done.value

        assert run_with(20.0) > run_with(0.0)

"""Unit tests for the control-plane dispatch pipeline."""

import threading

import pytest

from repro.core.dispatch import DROP, DispatchPipeline
from repro.core.protocol import ControlMessage, Op
from repro.transport.frames import Frame, FrameKind


@pytest.fixture
def pipeline():
    p = DispatchPipeline(name="test-dispatch", workers=2)
    yield p
    p.close()


def _message(op=Op.PING, body=None, sender="peer") -> ControlMessage:
    return ControlMessage(op=op, body=body or {}, sender=sender)


class _Sink:
    """Collects replies, with an event for cross-thread completions."""

    def __init__(self):
        self.replies = []
        self.arrived = threading.Event()

    def __call__(self, reply):
        self.replies.append(reply)
        self.arrived.set()


# ---------------------------------------------------------------------------
# Stage 1: decode
# ---------------------------------------------------------------------------


class TestDecode:
    def test_valid_frame_decodes(self, pipeline):
        message = _message()
        decoded = pipeline.decode(message.to_frame())
        assert decoded is not None
        assert decoded.op == Op.PING
        assert decoded.message_id == message.message_id

    def test_garbage_is_discarded(self, pipeline):
        junk = Frame(kind=FrameKind.CONTROL, payload=b"\x00not-a-message")
        assert pipeline.decode(junk) is None


# ---------------------------------------------------------------------------
# Stage 3: registry lookup and execution
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_inline_handler_replies(self, pipeline):
        pipeline.register(
            Op.PING, lambda message, peer: message.reply(Op.PONG, {"peer": peer})
        )
        sink = _Sink()
        pipeline.dispatch(_message(), "proxy.A", sink)
        assert sink.arrived.wait(timeout=2.0)
        assert sink.replies[0].op == Op.PONG
        assert sink.replies[0].body["peer"] == "proxy.A"

    def test_inline_handler_runs_on_callers_thread(self, pipeline):
        threads = []
        pipeline.register(
            Op.PING,
            lambda message, peer: threads.append(threading.current_thread()) or None,
        )
        pipeline.dispatch(_message(), "p", lambda r: None)
        assert threads == [threading.current_thread()]

    def test_blocking_handler_runs_on_pool(self, pipeline):
        names = []
        sink = _Sink()
        pipeline.register(
            Op.JOB_SUBMIT,
            lambda message, peer: (
                names.append(threading.current_thread().name),
                message.reply(Op.JOB_RESULT, {}),
            )[1],
            blocking=True,
        )
        pipeline.dispatch(_message(op=Op.JOB_SUBMIT), "p", sink)
        assert sink.arrived.wait(timeout=5.0)
        assert names and names[0].startswith("test-dispatch-worker")

    def test_pool_is_lazy(self, pipeline):
        pipeline.register(Op.PING, lambda message, peer: None)
        pipeline.dispatch(_message(), "p", lambda r: None)
        assert not pipeline.pool_started()
        pipeline.register(Op.JOB_SUBMIT, lambda m, p: None, blocking=True)
        sink = _Sink()
        pipeline.register(
            Op.STATUS_QUERY,
            lambda m, p: m.reply(Op.STATUS_REPORT, {}),
            blocking=True,
        )
        pipeline.dispatch(_message(op=Op.STATUS_QUERY), "p", sink)
        assert sink.arrived.wait(timeout=5.0)
        assert pipeline.pool_started()

    def test_handler_fault_becomes_error_reply(self, pipeline):
        def explode(message, peer):
            raise RuntimeError("handler blew up")

        pipeline.register(Op.PING, explode)
        sink = _Sink()
        pipeline.dispatch(_message(), "p", sink)
        assert sink.arrived.wait(timeout=2.0)
        assert sink.replies[0].op == Op.ERROR
        assert "handler blew up" in sink.replies[0].body["error"]

    def test_none_reply_answers_nothing(self, pipeline):
        pipeline.register(Op.HELLO, lambda message, peer: None)
        sink = _Sink()
        pipeline.dispatch(_message(op=Op.HELLO), "p", sink)
        assert not sink.arrived.wait(timeout=0.1)

    def test_default_handler_catches_unknown_ops(self, pipeline):
        pipeline.set_default(
            lambda message, peer: message.reply(Op.ERROR, {"error": "unhandled"})
        )
        sink = _Sink()
        pipeline.dispatch(_message(op=Op.STATUS_QUERY), "p", sink)
        assert sink.arrived.wait(timeout=2.0)
        assert sink.replies[0].op == Op.ERROR

    def test_unregister_falls_back_to_default(self, pipeline):
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {}))
        pipeline.set_default(lambda m, p: m.reply(Op.ERROR, {"error": "gone"}))
        pipeline.unregister(Op.PING)
        sink = _Sink()
        pipeline.dispatch(_message(), "p", sink)
        assert sink.arrived.wait(timeout=2.0)
        assert sink.replies[0].op == Op.ERROR

    def test_respond_failure_is_swallowed(self, pipeline):
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {}))

        def broken_sink(reply):
            raise OSError("peer vanished")

        pipeline.dispatch(_message(), "p", broken_sink)  # must not raise

    def test_busy_inline_reply_retries_off_loop(self, pipeline, monkeypatch):
        """A respond that fails on the event-loop thread is retried once
        from the worker pool (regression: a TunnelBusy on an inline
        reply was silently dropped, costing the requester its full
        timeout — fatal for non-idempotent ops, which never retry)."""
        from repro.core import dispatch as dispatch_mod

        loop_ident = threading.get_ident()
        monkeypatch.setattr(
            dispatch_mod,
            "on_reactor_thread",
            lambda: threading.get_ident() == loop_ident,
        )
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {}))
        delivered = _Sink()
        attempts = []

        def contended_sink(reply):
            attempts.append(threading.get_ident())
            if threading.get_ident() == loop_ident:
                raise OSError("send refused: channel busy on event-loop thread")
            delivered(reply)

        pipeline.dispatch(_message(), "p", contended_sink)
        assert delivered.arrived.wait(timeout=5.0)
        assert len(attempts) == 2
        assert attempts[1] != loop_ident  # the retry ran off-loop
        assert delivered.replies[0].op == Op.PONG

    def test_off_loop_respond_failure_is_not_requeued(self, pipeline, monkeypatch):
        """Failures on worker threads (where sends already block) keep
        the old swallow-and-drop semantics — no retry storm."""
        from repro.core import dispatch as dispatch_mod

        monkeypatch.setattr(dispatch_mod, "on_reactor_thread", lambda: False)
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {}))
        attempts = []

        def broken_sink(reply):
            attempts.append(reply)
            raise OSError("peer vanished")

        pipeline.dispatch(_message(), "p", broken_sink)  # must not raise
        assert len(attempts) == 1


# ---------------------------------------------------------------------------
# Stage 2: guards (the authorize stage)
# ---------------------------------------------------------------------------


class TestGuards:
    def test_guard_pass_through(self, pipeline):
        pipeline.add_guard(lambda message, peer: None)
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {}))
        sink = _Sink()
        pipeline.dispatch(_message(), "p", sink)
        assert sink.arrived.wait(timeout=2.0)
        assert sink.replies[0].op == Op.PONG

    def test_guard_veto_with_reply(self, pipeline):
        pipeline.add_guard(
            lambda message, peer: message.reply(Op.AUTH_DENIED, {"reason": "no"})
        )
        ran = []
        pipeline.register(Op.PING, lambda m, p: ran.append(1))
        sink = _Sink()
        pipeline.dispatch(_message(), "p", sink)
        assert sink.arrived.wait(timeout=2.0)
        assert sink.replies[0].op == Op.AUTH_DENIED
        assert not ran

    def test_guard_drop_is_silent(self, pipeline):
        pipeline.add_guard(lambda message, peer: DROP)
        ran = []
        pipeline.register(Op.PING, lambda m, p: ran.append(1))
        sink = _Sink()
        pipeline.dispatch(_message(), "p", sink)
        assert not sink.arrived.wait(timeout=0.1)
        assert not ran

    def test_guard_exception_becomes_error_reply(self, pipeline):
        def angry(message, peer):
            raise PermissionError("forbidden")

        pipeline.add_guard(angry)
        sink = _Sink()
        pipeline.dispatch(_message(), "p", sink)
        assert sink.arrived.wait(timeout=2.0)
        assert sink.replies[0].op == Op.ERROR
        assert "forbidden" in sink.replies[0].body["error"]


# ---------------------------------------------------------------------------
# Extension overrides
# ---------------------------------------------------------------------------


class TestOverrides:
    def test_override_beats_builtin_and_runs_on_pool(self, pipeline):
        pipeline.register(Op.STATUS_QUERY, lambda m, p: m.reply(Op.STATUS_REPORT, {}))
        names = []
        sink = _Sink()
        pipeline.overrides[Op.STATUS_QUERY] = lambda message, peer: (
            names.append(threading.current_thread().name),
            message.reply(Op.STATUS_REPORT, {"status": "overridden"}),
        )[1]
        pipeline.dispatch(_message(op=Op.STATUS_QUERY), "p", sink)
        assert sink.arrived.wait(timeout=5.0)
        assert sink.replies[0].body == {"status": "overridden"}
        assert names[0].startswith("test-dispatch-worker")

    def test_removed_override_restores_builtin(self, pipeline):
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {"builtin": True}))
        pipeline.overrides[Op.PING] = lambda m, p: m.reply(Op.PONG, {"builtin": False})
        del pipeline.overrides[Op.PING]
        sink = _Sink()
        pipeline.dispatch(_message(), "p", sink)
        assert sink.arrived.wait(timeout=2.0)
        assert sink.replies[0].body == {"builtin": True}


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


class TestClose:
    def test_closed_pipeline_drops_dispatch(self, pipeline):
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {}))
        pipeline.close()
        sink = _Sink()
        pipeline.dispatch(_message(), "p", sink)
        assert not sink.arrived.wait(timeout=0.1)

    def test_close_is_idempotent(self, pipeline):
        pipeline.close()
        pipeline.close()

    def test_close_joins_pool(self, pipeline):
        started = threading.Event()
        release = threading.Event()

        def slow(message, peer):
            started.set()
            release.wait(timeout=5.0)

        pipeline.register(Op.PING, slow, blocking=True)
        pipeline.dispatch(_message(), "p", lambda r: None)
        assert started.wait(timeout=5.0)
        release.set()
        pipeline.close()
        assert not pipeline.pool_started()

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            DispatchPipeline(workers=0)


# ---------------------------------------------------------------------------
# Batch dispatch: reply group commit
# ---------------------------------------------------------------------------


class TestDispatchBatch:
    def test_inline_replies_group_commit(self, pipeline):
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {"n": m.body["n"]}))
        messages = [_message(body={"n": i}) for i in range(5)]
        singles, bursts = [], []
        pipeline.dispatch_batch(
            messages, "peer", singles.append, respond_many=bursts.append
        )
        # All five inline replies leave in ONE burst, none singly.
        assert singles == []
        assert len(bursts) == 1
        assert [r.body["n"] for r in bursts[0]] == [0, 1, 2, 3, 4]
        assert [r.reply_to for r in bursts[0]] == [m.message_id for m in messages]

    def test_single_message_skips_group_commit(self, pipeline):
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {}))
        singles, bursts = [], []
        pipeline.dispatch_batch(
            [_message()], "peer", singles.append, respond_many=bursts.append
        )
        assert bursts == [] and len(singles) == 1

    def test_without_respond_many_behaves_like_dispatch(self, pipeline):
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {}))
        singles = []
        pipeline.dispatch_batch([_message(), _message()], "peer", singles.append)
        assert len(singles) == 2

    def test_single_inline_reply_in_batch_responds_singly(self, pipeline):
        # Two requests, only one yields a reply: no burst for a batch of 1.
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {}))
        pipeline.register(Op.BYE, lambda m, p: None)
        singles, bursts = [], []
        pipeline.dispatch_batch(
            [_message(), _message(op=Op.BYE)], "peer",
            singles.append, respond_many=bursts.append,
        )
        assert bursts == [] and len(singles) == 1

    def test_blocking_handler_replies_singly_after_window(self, pipeline):
        release = threading.Event()
        done = threading.Event()

        def slow(m, p):
            release.wait(timeout=5.0)
            return m.reply(Op.PONG, {"slow": True})

        pipeline.register(Op.PING, slow, blocking=True)
        pipeline.register(Op.STATUS_QUERY, lambda m, p: m.reply(Op.STATUS_REPORT, {}))
        singles, bursts = [], []

        def single(reply):
            singles.append(reply)
            done.set()

        pipeline.dispatch_batch(
            [_message(), _message(op=Op.STATUS_QUERY), _message(op=Op.STATUS_QUERY)],
            "peer", single, respond_many=bursts.append,
        )
        # The two inline replies group-committed while the slow one was
        # still on the pool; its late reply goes out singly.
        assert len(bursts) == 1 and len(bursts[0]) == 2
        release.set()
        assert done.wait(timeout=5.0)
        assert singles[0].body == {"slow": True}

    def test_burst_failure_falls_back_per_reply(self, pipeline):
        pipeline.register(Op.PING, lambda m, p: m.reply(Op.PONG, {}))
        singles = []

        def broken_many(batch):
            raise OSError("vectored send failed")

        pipeline.dispatch_batch(
            [_message(), _message()], "peer",
            singles.append, respond_many=broken_many,
        )
        assert len(singles) == 2  # no reply lost

"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simulation.engine import (
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(5.0)
        seen.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [5.0]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.spawn(proc(sim, "late", 3.0))
    sim.spawn(proc(sim, "early", 1.0))
    sim.spawn(proc(sim, "mid", 2.0))
    sim.run()
    assert order == ["early", "mid", "late"]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in ["a", "b", "c"]:
        sim.spawn(proc(sim, name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100.0)

    sim.spawn(proc(sim))
    end = sim.run(until=10.0)
    assert end == 10.0
    assert sim.now == 10.0


def test_run_until_beyond_last_event_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    sim.spawn(proc(sim))
    end = sim.run(until=50.0)
    assert end == 50.0


def test_process_return_value_delivered_to_waiter():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(1.0)
        return 42

    def parent(sim):
        value = yield sim.spawn(child(sim))
        results.append(value)

    sim.spawn(parent(sim))
    sim.run()
    assert results == [42]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent(sim):
        try:
            yield sim.spawn(child(sim))
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(parent(sim))
    sim.run()
    assert caught == ["boom"]


def test_unwaited_process_crash_surfaces():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("unobserved")

    sim.spawn(child(sim))
    with pytest.raises(RuntimeError, match="unobserved"):
        sim.run()


def test_event_succeed_wakes_waiters():
    sim = Simulator()
    seen = []
    gate = None

    def opener(sim):
        yield sim.timeout(2.0)
        gate.succeed("opened")

    def waiter(sim):
        value = yield gate
        seen.append((sim.now, value))

    gate = sim.event()
    sim.spawn(waiter(sim))
    sim.spawn(opener(sim))
    sim.run()
    assert seen == [(2.0, "opened")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    caught = []
    gate = None

    def failer(sim):
        yield sim.timeout(1.0)
        gate.fail(OSError("down"))

    def waiter(sim):
        try:
            yield gate
        except OSError as exc:
            caught.append(str(exc))

    gate = sim.event()
    sim.spawn(waiter(sim))
    sim.spawn(failer(sim))
    sim.run()
    assert caught == ["down"]


def test_waiting_on_already_triggered_event():
    sim = Simulator()
    seen = []
    event = sim.event()
    event.succeed("ready")

    def proc(sim):
        value = yield event
        seen.append(value)

    sim.spawn(proc(sim))
    sim.run()
    assert seen == ["ready"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_interrupt_raises_in_process():
    sim = Simulator()
    record = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            record.append("finished")
        except Interrupt as intr:
            record.append(("interrupted", sim.now, intr.cause))

    def killer(sim, victim):
        yield sim.timeout(3.0)
        victim.interrupt("site failure")

    victim = sim.spawn(sleeper(sim))
    sim.spawn(killer(sim, victim))
    sim.run()
    assert record == [("interrupted", 3.0, "site failure")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def short(sim):
        yield sim.timeout(1.0)

    proc = sim.spawn(short(sim))
    sim.run()
    assert not proc.alive
    proc.interrupt("too late")  # must not raise
    sim.run()


def test_queue_fifo_order():
    sim = Simulator()
    got = []

    def producer(sim, queue):
        for i in range(3):
            queue.put(i)
            yield sim.timeout(1.0)

    def consumer(sim, queue):
        for _ in range(3):
            item = yield queue.get()
            got.append((sim.now, item))

    queue = sim.queue()
    sim.spawn(producer(sim, queue))
    sim.spawn(consumer(sim, queue))
    sim.run()
    assert [item for _, item in got] == [0, 1, 2]


def test_queue_get_blocks_until_put():
    sim = Simulator()
    got = []

    def consumer(sim, queue):
        item = yield queue.get()
        got.append((sim.now, item))

    def producer(sim, queue):
        yield sim.timeout(7.0)
        queue.put("x")

    queue = sim.queue()
    sim.spawn(consumer(sim, queue))
    sim.spawn(producer(sim, queue))
    sim.run()
    assert got == [(7.0, "x")]


def test_queue_len_counts_buffered_items():
    sim = Simulator()
    queue = sim.queue()
    queue.put(1)
    queue.put(2)
    assert len(queue) == 2


def test_any_of_triggers_on_first():
    sim = Simulator()
    seen = []

    def proc(sim):
        winner, value = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(2.0, "fast")])
        seen.append((sim.now, value))

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [(2.0, "fast")]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    seen = []

    def proc(sim):
        values = yield sim.all_of([sim.timeout(5.0, "a"), sim.timeout(2.0, "b")])
        seen.append((sim.now, sorted(values)))

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [(5.0, ["a", "b"])]


def test_yielding_non_event_fails_process():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield 42

    def parent(sim):
        try:
            yield sim.spawn(bad(sim))
        except SimulationError as exc:
            caught.append(str(exc))

    sim.spawn(parent(sim))
    sim.run()
    assert len(caught) == 1
    assert "non-event" in caught[0]


def test_cross_simulator_event_rejected():
    sim1 = Simulator()
    sim2 = Simulator()
    caught = []
    foreign = sim2.event()

    def bad(sim):
        yield foreign

    def parent(sim):
        try:
            yield sim.spawn(bad(sim))
        except SimulationError as exc:
            caught.append(str(exc))

    sim1.spawn(parent(sim1))
    sim1.run()
    assert len(caught) == 1
    assert "another simulator" in caught[0]


def test_nested_spawn_chain():
    sim = Simulator()
    results = []

    def level(sim, depth):
        if depth == 0:
            yield sim.timeout(1.0)
            return 1
        below = yield sim.spawn(level(sim, depth - 1))
        return below + 1

    def root(sim):
        total = yield sim.spawn(level(sim, 10))
        results.append((sim.now, total))

    sim.spawn(root(sim))
    sim.run()
    assert results == [(1.0, 11)]

"""Unit tests for the inter-proxy control protocol."""

import threading

import pytest

from repro.core.protocol import (
    ControlMessage,
    Op,
    ProtocolError,
    RequestTracker,
    register_op,
)
from repro.transport.frames import Frame, FrameKind


class TestOpRegistry:
    def test_core_ops_known(self):
        for code in [Op.HELLO, Op.PING, Op.STATUS_QUERY, Op.JOB_SUBMIT, Op.MPI_START]:
            assert Op.is_known(code)

    def test_name_of(self):
        assert Op.name_of(Op.PING) == "PING"
        assert Op.name_of(424242) == "op:424242"

    def test_register_extension_op(self):
        code = register_op("TEST_CUSTOM_OP_A")
        assert code >= 1000
        assert Op.is_known(code)
        assert Op.name_of(code) == "TEST_CUSTOM_OP_A"

    def test_register_explicit_code(self):
        code = register_op("TEST_CUSTOM_OP_B", code=55555)
        assert code == 55555

    def test_duplicate_code_rejected(self):
        with pytest.raises(ProtocolError):
            register_op("CLASH", code=Op.PING)

    def test_empty_name_rejected(self):
        with pytest.raises(ProtocolError):
            register_op("")

    def test_extension_op_usable_in_messages(self):
        code = register_op("TEST_CUSTOM_OP_C")
        message = ControlMessage(op=code, body={"x": 1})
        restored = ControlMessage.from_frame(message.to_frame())
        assert restored.op == code


class TestControlMessage:
    def test_frame_round_trip(self):
        message = ControlMessage(op=Op.JOB_SUBMIT, body={"task": "noop"}, sender="p1")
        restored = ControlMessage.from_frame(message.to_frame())
        assert restored.op == Op.JOB_SUBMIT
        assert restored.body == {"task": "noop"}
        assert restored.sender == "p1"
        assert restored.message_id == message.message_id
        assert not restored.is_reply()

    def test_reply_correlation(self):
        request = ControlMessage(op=Op.PING)
        reply = request.reply(Op.PONG, {"ok": True})
        assert reply.reply_to == request.message_id
        assert reply.is_reply()
        restored = ControlMessage.from_frame(reply.to_frame())
        assert restored.reply_to == request.message_id

    def test_unique_message_ids(self):
        ids = {ControlMessage(op=Op.PING).message_id for _ in range(100)}
        assert len(ids) == 100

    def test_unknown_op_rejected_on_send(self):
        message = ControlMessage(op=123456789)
        with pytest.raises(ProtocolError):
            message.to_frame()

    def test_non_control_frame_rejected(self):
        frame = Frame(kind=FrameKind.DATA)
        with pytest.raises(ProtocolError):
            ControlMessage.from_frame(frame)

    def test_missing_headers_rejected(self):
        frame = Frame(kind=FrameKind.CONTROL, headers={"op": Op.PING})
        with pytest.raises(ProtocolError, match="missing"):
            ControlMessage.from_frame(frame)

    def test_unknown_wire_op_rejected(self):
        frame = Frame(
            kind=FrameKind.CONTROL,
            headers={"op": 98765432, "id": 1},
            payload=b"\x08\x00\x00\x00\x00",  # empty dict
        )
        with pytest.raises(ProtocolError, match="unknown op"):
            ControlMessage.from_frame(frame)

    def test_non_dict_body_rejected(self):
        from repro.transport.frames import encode_value

        frame = Frame(
            kind=FrameKind.CONTROL,
            headers={"op": Op.PING, "id": 1},
            payload=encode_value([1, 2]),
        )
        with pytest.raises(ProtocolError, match="not a dict"):
            ControlMessage.from_frame(frame)


class TestRequestTracker:
    def test_fulfil_and_wait(self):
        tracker = RequestTracker()
        request = ControlMessage(op=Op.PING)
        tracker.expect(request)
        reply = request.reply(Op.PONG, {"n": 1})
        assert tracker.fulfil(reply)
        got = tracker.wait(request.message_id, timeout=1.0)
        assert got.op == Op.PONG
        assert got.body == {"n": 1}

    def test_wait_blocks_until_fulfilled(self):
        tracker = RequestTracker()
        request = ControlMessage(op=Op.PING)
        tracker.expect(request)

        def later():
            tracker.fulfil(request.reply(Op.PONG))

        timer = threading.Timer(0.05, later)
        timer.start()
        got = tracker.wait(request.message_id, timeout=5.0)
        assert got.op == Op.PONG

    def test_timeout(self):
        tracker = RequestTracker()
        request = ControlMessage(op=Op.PING)
        tracker.expect(request)
        with pytest.raises(ProtocolError, match="timed out"):
            tracker.wait(request.message_id, timeout=0.01)

    def test_unexpected_reply_ignored(self):
        tracker = RequestTracker()
        stray = ControlMessage(op=Op.PONG, reply_to=999999)
        assert not tracker.fulfil(stray)

    def test_non_reply_ignored(self):
        tracker = RequestTracker()
        assert not tracker.fulfil(ControlMessage(op=Op.PING))

    def test_wait_without_expect_rejected(self):
        tracker = RequestTracker()
        with pytest.raises(ProtocolError, match="no outstanding"):
            tracker.wait(12345, timeout=0.1)

    def test_cancel_all_wakes_waiters_with_error(self):
        tracker = RequestTracker()
        request = ControlMessage(op=Op.PING)
        tracker.expect(request)
        tracker.cancel_all("link down")
        reply = tracker.wait(request.message_id, timeout=1.0)
        assert reply.op == Op.ERROR
        assert reply.body["error"] == "link down"

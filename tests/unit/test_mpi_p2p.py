"""Unit tests for minimpi point-to-point messaging and the launcher."""

import pytest

from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, MpiError
from repro.mpi.launcher import mpirun, round_robin_placement
from repro.mpi.router import Endpoint, LocalRouter, RouterError
from repro.mpi.datatypes import Envelope


class TestEndpoint:
    def make_envelope(self, source=0, tag=0, payload="x"):
        return Envelope(source=source, dest=1, tag=tag, payload=payload)

    def test_deliver_then_match(self):
        ep = Endpoint(1)
        ep.deliver(self.make_envelope(payload="hello"))
        assert ep.match(0, 0, timeout=1.0).payload == "hello"

    def test_match_by_source(self):
        ep = Endpoint(1)
        ep.deliver(self.make_envelope(source=2, payload="from2"))
        ep.deliver(self.make_envelope(source=3, payload="from3"))
        assert ep.match(3, -1, timeout=1.0).payload == "from3"
        assert ep.match(2, -1, timeout=1.0).payload == "from2"

    def test_match_by_tag(self):
        ep = Endpoint(1)
        ep.deliver(self.make_envelope(tag=5, payload="five"))
        ep.deliver(self.make_envelope(tag=7, payload="seven"))
        assert ep.match(-1, 7, timeout=1.0).payload == "seven"

    def test_wildcard_takes_first(self):
        ep = Endpoint(1)
        ep.deliver(self.make_envelope(source=4, tag=1, payload="first"))
        ep.deliver(self.make_envelope(source=5, tag=2, payload="second"))
        assert ep.match(-1, -1, timeout=1.0).payload == "first"

    def test_match_timeout(self):
        ep = Endpoint(1)
        with pytest.raises(TimeoutError):
            ep.match(0, 0, timeout=0.01)

    def test_peek_is_nondestructive(self):
        ep = Endpoint(1)
        ep.deliver(self.make_envelope(payload="stay"))
        assert ep.peek(0, 0).payload == "stay"
        assert ep.pending_count() == 1

    def test_closed_endpoint_raises(self):
        ep = Endpoint(1)
        ep.close()
        with pytest.raises(RouterError):
            ep.deliver(self.make_envelope())
        with pytest.raises(RouterError):
            ep.match(0, 0, timeout=1.0)

    def test_fifo_within_source_and_tag(self):
        ep = Endpoint(1)
        for i in range(5):
            ep.deliver(self.make_envelope(payload=i))
        got = [ep.match(0, 0, timeout=1.0).payload for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]


class TestLocalRouter:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LocalRouter(0)

    def test_route_to_unknown_rank(self):
        router = LocalRouter(2)
        with pytest.raises(RouterError):
            router.send(Envelope(source=0, dest=5, tag=0, payload=None))

    def test_on_send_hook_sees_traffic(self):
        router = LocalRouter(2)
        seen = []
        router.on_send = seen.append
        router.send(Envelope(source=0, dest=1, tag=0, payload="x"))
        assert len(seen) == 1
        assert seen[0].payload == "x"

    def test_endpoint_bounds(self):
        router = LocalRouter(2)
        with pytest.raises(RouterError):
            router.endpoint(2)


class TestPointToPoint:
    def test_ping_pong(self):
        def app(comm):
            if comm.rank == 0:
                comm.send("ping", dest=1)
                return comm.recv(source=1)
            message = comm.recv(source=0)
            comm.send(message + "-pong", dest=0)
            return message

        result = mpirun(app, 2, timeout=10.0)
        assert result.ok
        assert result.returns == ["ping-pong", "ping"]

    def test_tags_separate_streams(self):
        def app(comm):
            if comm.rank == 0:
                comm.send("urgent", dest=1, tag=9)
                comm.send("normal", dest=1, tag=1)
                return None
            # Receive in reverse send order using tags.
            normal = comm.recv(source=0, tag=1, timeout=10.0)
            urgent = comm.recv(source=0, tag=9, timeout=10.0)
            return (urgent, normal)

        result = mpirun(app, 2, timeout=10.0)
        assert result.returns[1] == ("urgent", "normal")

    def test_any_source_any_tag(self):
        def app(comm):
            if comm.rank == 0:
                got = [comm.recv(source=ANY_SOURCE, tag=ANY_TAG, timeout=10.0)
                       for _ in range(comm.size - 1)]
                return sorted(got)
            comm.send(comm.rank * 10, dest=0, tag=comm.rank)
            return None

        result = mpirun(app, 4, timeout=10.0)
        assert result.returns[0] == [10, 20, 30]

    def test_recv_with_status(self):
        def app(comm):
            if comm.rank == 0:
                comm.send("data", dest=1, tag=3)
                return None
            payload, status = comm.recv(with_status=True, timeout=10.0)
            return (payload, status.source, status.tag)

        result = mpirun(app, 2, timeout=10.0)
        assert result.returns[1] == ("data", 0, 3)

    def test_sendrecv_pairwise_exchange(self):
        def app(comm):
            partner = 1 - comm.rank
            return comm.sendrecv(f"from{comm.rank}", dest=partner, source=partner,
                                 timeout=10.0)

        result = mpirun(app, 2, timeout=10.0)
        assert result.returns == ["from1", "from0"]

    def test_isend_irecv(self):
        def app(comm):
            if comm.rank == 0:
                request = comm.isend({"k": 1}, dest=1)
                request.wait(timeout=10.0)
                return None
            request = comm.irecv(source=0)
            return request.wait(timeout=10.0)

        result = mpirun(app, 2, timeout=10.0)
        assert result.returns[1] == {"k": 1}

    def test_probe(self):
        def app(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=2)
                comm.send("done", dest=1, tag=0)
                return None
            comm.recv(source=0, tag=0, timeout=10.0)  # wait until both arrived
            status = comm.probe(tag=2)
            value = comm.recv(source=0, tag=2, timeout=10.0)
            return (status is not None, status.tag, value)

        result = mpirun(app, 2, timeout=10.0)
        assert result.returns[1] == (True, 2, "x")

    def test_probe_empty_returns_none(self):
        def app(comm):
            return comm.probe()

        result = mpirun(app, 1, timeout=10.0)
        assert result.returns[0] is None

    def test_invalid_peer_rejected(self):
        def app(comm):
            comm.send("x", dest=99)

        result = mpirun(app, 2, timeout=10.0)
        assert isinstance(result.errors[0], MpiError)
        assert isinstance(result.errors[1], MpiError)

    def test_negative_user_tag_rejected(self):
        def app(comm):
            comm.send("x", dest=0, tag=-5)

        result = mpirun(app, 1, timeout=10.0)
        assert isinstance(result.errors[0], MpiError)

    def test_traffic_accounting(self):
        def app(comm):
            if comm.rank == 0:
                comm.send("payload", dest=1)
                return (comm.messages_sent, comm.bytes_sent)
            comm.recv(source=0, timeout=10.0)
            return (comm.messages_sent, comm.bytes_sent)

        result = mpirun(app, 2, timeout=10.0)
        assert result.returns[0][0] == 1
        assert result.returns[0][1] > 0
        assert result.returns[1] == (0, 0)


class TestLauncher:
    def test_round_robin_placement(self):
        assert round_robin_placement(5, ["a", "b"]) == ["a", "b", "a", "b", "a"]

    def test_round_robin_empty_hosts(self):
        with pytest.raises(ValueError):
            round_robin_placement(3, [])

    def test_placement_recorded_in_result(self):
        result = mpirun(lambda comm: comm.rank, 4, hosts=["h0", "h1"], timeout=10.0)
        assert result.placement == ["h0", "h1", "h0", "h1"]

    def test_single_rank(self):
        result = mpirun(lambda comm: comm.size, 1, timeout=10.0)
        assert result.returns == [1]

    def test_nprocs_validation(self):
        with pytest.raises(ValueError):
            mpirun(lambda comm: None, 0)

    def test_app_exception_captured_not_fatal(self):
        def app(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 died")
            return "survived"

        result = mpirun(app, 3, timeout=10.0)
        assert not result.ok
        assert result.returns[0] == "survived"
        assert isinstance(result.errors[1], RuntimeError)
        with pytest.raises(RuntimeError, match="rank 1 died"):
            result.raise_first()

    def test_extra_args_passed(self):
        result = mpirun(lambda comm, x, y: x + y, 2, args=(3, 4), timeout=10.0)
        assert result.returns == [7, 7]

    def test_deadlock_detection(self):
        def app(comm):
            # Every rank waits for a message nobody sends.
            comm.recv(source=comm.rank, tag=0)

        with pytest.raises(TimeoutError, match="did not finish"):
            mpirun(app, 2, timeout=0.3)

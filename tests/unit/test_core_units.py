"""Unit tests for tunnel, virtual slaves, directory, site and multiplexer."""

import threading
import time

import pytest

from repro.core.routing import DirectoryError, GridDirectory
from repro.core.site import Site, SiteNode, TaskRegistry
from repro.core.tunnel import Tunnel, TunnelError
from repro.core.virtual_slave import AppSpace, VirtualSlave
from repro.security.ca import CertificationAuthority
from repro.security.rsa import RsaKeyPair
from repro.transport.frames import Frame, FrameKind
from repro.transport.inproc import channel_pair

KEY_BITS = 512


@pytest.fixture(scope="module")
def pki():
    clock = time.time
    ca = CertificationAuthority(key_bits=KEY_BITS, clock=clock)
    key_a = RsaKeyPair.generate(KEY_BITS)
    key_b = RsaKeyPair.generate(KEY_BITS)
    return {
        "ca": ca,
        "clock": clock,
        "a": (key_a, ca.issue("proxy.A", "proxy", key_a.public)),
        "b": (key_b, ca.issue("proxy.B", "proxy", key_b.public)),
    }


def make_tunnel_pair(pki):
    raw_a, raw_b = channel_pair("tunnel")
    result = {}

    def server():
        key, cert = pki["b"]
        result["b"] = Tunnel.establish_server(
            raw_b, "proxy.B", key, cert, pki["ca"].public_key, pki["clock"]
        )

    thread = threading.Thread(target=server)
    thread.start()
    key, cert = pki["a"]
    tunnel_a = Tunnel.establish_client(
        raw_a, "proxy.A", key, cert, pki["ca"].public_key, pki["clock"]
    )
    thread.join(timeout=10.0)
    return tunnel_a, result["b"]


class TestTunnel:
    def test_establish_and_identify(self, pki):
        a, b = make_tunnel_pair(pki)
        assert a.peer_name == "proxy.B"
        assert b.peer_name == "proxy.A"
        a.close()
        b.close()

    def test_demultiplexes_by_kind(self, pki):
        a, b = make_tunnel_pair(pki)
        control, mpi = [], []
        got = threading.Event()
        b.on_frame(FrameKind.CONTROL, lambda f: control.append(f))

        def on_mpi(frame):
            mpi.append(frame)
            got.set()

        b.on_frame(FrameKind.MPI, on_mpi)
        b.start()
        a.send(Frame(kind=FrameKind.CONTROL, headers={"seq": 1}))
        a.send(Frame(kind=FrameKind.MPI, headers={"seq": 2}))
        assert got.wait(timeout=5.0)
        assert control[0].headers == {"seq": 1}
        assert mpi[0].headers == {"seq": 2}
        a.close()
        b.close()

    def test_unhandled_kind_dropped(self, pki):
        a, b = make_tunnel_pair(pki)
        seen = threading.Event()
        b.on_frame(FrameKind.CONTROL, lambda f: seen.set())
        b.start()
        a.send(Frame(kind=FrameKind.HEARTBEAT))  # no handler: dropped
        a.send(Frame(kind=FrameKind.CONTROL))
        assert seen.wait(timeout=5.0)
        a.close()
        b.close()

    def test_close_fires_callbacks(self, pki):
        a, b = make_tunnel_pair(pki)
        lost = threading.Event()
        b.on_close(lambda t: lost.set())
        b.start()
        a.close()
        assert lost.wait(timeout=5.0)
        assert not b.alive
        b.close()

    def test_send_on_dead_tunnel_raises(self, pki):
        a, b = make_tunnel_pair(pki)
        b.start()
        a.start()
        b.close()
        time.sleep(0.05)
        with pytest.raises(TunnelError):
            for _ in range(100):  # close propagation may take one send
                a.send(Frame(kind=FrameKind.CONTROL))
                time.sleep(0.01)
        a.close()

    def test_handshake_failure_with_wrong_ca(self, pki):
        rogue = CertificationAuthority(key_bits=KEY_BITS, clock=pki["clock"])
        key = RsaKeyPair.generate(KEY_BITS)
        cert = rogue.issue("proxy.evil", "proxy", key.public)
        raw_a, raw_b = channel_pair("bad")

        def server():
            try:
                key_b, cert_b = pki["b"]
                Tunnel.establish_server(
                    raw_b, "proxy.B", key_b, cert_b, pki["ca"].public_key, pki["clock"]
                )
            except TunnelError:
                pass

        thread = threading.Thread(target=server)
        thread.start()
        with pytest.raises(TunnelError):
            Tunnel.establish_client(
                raw_a, "proxy.evil", key, cert, rogue.public_key, pki["clock"]
            )
        thread.join(timeout=10.0)

    def test_peer_certificate_exposed(self, pki):
        a, b = make_tunnel_pair(pki)
        assert a.peer_certificate.subject == "proxy.B"
        assert b.peer_certificate.subject == "proxy.A"
        a.close()
        b.close()

    def test_negotiates_fast_cipher_suite(self, pki):
        # Two post-fast-path peers agree on the best suite in CIPHER_SUITES.
        a, b = make_tunnel_pair(pki)
        assert a.cipher_suite == "shake128"
        assert b.cipher_suite == "shake128"
        a.close()
        b.close()

    def test_legacy_peer_falls_back_to_compatible_suite(self, pki, monkeypatch):
        # A pre-fast-path client sends no "ciphers" offer; the server must
        # select the seed-compatible suite and still interoperate.
        from repro.security import handshake as hs

        original = hs._hs_frame

        def strip_offer(step, body):
            if step == "hello":
                body = {k: v for k, v in body.items() if k != "ciphers"}
            return original(step, body)

        monkeypatch.setattr(hs, "_hs_frame", strip_offer)
        a, b = make_tunnel_pair(pki)
        assert a.cipher_suite == "sha256ctr"
        assert b.cipher_suite == "sha256ctr"
        got = threading.Event()
        seen = []
        b.on_frame(FrameKind.CONTROL, lambda f: (seen.append(f), got.set()))
        b.start()
        a.send(Frame(kind=FrameKind.CONTROL, headers={"legacy": True}))
        assert got.wait(timeout=5.0)
        assert seen[0].headers == {"legacy": True}
        a.close()
        b.close()

    def test_send_many_delivers_batch_in_order(self, pki):
        a, b = make_tunnel_pair(pki)
        seen = []
        done = threading.Event()

        def on_mpi(frame):
            seen.append(frame.headers["seq"])
            if len(seen) == 40:
                done.set()

        b.on_frame(FrameKind.MPI, on_mpi)
        b.start()
        a.send_many(
            Frame(kind=FrameKind.MPI, headers={"seq": i}, payload=b"p" * i)
            for i in range(40)
        )
        assert done.wait(timeout=5.0)
        assert seen == list(range(40))
        assert a.stats.frames_sent == 40
        a.close()
        b.close()

    def test_send_many_on_dead_tunnel_raises(self, pki):
        a, b = make_tunnel_pair(pki)
        b.close()
        time.sleep(0.05)
        with pytest.raises(TunnelError):
            for _ in range(100):  # close propagation may take one send
                a.send_many([Frame(kind=FrameKind.CONTROL)])
                time.sleep(0.01)
        a.close()

    def test_loop_thread_send_fails_fast_on_lock_contention(self, pki):
        """A reactor loop thread must never block on a tunnel's send lock
        (a worker holding it under backpressure would stall the only
        flusher for every channel on that loop): it gets TunnelBusy."""
        from repro.core.tunnel import TunnelBusy
        from repro.transport.reactor import Reactor

        a, b = make_tunnel_pair(pki)
        reactor = Reactor(loops=1, name="lock-test").start()
        outcome = {}
        done = threading.Event()

        def loop_send():
            try:
                a.send(Frame(kind=FrameKind.HEARTBEAT))
                outcome["result"] = "sent"
            except TunnelBusy:
                outcome["result"] = "busy"
            except Exception as exc:  # pragma: no cover - diagnostic
                outcome["result"] = repr(exc)
            done.set()

        try:
            with a._send_lock:  # a worker mid-send under backpressure
                reactor.call_later(0.0, loop_send)
                assert done.wait(timeout=5.0)
            assert outcome["result"] == "busy"
            assert a.alive  # congestion, not failure
            a.send(Frame(kind=FrameKind.CONTROL))  # uncontended: fine
        finally:
            a.close()
            b.close()
            reactor.stop()


class TestVirtualSlaves:
    def make_space(self):
        space = AppSpace(app_id="app1", site="A")
        space.populate(
            rank_to_site={0: "A", 1: "A", 2: "B", 3: "C"},
            rank_to_node={0: "A.n0", 1: "A.n1", 2: "B.n0", 3: "C.n0"},
            site_to_proxy={"A": "proxy.A", "B": "proxy.B", "C": "proxy.C"},
        )
        return space

    def test_local_and_remote_ranks(self):
        space = self.make_space()
        assert space.local_ranks == [0, 1]
        assert space.remote_ranks == [2, 3]
        assert space.size == 4

    def test_slaves_created_only_for_remote(self):
        space = self.make_space()
        assert set(space.slaves) == {2, 3}
        assert space.slave_for(0) is None
        assert space.slave_for(2).peer_proxy == "proxy.B"
        assert space.slave_for(3).real_node == "C.n0"

    def test_is_local(self):
        space = self.make_space()
        assert space.is_local(0)
        assert not space.is_local(2)
        with pytest.raises(KeyError):
            space.is_local(9)

    def test_accounting(self):
        space = self.make_space()
        space.slave_for(2).account(100)
        space.slave_for(2).account(50)
        space.slave_for(3).account(10)
        assert space.totals() == (3, 160)

    def test_mismatched_maps_rejected(self):
        space = AppSpace(app_id="x", site="A")
        with pytest.raises(ValueError):
            space.populate({0: "A"}, {1: "A.n0"}, {"A": "proxy.A"})

    def test_virtual_slave_dataclass(self):
        slave = VirtualSlave(app_id="a", rank=5, peer_proxy="p", real_node="n")
        slave.account(7)
        assert slave.forwarded_messages == 1
        assert slave.forwarded_bytes == 7


class TestGridDirectory:
    def make(self):
        d = GridDirectory()
        d.register_site("A", "proxy.A", "addr.A")
        d.register_site("B", "proxy.B", "addr.B")
        d.register_node("A.n0", "A")
        d.register_node("B.n0", "B")
        return d

    def test_resolution(self):
        d = self.make()
        assert d.proxy_of_site("A") == "proxy.A"
        assert d.address_of_proxy("proxy.B") == "addr.B"
        assert d.site_of_node("A.n0") == "A"
        assert d.sites() == ["A", "B"]
        assert d.nodes_of_site("B") == ["B.n0"]
        assert d.all_nodes() == ["A.n0", "B.n0"]

    def test_find_node_soft(self):
        d = self.make()
        assert d.find_node("A.n0") == "A"
        assert d.find_node("ghost") is None

    def test_duplicate_site_rejected(self):
        d = self.make()
        with pytest.raises(DirectoryError):
            d.register_site("A", "proxy.A2", "addr")

    def test_node_needs_known_site(self):
        d = self.make()
        with pytest.raises(DirectoryError):
            d.register_node("x", "nowhere")

    def test_duplicate_node_rejected(self):
        d = self.make()
        with pytest.raises(DirectoryError):
            d.register_node("A.n0", "B")

    def test_unknown_lookups_raise(self):
        d = self.make()
        with pytest.raises(DirectoryError):
            d.proxy_of_site("Z")
        with pytest.raises(DirectoryError):
            d.address_of_proxy("nope")
        with pytest.raises(DirectoryError):
            d.site_of_node("ghost")

    def test_unregister_site_removes_everything(self):
        d = self.make()
        d.unregister_site("A")
        assert d.sites() == ["B"]
        assert d.find_node("A.n0") is None
        with pytest.raises(DirectoryError):
            d.proxy_of_site("A")

    def test_multiple_proxies_per_site(self):
        d = self.make()
        d.register_extra_proxy("A", "proxy.A2", "addr.A2")
        assert d.proxies_of_site("A") == ["proxy.A", "proxy.A2"]
        assert d.address_of_proxy("proxy.A2") == "addr.A2"

    def test_extra_proxy_validation(self):
        d = self.make()
        with pytest.raises(DirectoryError):
            d.register_extra_proxy("Z", "p", "a")
        with pytest.raises(DirectoryError):
            d.register_extra_proxy("A", "proxy.B", "a")

    def test_site_to_proxy_map_is_copy(self):
        d = self.make()
        m = d.site_to_proxy_map()
        m["A"] = "tampered"
        assert d.proxy_of_site("A") == "proxy.A"


class TestSiteNode:
    def test_execute_registered_task(self):
        node = SiteNode("n0", "A")
        assert node.execute("echo", {"value": 7}) == 7
        assert node.tasks_completed == 1
        node.shutdown()

    def test_unknown_task_raises(self):
        node = SiteNode("n0", "A")
        with pytest.raises(KeyError):
            node.execute("launch_missiles")
        node.shutdown()

    def test_task_error_propagates(self):
        registry = TaskRegistry()
        registry.register("boom", lambda: 1 / 0)
        node = SiteNode("n0", "A", tasks=registry)
        with pytest.raises(ZeroDivisionError):
            node.execute("boom")
        node.shutdown()

    def test_failed_node_rejects_work(self):
        node = SiteNode("n0", "A")
        node.fail()
        assert not node.alive
        with pytest.raises(RuntimeError, match="down"):
            node.execute("noop")
        node.recover()
        node.execute("noop")
        node.shutdown()

    def test_status_snapshot(self):
        node = SiteNode("n0", "A", cpu_speed=2.0)
        status = node.status()
        assert status.node == "n0"
        assert status.cpu_speed == 2.0
        assert status.alive
        node.shutdown()

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            SiteNode("n0", "A", cpu_speed=0)

    def test_duplicate_task_kind_rejected(self):
        registry = TaskRegistry()
        registry.register("x", lambda: 1)
        with pytest.raises(ValueError):
            registry.register("x", lambda: 2)

    def test_serial_execution_on_one_worker(self):
        order = []
        registry = TaskRegistry()
        registry.register("mark", lambda n: order.append(n))
        node = SiteNode("n0", "A", tasks=registry)
        results = []
        threads = [
            threading.Thread(target=lambda i=i: node.execute("mark", {"n": i}))
            for i in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert sorted(order) == [0, 1, 2, 3, 4]
        node.shutdown()


class TestSite:
    def test_add_nodes_and_statuses(self):
        site = Site(name="A")
        site.add_node("A.n0")
        site.add_node("A.n1", cpu_speed=2.0)
        assert site.node_names() == ["A.n0", "A.n1"]
        statuses = site.statuses()
        assert [s.node for s in statuses] == ["A.n0", "A.n1"]
        site.shutdown()

    def test_duplicate_node_rejected(self):
        site = Site(name="A")
        site.add_node("A.n0")
        with pytest.raises(ValueError):
            site.add_node("A.n0")
        site.shutdown()

    def test_alive_nodes_excludes_failed(self):
        site = Site(name="A")
        site.add_node("A.n0")
        site.add_node("A.n1")
        site.nodes["A.n0"].fail()
        assert [n.name for n in site.alive_nodes()] == ["A.n1"]
        site.shutdown()

"""Edge-case tests for the simulation substrate and composite events."""

import pytest

from repro.simulation.engine import SimulationError, Simulator
from repro.simulation.network import Network
from repro.simulation.randomness import RandomStream
from repro.simulation.resources import NodeResources


class TestCompositeEvents:
    def test_all_of_propagates_failure(self):
        sim = Simulator()
        caught = []
        gate = sim.event()

        def failer(sim):
            yield sim.timeout(1.0)
            gate.fail(OSError("down"))

        def waiter(sim):
            try:
                yield sim.all_of([sim.timeout(5.0), gate])
            except OSError as exc:
                caught.append(str(exc))

        sim.spawn(waiter(sim))
        sim.spawn(failer(sim))
        sim.run()
        assert caught == ["down"]

    def test_any_of_with_pretriggered_event(self):
        sim = Simulator()
        seen = []
        ready = sim.event()
        ready.succeed("instant")

        def proc(sim):
            _winner, value = yield sim.any_of([ready, sim.timeout(10.0)])
            seen.append((sim.now, value))

        sim.spawn(proc(sim))
        sim.run()
        assert seen == [(0.0, "instant")]

    def test_any_of_requires_events(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.any_of([])

    def test_all_of_empty_succeeds_immediately(self):
        sim = Simulator()
        seen = []

        def proc(sim):
            values = yield sim.all_of([])
            seen.append(values)

        sim.spawn(proc(sim))
        sim.run()
        assert seen == [[]]

    def test_run_while_running_rejected(self):
        sim = Simulator()
        errors = []

        def proc(sim):
            yield sim.timeout(1.0)
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.spawn(proc(sim))
        sim.run()
        assert errors and "already running" in errors[0]

    def test_event_value_before_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_fail_requires_exception_instance(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")


class TestNetworkEdges:
    def test_packet_to_self_delivers_immediately(self):
        sim = Simulator()
        net = Network(sim)
        host = net.add_host("a")
        got = []
        host.on_packet(got.append)
        host.send("a", size=10, payload="loopback")
        sim.run()
        assert got[0].payload == "loopback"
        assert got[0].hops == 0

    def test_unattached_host_cannot_send(self):
        sim = Simulator()
        net = Network(sim)
        host = net.add_host("a")
        net.remove_host("a")
        with pytest.raises(RuntimeError, match="not attached"):
            host.send("a", size=1)

    def test_unknown_destination_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        with pytest.raises(KeyError):
            net.hosts["a"].send("ghost", size=1)

    def test_loss_rate_validation(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(ValueError):
            net.connect("a", "b", latency=0.0, bandwidth=1.0, loss_rate=1.0)

    def test_unidirectional_link(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", latency=0.001, bandwidth=1e6, bidirectional=False)
        assert net.reachable("a", "b")
        assert not net.reachable("b", "a")

    def test_destination_dies_in_flight(self):
        """A packet whose destination vanishes mid-route is dropped."""
        sim = Simulator()
        net = Network(sim)
        for name in ["a", "relay", "b"]:
            net.add_host(name)
        net.connect("a", "relay", latency=0.010, bandwidth=1e6)
        net.connect("relay", "b", latency=0.010, bandwidth=1e6)
        delivered = []
        net.hosts["b"].on_packet(delivered.append)
        net.hosts["a"].send("b", size=100)

        def killer(sim):
            yield sim.timeout(0.005)  # mid first hop
            net.remove_host("b")

        sim.spawn(killer(sim))
        sim.run()
        assert delivered == []

    def test_bandwidth_contention_orders_arrivals(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", latency=0.0, bandwidth=100.0)  # 100 B/s
        arrivals = []
        net.hosts["b"].on_packet(lambda p: arrivals.append((sim.now, p.size)))
        net.hosts["a"].send("b", size=100)  # 1s transmission
        net.hosts["a"].send("b", size=50)  # queued behind: +0.5s
        sim.run()
        assert arrivals[0] == (pytest.approx(1.0), 100)
        assert arrivals[1] == (pytest.approx(1.5), 50)


class TestResourceEdges:
    def test_many_concurrent_jobs_share_fairly(self):
        sim = Simulator()
        node = NodeResources(sim, "n0", cpu_speed=1.0)
        events = [node.submit(cpu_work=10.0) for _ in range(10)]
        sim.run()
        # All ten share the CPU throughout: all complete at t = 100.
        for event in events:
            assert event.value == pytest.approx(100.0)

    def test_snapshot_effective_speed_degrades_with_jobs(self):
        sim = Simulator()
        node = NodeResources(sim, "n0", cpu_speed=4.0)
        before = node.snapshot().effective_speed
        node.submit(cpu_work=1e9)
        after = node.snapshot().effective_speed
        assert after < before

    def test_child_stream_independence(self):
        root = RandomStream(1, "root")
        a_first = [root.child("a").random() for _ in range(5)]
        # Drawing from another child must not disturb "a".
        _ = [root.child("b").random() for _ in range(50)]
        a_second = [root.child("a").random() for _ in range(5)]
        assert a_first == a_second

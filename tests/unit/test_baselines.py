"""Unit tests for the per-node and centralised baseline models."""

import pytest

from repro.baselines.central import CentralizedMonitor, availability_after_failure
from repro.baselines.pernode import (
    CryptoCostModel,
    TrafficSpec,
    evaluate_pernode,
    evaluate_proxy,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTrafficSpec:
    def test_derived_quantities(self):
        spec = TrafficSpec(
            sites=2, nodes_per_site=10, messages_per_node=100,
            message_bytes=1024, locality=0.8,
        )
        assert spec.total_nodes == 20
        assert spec.total_messages == 2000
        assert spec.intersite_messages == 400
        assert spec.local_messages == 1600

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficSpec(sites=0, nodes_per_site=1, messages_per_node=1,
                        message_bytes=1, locality=0.5)
        with pytest.raises(ValueError):
            TrafficSpec(sites=1, nodes_per_site=1, messages_per_node=1,
                        message_bytes=1, locality=1.5)


class TestArchitectureComparison:
    def spec(self, locality=0.8, nodes=32):
        return TrafficSpec(
            sites=4, nodes_per_site=nodes, messages_per_node=200,
            message_bytes=4096, locality=locality,
        )

    def test_proxy_wins_at_high_locality(self):
        model = CryptoCostModel()
        spec = self.spec(locality=0.9)
        assert evaluate_proxy(spec, model).crypto_seconds < \
            evaluate_pernode(spec, model).crypto_seconds

    def test_pernode_encrypts_everything(self):
        model = CryptoCostModel()
        spec = self.spec()
        pernode = evaluate_pernode(spec, model)
        proxy = evaluate_proxy(spec, model)
        assert pernode.encrypted_bytes == spec.total_messages * spec.message_bytes
        assert proxy.encrypted_bytes == spec.intersite_messages * spec.message_bytes
        assert proxy.encrypted_bytes < pernode.encrypted_bytes

    def test_overhead_confined_to_proxies(self):
        """The paper's core claim: overhead in a few nodes, not all."""
        model = CryptoCostModel()
        spec = self.spec()
        pernode = evaluate_pernode(spec, model)
        proxy = evaluate_proxy(spec, model)
        assert pernode.nodes_bearing_overhead == spec.total_nodes
        assert proxy.nodes_bearing_overhead == spec.sites

    def test_proxy_handshakes_independent_of_node_count(self):
        model = CryptoCostModel()
        small = evaluate_proxy(self.spec(nodes=8), model)
        large = evaluate_proxy(self.spec(nodes=256), model)
        assert small.handshakes == large.handshakes == 4 * 3 // 2

    def test_pernode_handshakes_grow_with_nodes(self):
        model = CryptoCostModel()
        small = evaluate_pernode(self.spec(nodes=8), model)
        large = evaluate_pernode(self.spec(nodes=64), model)
        assert large.handshakes > small.handshakes

    def test_zero_locality_converges_on_crypto_ops(self):
        """All-remote traffic: both architectures encrypt every message."""
        model = CryptoCostModel()
        spec = self.spec(locality=0.0)
        pernode = evaluate_pernode(spec, model)
        proxy = evaluate_proxy(spec, model)
        assert proxy.crypto_operations == pernode.crypto_operations

    def test_full_locality_frees_proxy_entirely(self):
        model = CryptoCostModel()
        spec = self.spec(locality=1.0)
        proxy = evaluate_proxy(spec, model)
        assert proxy.crypto_operations == 0
        assert proxy.encrypted_bytes == 0

    def test_per_node_overhead_metric(self):
        model = CryptoCostModel()
        spec = self.spec()
        proxy = evaluate_proxy(spec, model)
        assert proxy.crypto_seconds_per_node == pytest.approx(
            proxy.crypto_seconds / spec.sites
        )


class TestCentralizedMonitor:
    def make(self):
        clock = FakeClock()
        fetches = []

        def fetch(node):
            fetches.append(node)
            return {"node": node, "alive": True}

        monitor = CentralizedMonitor(
            {"A": ["A.n0", "A.n1"], "B": ["B.n0", "B.n1", "B.n2"]},
            fetch, clock, ttl=10.0,
        )
        return monitor, clock, fetches

    def test_site_query_polls_each_node(self):
        monitor, _, fetches = self.make()
        entries = monitor.site_status("A")
        assert len(entries) == 2
        assert fetches == ["A.n0", "A.n1"]
        assert monitor.queries_sent == 2

    def test_global_polls_every_node(self):
        monitor, _, fetches = self.make()
        monitor.global_status()
        assert monitor.queries_sent == 5

    def test_cache_respected(self):
        monitor, clock, fetches = self.make()
        monitor.site_status("A")
        clock.now = 5.0
        monitor.site_status("A")
        assert monitor.queries_sent == 2

    def test_unknown_site(self):
        monitor, _, _ = self.make()
        with pytest.raises(KeyError):
            monitor.site_status("Z")


class TestAvailability:
    SITES = {"A": 10, "B": 10, "C": 20}

    def test_distributed_site_failure_partial(self):
        impact = availability_after_failure(self.SITES, "C", "distributed")
        assert impact.capacity_remaining == pytest.approx(0.5)
        assert impact.controllable

    def test_centralized_controller_failure_total(self):
        impact = availability_after_failure(self.SITES, "controller", "centralized")
        assert impact.capacity_remaining == 0.0
        assert not impact.controllable

    def test_distributed_has_no_controller(self):
        impact = availability_after_failure(self.SITES, "controller", "distributed")
        assert impact.capacity_remaining == 1.0
        assert impact.controllable

    def test_centralized_site_failure_partial(self):
        impact = availability_after_failure(self.SITES, "A", "centralized")
        assert impact.capacity_remaining == pytest.approx(0.75)
        assert impact.controllable

    def test_validation(self):
        with pytest.raises(ValueError):
            availability_after_failure(self.SITES, "A", "anarchist")
        with pytest.raises(KeyError):
            availability_after_failure(self.SITES, "Z", "distributed")
        with pytest.raises(ValueError):
            availability_after_failure({}, "A", "distributed")

"""Unit tests for the token auth control plane (security/tokens.py).

Covers the ISSUE-8 contract: expiry, refresh, revocation epoch
semantics (including concurrent-revoke CRDT merges), delegation
attenuation, and tamper rejection — all on a hand-cranked clock.
"""

from __future__ import annotations

import pytest

from repro.security.auth import AuthenticationError, UserDirectory
from repro.security.rsa import RsaKeyPair
from repro.security.tokens import (
    MAX_DELEGATION_DEPTH,
    RevocationList,
    Token,
    TokenError,
    TokenService,
    auth_mode,
    scope_grants,
)

KEY = b"k" * 32


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def users() -> UserDirectory:
    directory = UserDirectory(pbkdf_iterations=10)
    directory.add_user("alice", "wonder")
    directory.add_user("bob", "builder")
    directory.create_group("ops")
    directory.add_to_group("ops", "bob")
    return directory


@pytest.fixture()
def service(users: UserDirectory, clock: FakeClock) -> TokenService:
    return TokenService(users, clock, key=KEY, issuer="proxy.A")


class TestScopeGrammar:
    def test_exact_and_wildcards(self):
        assert scope_grants(("jobs:submit",), "jobs:submit")
        assert scope_grants(("*",), "anything:at all")
        assert scope_grants(("wms:*",), "wms:claim")
        assert not scope_grants(("wms:*",), "jobs:submit")
        assert not scope_grants(("jobs:submit",), "jobs:cancel")

    def test_empty_grants_nothing(self):
        assert not scope_grants((), "jobs:submit")


class TestLoginAndExpiry:
    def test_login_mints_verified_token(self, service, clock):
        token = service.login("alice", "wonder")
        claims = service.verify_blob(token.to_bytes())
        assert claims.userid == "alice"
        assert claims.grants("jobs:submit")
        assert claims.expires_at == clock.now + service.lifetime

    def test_wrong_password_raises(self, service):
        with pytest.raises(AuthenticationError):
            service.login("alice", "nope")

    def test_signature_login(self, users, clock):
        keypair = RsaKeyPair.generate(512)
        users.register_key("alice", keypair.public)
        service = TokenService(users, clock, key=KEY)
        message = b"login:alice"
        token = service.login_signature(
            "alice", message, keypair.sign(message)
        )
        assert token.userid == "alice"
        with pytest.raises(AuthenticationError):
            service.login_signature("alice", message, b"forged")

    def test_group_scopes_minted_in(self, service):
        service.grant_group_scopes("ops", ["wms:claim"])
        assert service.login("bob", "builder").grants("wms:claim")
        assert not service.login("alice", "wonder").grants("wms:claim")

    def test_requested_scopes_must_be_grantable(self, service):
        narrowed = service.login("alice", "wonder", scopes=["jobs:submit"])
        assert narrowed.scopes == ("jobs:submit",)
        with pytest.raises(TokenError):
            service.login("alice", "wonder", scopes=["auth:revoke"])

    def test_expired_token_rejected(self, service, clock):
        blob = service.login("alice", "wonder").to_bytes()
        clock.advance(service.lifetime + 1.0)
        with pytest.raises(TokenError, match="expired"):
            service.verify_blob(blob)

    def test_future_issued_token_rejected(self, service, clock):
        blob = service.login("alice", "wonder").to_bytes()
        clock.advance(-(service.max_clock_skew + 5.0))
        with pytest.raises(TokenError, match="future"):
            service.verify_blob(blob)

    def test_scope_check_on_verify(self, service):
        blob = service.login("alice", "wonder").to_bytes()
        service.verify_blob(blob, required_scope="jobs:submit")
        with pytest.raises(TokenError, match="lacks scope"):
            service.verify_blob(blob, required_scope="auth:revoke")


class TestRefresh:
    def test_refresh_extends_lifetime_same_claims(self, service, clock):
        old = service.login("alice", "wonder", scopes=["jobs:submit"])
        clock.advance(service.lifetime / 2)
        fresh = service.refresh(old.to_bytes())
        assert fresh.userid == old.userid
        assert fresh.scopes == old.scopes
        assert fresh.expires_at > old.expires_at
        assert fresh.token_id != old.token_id

    def test_expired_token_cannot_refresh(self, service, clock):
        blob = service.login("alice", "wonder").to_bytes()
        clock.advance(service.lifetime + 1.0)
        with pytest.raises(TokenError):
            service.refresh(blob)

    def test_delegated_token_cannot_refresh(self, service):
        blob = service.login("alice", "wonder").to_bytes()
        child = service.delegate(
            blob, delegate_to="proxy.B", scopes=["jobs:submit"]
        )
        with pytest.raises(TokenError, match="delegated"):
            service.refresh(child.to_bytes())


class TestRevocation:
    def test_revoke_token_bumps_epoch_and_rejects(self, service):
        blob = service.login("alice", "wonder").to_bytes()
        assert service.epoch == 0
        assert service.revoke(blob) is True
        assert service.epoch == 1
        assert service.revoke(blob) is False  # idempotent, no bump
        assert service.epoch == 1
        with pytest.raises(TokenError, match="revoked"):
            service.verify_blob(blob)

    def test_revoke_user_cuts_off_prior_tokens(self, service, clock):
        old = service.login("alice", "wonder").to_bytes()
        service.revoke_user("alice")
        with pytest.raises(TokenError, match="revoked"):
            service.verify_blob(old)
        # Tokens issued after the cutoff are fine (e.g. re-login).
        clock.advance(1.0)
        fresh = service.login("alice", "wonder").to_bytes()
        assert service.verify_blob(fresh).userid == "alice"

    def test_merge_is_grow_only_union(self, users, clock):
        a = TokenService(users, clock, key=KEY, issuer="proxy.A")
        b = TokenService(users, clock, key=KEY, issuer="proxy.B")
        blob = a.login("alice", "wonder").to_bytes()
        a.revoke(blob)
        assert b.epoch == 0
        assert b.merge_rlist(a.rlist_wire()) is True
        assert b.epoch >= a.epoch
        with pytest.raises(TokenError, match="revoked"):
            b.verify_blob(blob)
        # Re-merging the same state changes nothing.
        assert b.merge_rlist(a.rlist_wire()) is False

    def test_concurrent_revokes_converge_with_epoch_bump(self, users, clock):
        a = TokenService(users, clock, key=KEY, issuer="proxy.A")
        b = TokenService(users, clock, key=KEY, issuer="proxy.B")
        blob_a = a.login("alice", "wonder").to_bytes()
        blob_b = b.login("bob", "builder").to_bytes()
        a.revoke(blob_a)
        b.revoke(blob_b)
        assert a.epoch == b.epoch == 1  # same epoch, different sets
        a.merge_rlist(b.rlist_wire())
        # The merge learned new entries at an equal epoch: it must bump
        # so the union keeps gossiping outward.
        assert a.epoch > 1
        b.merge_rlist(a.rlist_wire())
        for svc in (a, b):
            with pytest.raises(TokenError):
                svc.verify_blob(blob_a)
            with pytest.raises(TokenError):
                svc.verify_blob(blob_b)
        assert a.rlist_wire()["tokens"] == b.rlist_wire()["tokens"]

    def test_concurrent_revokes_unequal_epochs_converge(self, users, clock):
        # A revokes T at epoch 1; B revokes U and V at epoch 2.  After A
        # merges B it holds the strict superset, so it must land strictly
        # ahead of B's epoch — otherwise B (pulling only on a strictly
        # higher epoch) would never learn T.
        a = TokenService(users, clock, key=KEY, issuer="proxy.A")
        b = TokenService(users, clock, key=KEY, issuer="proxy.B")
        blob_t = a.login("alice", "wonder").to_bytes()
        blob_u = b.login("bob", "builder").to_bytes()
        blob_v = b.login("bob", "builder").to_bytes()  # distinct token_id
        a.revoke(blob_t)
        b.revoke(blob_u)
        b.revoke(blob_v)
        assert (a.epoch, b.epoch) == (1, 2)
        a.merge_rlist(b.rlist_wire())
        assert a.epoch > b.epoch
        b.merge_rlist(a.rlist_wire())
        for svc in (a, b):
            for blob in (blob_t, blob_u, blob_v):
                with pytest.raises(TokenError):
                    svc.verify_blob(blob)
        assert a.rlist_wire()["tokens"] == b.rlist_wire()["tokens"]
        # Converged: after at most one epoch-sync pull (no growth, just
        # adopting the higher epoch) further exchanges are no-ops.
        a.merge_rlist(b.rlist_wire())
        assert a.merge_rlist(b.rlist_wire()) is False
        assert b.merge_rlist(a.rlist_wire()) is False

    def test_merge_from_lower_epoch_peer_still_bumps(self):
        # A is far ahead on epoch; B holds one unique entry at a lower
        # epoch.  A third replica synced to A's old epoch pulls neither
        # list unless A's merge bumps past its *own* prior epoch too.
        a, b = RevocationList(), RevocationList()
        for i in range(5):
            a.revoke_token(f"t{i}")
        b.revoke_token("unique")
        assert (a.epoch, b.epoch) == (5, 1)
        assert a.merge({**b.to_wire()}) is True
        assert a.epoch > 5

    def test_malformed_rlist_raises(self):
        rlist = RevocationList()
        with pytest.raises(TokenError):
            rlist.merge({"epoch": 1, "tokens": "oops", "users": {}})

    def test_malformed_user_cutoff_rejected_atomically(self):
        rlist = RevocationList()
        with pytest.raises(TokenError):
            rlist.merge(
                {"epoch": 3, "tokens": ["tok-1"], "users": {"mallory": "NaNope"}}
            )
        # Nothing was applied: no entries, no epoch movement.
        assert rlist.epoch == 0
        assert rlist.to_wire()["tokens"] == []
        assert rlist.to_wire()["users"] == {}


class TestDelegation:
    def test_attenuation_scopes_subset_and_expiry_cap(self, service, clock):
        parent = service.login("alice", "wonder")
        child = service.delegate(
            parent.to_bytes(), delegate_to="proxy.B", scopes=["jobs:submit"]
        )
        assert child.userid == "alice"
        assert child.scopes == ("jobs:submit",)
        assert child.depth == 1
        assert child.chain[0]["by"] == "proxy.B"
        assert child.expires_at <= parent.expires_at

    def test_cannot_widen_scopes(self, service):
        parent = service.login("alice", "wonder", scopes=["jobs:submit"])
        with pytest.raises(TokenError, match="cannot delegate"):
            service.delegate(
                parent.to_bytes(), delegate_to="proxy.B", scopes=["wms:read"]
            )

    def test_depth_bound(self, service):
        blob = service.login("alice", "wonder").to_bytes()
        for hop in range(MAX_DELEGATION_DEPTH):
            blob = service.delegate(
                blob, delegate_to=f"proxy.{hop}", scopes=["jobs:submit"]
            ).to_bytes()
        with pytest.raises(TokenError, match="depth"):
            service.delegate(
                blob, delegate_to="proxy.deep", scopes=["jobs:submit"]
            )

    def test_revoking_parent_kills_user_not_chain_id(self, service):
        parent = service.login("alice", "wonder")
        child = service.delegate(
            parent.to_bytes(), delegate_to="proxy.B", scopes=["jobs:submit"]
        )
        service.revoke(parent.to_bytes())
        # The child is its own token id: still live until revoked or the
        # user is cut off (revoke_user is the kill-everything switch).
        service.verify_blob(child.to_bytes())
        service.revoke_user("alice")
        with pytest.raises(TokenError):
            service.verify_blob(child.to_bytes())


class TestTamper:
    def test_bit_flip_anywhere_rejected(self, service):
        blob = bytearray(service.login("alice", "wonder").to_bytes())
        for index in range(0, len(blob), max(1, len(blob) // 16)):
            tampered = bytearray(blob)
            tampered[index] ^= 0x01
            with pytest.raises(TokenError):
                service.verify_blob(bytes(tampered))

    def test_wrong_key_rejected(self, users, clock, service):
        other = TokenService(users, clock, key=b"x" * 32)
        blob = other.login("alice", "wonder").to_bytes()
        with pytest.raises(TokenError, match="signature"):
            service.verify_blob(blob)

    def test_forged_claims_rejected(self, service, clock):
        # Re-minting the same claims under a guessed key must not fly.
        forged = Token.mint(
            b"guessed-key-guessed-key-guessed!",
            userid="alice",
            groups=("service",),
            scopes=("*",),
            issued_at=clock.now,
            expires_at=clock.now + 900.0,
            issuer="proxy.A",
            token_id="proxy.A:9:deadbeef",
        )
        with pytest.raises(TokenError):
            service.verify_blob(forged.to_bytes())

    def test_malformed_blob_rejected(self, service):
        for blob in (b"", b"garbage", b"\x00" * 64):
            with pytest.raises(TokenError):
                service.verify_blob(blob)


class TestMode:
    def test_auth_mode_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUTH", raising=False)
        assert auth_mode() == "token"
        monkeypatch.setenv("REPRO_AUTH", "legacy")
        assert auth_mode() == "legacy"
        monkeypatch.setenv("REPRO_AUTH", "  TOKEN ")
        assert auth_mode() == "token"
        monkeypatch.setenv("REPRO_AUTH", "bogus")
        assert auth_mode() == "token"

    def test_short_key_rejected(self, users, clock):
        with pytest.raises(ValueError):
            TokenService(users, clock, key=b"short")

"""Unit tests for the Grid API façade (the paper's layer-3 API)."""

import pytest

from repro.control.api import GridApi
from repro.core.grid import Grid, GridError


@pytest.fixture(scope="module")
def grid():
    g = Grid()
    g.add_site("A", nodes=2, node_speeds=[1.0, 2.0])
    g.add_site("B", nodes=1)
    g.connect_all()
    g.add_user("alice", "pw")
    yield g
    g.shutdown()


@pytest.fixture()
def api(grid):
    return GridApi(grid)


class TestStationState:
    def test_reports_ram_cpu_hd(self, api):
        state = api.station_state("A.n1")
        assert state["node"] == "A.n1"
        assert state["site"] == "A"
        assert state["cpu_speed"] == 2.0
        assert state["ram_free"] <= state["ram_total"]
        assert state["disk_free"] <= state["disk_total"]
        assert state["alive"] is True

    def test_unknown_station_raises(self, api):
        with pytest.raises(GridError, match="unknown station"):
            api.station_state("nope.n9")


class TestSiteAndGridState:
    def test_site_state_via_proxy(self, api):
        entries = api.site_state("A")
        assert len(entries) == 2
        assert {e["node"] for e in entries} == {"A.n0", "A.n1"}

    def test_grid_state_compiles_everything(self, api):
        state = api.grid_state()
        assert sorted(state) == ["A", "B"]
        assert len(state["A"]) == 2
        assert len(state["B"]) == 1

    def test_grid_state_via_other_site(self, api):
        state = api.grid_state(via_site="B")
        assert sorted(state) == ["A", "B"]


class TestSummaryAndTopology:
    def test_summary_counts(self, api):
        summary = api.summary()
        assert summary["sites"] == 2
        assert summary["nodes"] == 3
        assert summary["alive_nodes"] == 3
        assert summary["users"] == 1
        assert summary["site_names"] == ["A", "B"]

    def test_topology_structure(self, api):
        topology = api.topology()["sites"]
        assert topology["A"]["proxy"] == "proxy.A"
        assert topology["A"]["nodes"] == ["A.n0", "A.n1"]
        assert topology["A"]["tunnels"] == ["proxy.B"]

    def test_summary_reflects_node_failure(self, api, grid):
        grid.sites["B"].nodes["B.n0"].fail()
        try:
            assert api.summary()["alive_nodes"] == 2
        finally:
            grid.sites["B"].nodes["B.n0"].recover()

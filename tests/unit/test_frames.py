"""Unit tests for the wire codec and frame format."""

import pytest

from repro.transport.errors import CodecError, FrameError
from repro.transport.frames import (
    MAX_FRAME_PAYLOAD,
    Frame,
    FrameDecoder,
    FrameKind,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
)


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            2**200,
            -(2**200),
            0.0,
            3.14,
            float("inf"),
            "",
            "hello",
            "unicode: ação ∑",
            b"",
            b"\x00\xff" * 10,
            [],
            [1, "two", 3.0],
            (),
            (1, 2),
            {},
            {"a": 1, "b": [True, None]},
            {"nested": {"deep": {"deeper": [1, (2, {"x": b"y"})]}}},
        ],
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tuple_distinct_from_list(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert isinstance(decode_value(encode_value((1, 2))), tuple)
        assert isinstance(decode_value(encode_value([1, 2])), list)

    def test_bool_distinct_from_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True

    def test_rejects_foreign_types(self):
        with pytest.raises(CodecError):
            encode_value(object())
        with pytest.raises(CodecError):
            encode_value({1: "non-string key"})
        with pytest.raises(CodecError):
            encode_value(set())

    def test_rejects_excessive_nesting(self):
        value = []
        for _ in range(100):
            value = [value]
        with pytest.raises(CodecError):
            encode_value(value)

    def test_rejects_trailing_garbage(self):
        blob = encode_value(42) + b"junk"
        with pytest.raises(CodecError):
            decode_value(blob)

    def test_rejects_truncation(self):
        blob = encode_value("hello world")
        with pytest.raises(CodecError):
            decode_value(blob[:-3])

    def test_rejects_unknown_tag(self):
        with pytest.raises(CodecError):
            decode_value(b"\xfe")

    def test_rejects_empty_input(self):
        with pytest.raises(CodecError):
            decode_value(b"")

    def test_rejects_bad_utf8(self):
        blob = bytearray(encode_value("ab"))
        blob[-1] = 0xFF  # corrupt the string body
        with pytest.raises(CodecError):
            decode_value(bytes(blob))

    def test_hostile_length_field(self):
        # A list claiming 2**32-1 elements must not allocate.
        blob = b"\x07\xff\xff\xff\xff"
        with pytest.raises(CodecError):
            decode_value(blob)


class TestFrame:
    def test_round_trip(self):
        frame = Frame(
            kind=FrameKind.CONTROL,
            channel=7,
            headers={"op": "JOB_SUBMIT", "seq": 3},
            payload=b"body",
        )
        decoded = decode_frame(encode_frame(frame))
        assert decoded.kind == FrameKind.CONTROL
        assert decoded.channel == 7
        assert decoded.headers == {"op": "JOB_SUBMIT", "seq": 3}
        assert decoded.payload == b"body"

    def test_empty_frame(self):
        frame = Frame(kind=FrameKind.HEARTBEAT)
        decoded = decode_frame(encode_frame(frame))
        assert decoded.headers == {}
        assert decoded.payload == b""

    def test_all_kinds_round_trip(self):
        for kind in FrameKind:
            decoded = decode_frame(encode_frame(Frame(kind=kind)))
            assert decoded.kind == kind

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Frame(kind=99)

    def test_channel_range_enforced(self):
        with pytest.raises(FrameError):
            Frame(kind=FrameKind.DATA, channel=-1)
        with pytest.raises(FrameError):
            Frame(kind=FrameKind.DATA, channel=2**32)

    def test_payload_must_be_bytes(self):
        with pytest.raises(FrameError):
            Frame(kind=FrameKind.DATA, payload="text")

    def test_bad_magic_rejected(self):
        blob = bytearray(encode_frame(Frame(kind=FrameKind.DATA)))
        blob[0] = 0x00
        with pytest.raises(FrameError):
            decode_frame(bytes(blob))

    def test_bad_version_rejected(self):
        blob = bytearray(encode_frame(Frame(kind=FrameKind.DATA)))
        blob[2] = 99
        with pytest.raises(FrameError):
            decode_frame(bytes(blob))

    def test_unknown_wire_kind_rejected(self):
        blob = bytearray(encode_frame(Frame(kind=FrameKind.DATA)))
        blob[3] = 200
        with pytest.raises(FrameError):
            decode_frame(bytes(blob))

    def test_trailing_bytes_rejected(self):
        blob = encode_frame(Frame(kind=FrameKind.DATA)) + b"x"
        with pytest.raises(FrameError):
            decode_frame(blob)

    def test_truncated_frame_rejected(self):
        blob = encode_frame(Frame(kind=FrameKind.DATA, payload=b"abcdef"))
        with pytest.raises(FrameError):
            decode_frame(blob[:-2])

    def test_oversized_payload_rejected(self):
        frame = Frame(kind=FrameKind.DATA)
        frame.payload = b"\x00" * (MAX_FRAME_PAYLOAD + 1)
        with pytest.raises(FrameError):
            encode_frame(frame)

    def test_hostile_payload_length_rejected(self):
        blob = bytearray(encode_frame(Frame(kind=FrameKind.DATA)))
        blob[12:16] = (MAX_FRAME_PAYLOAD + 1).to_bytes(4, "big")
        with pytest.raises(FrameError):
            decode_frame(bytes(blob))

    def test_wire_size(self):
        frame = Frame(kind=FrameKind.DATA, payload=b"1234")
        assert frame.wire_size() == len(encode_frame(frame))


class TestFrameDecoder:
    def test_reassembles_split_frames(self):
        frames = [
            Frame(kind=FrameKind.CONTROL, headers={"n": i}, payload=bytes([i]) * i)
            for i in range(5)
        ]
        blob = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        out = []
        # Feed one byte at a time: worst-case fragmentation.
        for i in range(0, len(blob), 3):
            decoder.feed(blob[i : i + 3])
            out.extend(decoder)
        assert [f.headers["n"] for f in out] == [0, 1, 2, 3, 4]
        assert decoder.pending_bytes == 0

    def test_coalesced_frames_in_one_chunk(self):
        blob = encode_frame(Frame(kind=FrameKind.DATA, payload=b"a")) + encode_frame(
            Frame(kind=FrameKind.DATA, payload=b"b")
        )
        decoder = FrameDecoder()
        decoder.feed(blob)
        frames = list(decoder)
        assert [f.payload for f in frames] == [b"a", b"b"]

    def test_incomplete_frame_returns_none(self):
        blob = encode_frame(Frame(kind=FrameKind.DATA, payload=b"abc"))
        decoder = FrameDecoder()
        decoder.feed(blob[:-1])
        assert decoder.next_frame() is None
        decoder.feed(blob[-1:])
        assert decoder.next_frame() is not None

    def test_corrupt_stream_poisons_decoder(self):
        decoder = FrameDecoder()
        decoder.feed(b"XXXXXXXXXXXXXXXXXXXX")
        with pytest.raises(FrameError):
            decoder.next_frame()
        with pytest.raises(FrameError):
            decoder.feed(b"more")
        with pytest.raises(FrameError):
            decoder.next_frame()


class TestZeroCopyDecoder:
    """The memoryview receive path: no-copy feeds, view-payload decode,
    and the lifetime contract (views are valid until the next feed)."""

    def _frame(self, n, size=32):
        return Frame(
            kind=FrameKind.DATA, headers={"n": n}, payload=bytes([n % 256]) * size
        )

    def test_feed_accepts_bytes_like_without_conversion(self):
        blob = encode_frame(self._frame(1))
        for chunk in (bytearray(blob), memoryview(blob), memoryview(bytearray(blob))):
            decoder = FrameDecoder()
            decoder.feed(chunk)
            frame = decoder.next_frame()
            assert frame.headers["n"] == 1
            assert frame.payload == self._frame(1).payload

    def test_next_frame_view_returns_memoryview_payload(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(self._frame(7)))
        frame = decoder.next_frame_view()
        assert isinstance(frame.payload, memoryview)
        assert bytes(frame.payload) == self._frame(7).payload
        assert decoder.last_frame_wire_size == len(encode_frame(self._frame(7)))

    def test_view_payload_empty_frame_is_bytes(self):
        # Zero-length views would pin the buffer for nothing.
        decoder = FrameDecoder()
        decoder.feed(encode_frame(Frame(kind=FrameKind.DATA, payload=b"")))
        frame = decoder.next_frame_view()
        assert frame.payload == b""
        assert isinstance(frame.payload, bytes)

    def test_view_content_survives_contract_violation(self):
        # The documented lifetime is "until the next feed"; holding a view
        # longer must degrade to a copy (the decoder abandons the buffer
        # to the leaked view), never to corruption.
        decoder = FrameDecoder()
        decoder.feed(encode_frame(self._frame(1)))
        frame = decoder.next_frame_view()
        retained = frame.payload
        expected = bytes(retained)
        for n in range(2, 30):
            decoder.feed(encode_frame(self._frame(n)))
            nxt = decoder.next_frame_view()
            assert nxt.headers["n"] == n
        assert bytes(retained) == expected

    def test_views_interleave_with_copying_decode(self):
        decoder = FrameDecoder()
        blob = b"".join(encode_frame(self._frame(n)) for n in range(6))
        decoder.feed(blob)
        for n in range(6):
            frame = decoder.next_frame_view() if n % 2 else decoder.next_frame()
            assert frame.headers["n"] == n
            assert bytes(frame.payload) == self._frame(n).payload
        assert decoder.pending_bytes == 0

    def test_feed_into_reads_via_readinto(self):
        import io

        blob = b"".join(encode_frame(self._frame(n)) for n in range(4))
        source = io.BytesIO(blob)
        decoder = FrameDecoder()
        seen = []
        while True:
            n = decoder.feed_into(source.readinto, max_bytes=7)
            if not n:
                break
            seen.extend(f.headers["n"] for f in decoder)
        assert seen == [0, 1, 2, 3]
        assert decoder.feed_into(source.readinto) == 0  # EOF stays EOF

    def test_decoded_values_own_their_data(self):
        # decode_value over a memoryview must copy str/bytes leaves out:
        # the buffer is reused after the view dies.
        buffer = bytearray(encode_value({"key": b"payload", "s": "text"}))
        value = decode_value(memoryview(buffer))
        buffer[:] = bytes(len(buffer))  # clobber the backing storage
        assert value == {"key": b"payload", "s": "text"}
        assert isinstance(value["key"], bytes)

    def test_codec_round_trip_through_memoryview(self):
        for value in (None, 1, "x", b"y", [1, {"k": (2.5, b"z")}]):
            assert decode_value(memoryview(encode_value(value))) == value

"""Unit tests for the workload manager (queue, fair share, journal).

Everything here drives :class:`WorkloadManager` directly with a manual
logical clock — the wire path is covered by the integration/parity and
chaos suites.
"""

import itertools
import os

import pytest

from repro.control.wms import (
    FairShare,
    FileJournal,
    JobSpec,
    JobState,
    Matchmaker,
    MemoryJournal,
    WmsError,
    WorkloadManager,
    site_capability,
)


def make_clock(step: float = 1.0):
    counter = itertools.count()
    return lambda: next(counter) * step


def make_wms(**kwargs):
    kwargs.setdefault("clock", make_clock())
    return WorkloadManager(**kwargs)


class TestJobSpec:
    def test_wire_round_trip(self):
        spec = JobSpec(
            job_id="j1", user="ada", group="g", priority=3, work=2.5,
            ram=1 << 20, max_attempts=5,
        )
        assert JobSpec.from_wire(spec.to_wire()) == spec

    def test_validation(self):
        with pytest.raises(WmsError):
            JobSpec(job_id="")
        with pytest.raises(WmsError):
            JobSpec(job_id="j", work=-1.0)
        with pytest.raises(WmsError):
            JobSpec(job_id="j", ram=-1)
        with pytest.raises(WmsError):
            JobSpec(job_id="j", max_attempts=0)
        with pytest.raises(WmsError):
            JobSpec.from_wire({"user": "no-id"})


class TestFairShare:
    def test_decay_half_life(self):
        shares = FairShare(half_life=10.0)
        shares.charge("ada", 8.0, now=0.0)
        assert shares.usage("ada", now=0.0) == pytest.approx(8.0)
        assert shares.usage("ada", now=10.0) == pytest.approx(4.0)
        assert shares.usage("ada", now=20.0) == pytest.approx(2.0)

    def test_unknown_user_is_zero(self):
        assert FairShare().usage("nobody", now=5.0) == 0.0

    def test_charge_accumulates_decayed(self):
        shares = FairShare(half_life=10.0)
        shares.charge("ada", 8.0, now=0.0)
        shares.charge("ada", 1.0, now=10.0)
        assert shares.usage("ada", now=10.0) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(WmsError):
            FairShare(half_life=0.0)


class TestMatchmaker:
    def test_ram_gate(self):
        mm = Matchmaker()
        spec = JobSpec(job_id="j", ram=100)
        assert mm.fits(spec, {"ram_free": 100, "speed": 1.0})
        assert not mm.fits(spec, {"ram_free": 99, "speed": 1.0})

    def test_gap_gate_scales_with_speed(self):
        mm = Matchmaker()
        spec = JobSpec(job_id="j", work=10.0)
        assert not mm.fits(spec, {"ram_free": 0, "speed": 1.0}, gap=5.0)
        assert mm.fits(spec, {"ram_free": 0, "speed": 4.0}, gap=5.0)
        assert not mm.fits(spec, {"ram_free": 0, "speed": 0.0}, gap=5.0)

    def test_no_capability_means_fit(self):
        assert Matchmaker().fits(JobSpec(job_id="j", ram=1 << 40), None)

    def test_site_capability_summary(self):
        entries = [
            {"alive": True, "ram_free": 100, "cpu_speed": 1.0, "running_tasks": 0},
            {"alive": True, "ram_free": 300, "cpu_speed": 2.0, "running_tasks": 1},
            {"alive": False, "ram_free": 900, "cpu_speed": 9.0, "running_tasks": 0},
        ]
        assert site_capability(entries) == {
            "ram_free": 300, "speed": 2.0, "slots": 1,
        }
        assert site_capability([]) == {"ram_free": 0, "speed": 0.0, "slots": 0}


class TestSubmitClaim:
    def test_submit_and_fifo_claim(self):
        wms = make_wms()
        for i in range(3):
            assert wms.submit(JobSpec(job_id=f"j{i}", user="u")) == {
                "job_id": f"j{i}", "state": JobState.PENDING,
            }
        got = wms.claim("p", count=3)
        assert [g["job"]["job_id"] for g in got] == ["j0", "j1", "j2"]
        assert got[0]["token"] == "j0#1"

    def test_submit_is_idempotent_on_job_id(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="j0"))
        again = wms.submit(JobSpec(job_id="j0"))
        assert again["duplicate"] is True
        assert wms.status()["submitted"] == 1

    def test_priority_tiers_before_fairness(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="low", user="u", priority=0))
        wms.submit(JobSpec(job_id="high", user="u", priority=9))
        assert wms.claim("p")[0]["job"]["job_id"] == "high"

    def test_fair_share_least_served_user_first(self):
        wms = make_wms()
        for i in range(4):
            wms.submit(JobSpec(job_id=f"a{i}", user="alice", work=10.0))
        wms.submit(JobSpec(job_id="b0", user="bob", work=10.0))
        first = wms.claim("p")[0]["job"]["job_id"]
        # alice ties bob at zero usage and wins alphabetically ...
        assert first == "a0"
        # ... but having been served, she yields to bob next.
        assert wms.claim("p")[0]["job"]["job_id"] == "b0"

    def test_empty_claim_when_nothing_fits(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="big", ram=1 << 30))
        assert wms.claim("p", capability={"ram_free": 1 << 20, "speed": 1.0}) == []
        assert wms.status()["pending"] == 1

    def test_claim_id_replays_assignment(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="j0"))
        wms.submit(JobSpec(job_id="j1"))
        first = wms.claim("p", count=1, claim_id="c1")
        again = wms.claim("p", count=1, claim_id="c1")
        assert again == first
        assert wms.status()["claimed"] == 1  # no double claim

    def test_claim_validation(self):
        with pytest.raises(WmsError):
            make_wms().claim("p", count=0)


class TestBackfill:
    def test_small_job_backfills_past_giant_head(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="giant", user="u", ram=1 << 30))
        wms.submit(JobSpec(job_id="small", user="u", ram=0))
        got = wms.claim("p", capability={"ram_free": 1 << 20, "speed": 1.0})
        assert got[0]["job"]["job_id"] == "small"
        assert wms.pending_jobs() == ["giant"]

    def test_backfill_budget_bounds_the_scan(self):
        wms = make_wms(backfill_limit=2)
        wms.submit(JobSpec(job_id="giant", user="u", ram=1 << 30))
        for i in range(3):
            wms.submit(JobSpec(job_id=f"mid{i}", user="u", ram=1 << 30))
        wms.submit(JobSpec(job_id="small", user="u", ram=0))
        # small sits at depth 4; a budget of 2 never reaches it.
        assert wms.claim("p", capability={"ram_free": 1, "speed": 1.0}) == []

    def test_gap_backfill_prefers_short_job(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="long", user="u", work=100.0))
        wms.submit(JobSpec(job_id="short", user="u", work=1.0))
        got = wms.claim("p", capability={"ram_free": 0, "speed": 1.0}, gap=5.0)
        assert got[0]["job"]["job_id"] == "short"


class TestCompletionAndFailure:
    def test_complete_happy_path(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="j"))
        [got] = wms.claim("p")
        assert wms.complete("j", got["token"]) == {
            "job_id": "j", "state": JobState.DONE,
        }
        assert wms.status()["done"] == 1

    def test_duplicate_done_is_acknowledged(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="j"))
        [got] = wms.claim("p")
        wms.complete("j", got["token"])
        again = wms.complete("j", got["token"])
        assert again["duplicate"] is True
        assert wms.status()["done"] == 1

    def test_stale_token_is_ignored(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="j", max_attempts=5))
        [first] = wms.claim("p1")
        wms.fail("j", first["token"], "node died")
        [second] = wms.claim("p2")
        # p1's zombie report arrives late: the current attempt owns it.
        assert wms.complete("j", first["token"])["stale"] is True
        assert wms.status()["claimed"] == 1
        assert wms.complete("j", second["token"])["state"] == JobState.DONE

    def test_fail_requeues_at_front(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="j0", user="u", max_attempts=5))
        wms.submit(JobSpec(job_id="j1", user="u"))
        [got] = wms.claim("p")
        wms.fail("j0", got["token"], "boom")
        assert wms.claim("p")[0]["job"]["job_id"] == "j0"

    def test_dead_letter_after_max_attempts(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="j", max_attempts=2))
        for _ in range(2):
            [got] = wms.claim("p")
            wms.fail("j", got["token"], "boom")
        status = wms.status("j")
        assert status["state"] == JobState.DEAD
        assert status["error"] == "boom"
        assert wms.claim("p") == []

    def test_unknown_job_raises(self):
        with pytest.raises(WmsError):
            make_wms().complete("ghost", "t")


class TestReleasePilot:
    def test_release_requeues_all_claims(self):
        wms = make_wms()
        for i in range(3):
            wms.submit(JobSpec(job_id=f"j{i}", max_attempts=5))
        wms.claim("p", count=3)
        released = wms.release_pilot("p")
        assert released == ["j0", "j1", "j2"]
        assert wms.status()["pending"] == 3

    def test_release_is_idempotent(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="j", max_attempts=5))
        wms.claim("p")
        wms.release_pilot("p")
        assert wms.release_pilot("p") == []
        assert wms.status("j")["attempts"] == 1

    def test_release_respects_dead_letter(self):
        wms = make_wms()
        wms.submit(JobSpec(job_id="j", max_attempts=1))
        wms.claim("p")
        wms.release_pilot("p")
        assert wms.status("j")["state"] == JobState.DEAD


class TestJournalReplay:
    def _drive(self, wms):
        for i in range(4):
            wms.submit(JobSpec(job_id=f"j{i}", user=f"u{i % 2}", max_attempts=2))
        claimed = wms.claim("p1", count=2)
        wms.complete(claimed[0]["job"]["job_id"], claimed[0]["token"])
        wms.fail(claimed[1]["job"]["job_id"], claimed[1]["token"], "boom")
        wms.claim("p2", count=1)
        wms.release_pilot("p2")

    def test_replay_rebuilds_exact_state(self):
        journal = MemoryJournal()
        wms = make_wms(journal=journal)
        self._drive(wms)
        rebuilt = WorkloadManager.replay(journal.events, clock=make_clock())
        assert rebuilt.status() == wms.status()
        assert rebuilt.pending_jobs() == wms.pending_jobs()

    def test_replay_continues_claim_order(self):
        journal = MemoryJournal()
        wms = make_wms(journal=journal)
        self._drive(wms)
        rebuilt = WorkloadManager.replay(journal.events, clock=make_clock())
        a = [g["job"]["job_id"] for g in wms.claim("px", count=10)]
        b = [g["job"]["job_id"] for g in rebuilt.claim("px", count=10)]
        assert a == b

    def test_replay_rejects_unknown_event(self):
        with pytest.raises(WmsError):
            WorkloadManager.replay([{"ev": "mystery", "t": 0.0}])

    def test_file_journal_recover(self, tmp_path):
        path = os.fspath(tmp_path / "wms.jsonl")
        wms = make_wms(journal=FileJournal(path))
        for i in range(5):
            wms.submit(JobSpec(job_id=f"j{i}", max_attempts=3))
        claimed = wms.claim("p", count=2)
        wms.complete(claimed[0]["job"]["job_id"], claimed[0]["token"])
        # No close: the process "crashes" here.
        recovered = WorkloadManager.recover(path, clock=make_clock())
        status = recovered.status()
        assert status["done"] == 1
        assert status["claimed"] == 0  # outstanding lease requeued
        assert status["pending"] == 4
        # The recovered manager journals onward into the same file.
        recovered.claim("p2", count=1)
        recovered.close()
        events = [e["ev"] for e in FileJournal.read(path)]
        assert events.count("claim") == 3

    def test_torn_tail_is_dropped(self, tmp_path):
        path = os.fspath(tmp_path / "wms.jsonl")
        wms = make_wms(journal=FileJournal(path))
        wms.submit(JobSpec(job_id="j0"))
        wms.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"ev": "cla')  # crash mid-write
        assert [e["ev"] for e in FileJournal.read(path)] == ["submit"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = os.fspath(tmp_path / "wms.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write('{"ev": "submit"}\n')
        with pytest.raises(WmsError):
            FileJournal.read(path)

    def test_read_missing_file_is_empty(self, tmp_path):
        assert FileJournal.read(os.fspath(tmp_path / "absent.jsonl")) == []


class TestMetrics:
    def test_counters_and_depth_gauge(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry("wms-test")
        wms = make_wms(metrics=registry)
        wms.submit(JobSpec(job_id="j0", max_attempts=1))
        wms.submit(JobSpec(job_id="j1"))
        [got] = wms.claim("p")
        wms.fail("j0", got["token"], "boom")
        [got] = wms.claim("p")
        wms.complete("j1", got["token"])
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["wms.submitted"] == 2
        assert counters["wms.claims"] == 2
        assert counters["wms.jobs_claimed"] == 2
        assert counters["wms.completed"] == 1
        assert counters["wms.dead_lettered"] == 1
        assert snap["gauges"]["wms.queue_depth"] == 0

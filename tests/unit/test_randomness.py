"""Unit tests for seeded random streams."""

import pytest

from repro.simulation.randomness import RandomStream, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(42, "a") == derive_seed(42, "a")


def test_derive_seed_varies_with_label():
    assert derive_seed(42, "a") != derive_seed(42, "b")


def test_derive_seed_varies_with_root():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_same_seed_same_sequence():
    a = RandomStream(7, "workload")
    b = RandomStream(7, "workload")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_labels_independent():
    a = RandomStream(7, "x")
    b = RandomStream(7, "y")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_child_streams_deterministic():
    a = RandomStream(7, "root").child("site-0")
    b = RandomStream(7, "root").child("site-0")
    assert a.random() == b.random()


def test_uniform_in_range():
    rng = RandomStream(1, "t")
    for _ in range(100):
        assert 2.0 <= rng.uniform(2.0, 5.0) <= 5.0


def test_randint_in_range():
    rng = RandomStream(1, "t")
    for _ in range(100):
        assert 1 <= rng.randint(1, 6) <= 6


def test_exponential_positive_and_mean():
    rng = RandomStream(1, "t")
    draws = [rng.exponential(10.0) for _ in range(5000)]
    assert all(d >= 0 for d in draws)
    mean = sum(draws) / len(draws)
    assert mean == pytest.approx(10.0, rel=0.1)


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        RandomStream(1, "t").exponential(0.0)


def test_pareto_respects_minimum():
    rng = RandomStream(1, "t")
    assert all(rng.pareto(2.0, 5.0) >= 5.0 for _ in range(100))


def test_pareto_rejects_bad_params():
    rng = RandomStream(1, "t")
    with pytest.raises(ValueError):
        rng.pareto(0.0, 1.0)
    with pytest.raises(ValueError):
        rng.pareto(1.0, 0.0)


def test_bernoulli_bounds():
    rng = RandomStream(1, "t")
    assert all(rng.bernoulli(1.0) for _ in range(10))
    assert not any(rng.bernoulli(0.0) for _ in range(10))
    with pytest.raises(ValueError):
        rng.bernoulli(1.5)


def test_zipf_index_in_range_and_skewed():
    rng = RandomStream(1, "t")
    draws = [rng.zipf_index(10, skew=1.5) for _ in range(2000)]
    assert all(0 <= d < 10 for d in draws)
    # index 0 must be the most popular under Zipf
    counts = [draws.count(i) for i in range(10)]
    assert counts[0] == max(counts)


def test_zipf_rejects_empty():
    with pytest.raises(ValueError):
        RandomStream(1, "t").zipf_index(0)


def test_bytes_length():
    rng = RandomStream(1, "t")
    assert len(rng.bytes(17)) == 17


def test_sample_and_choice():
    rng = RandomStream(1, "t")
    items = list(range(10))
    picked = rng.sample(items, 3)
    assert len(picked) == 3
    assert len(set(picked)) == 3
    assert rng.choice(items) in items


def test_weighted_choice_prefers_heavy():
    rng = RandomStream(1, "t")
    draws = [rng.weighted_choice(["a", "b"], [0.99, 0.01]) for _ in range(500)]
    assert draws.count("a") > draws.count("b")

"""gridlint's own test suite: every rule proven by fixtures.

``FIXTURES`` maps each rule code to a *positive* tree (must trigger the
rule), a *negative* tree (must stay clean), and a *suppressed* tree (the
positive with a justified per-line suppression).  The meta-test at the
bottom holds the catalog to that contract, so a new rule cannot land
without documentation and both fixture directions.
"""

from __future__ import annotations

import json

import pytest

from tools.gridlint import (
    ENGINE_DIAGNOSTICS,
    Project,
    all_rules,
    load_baseline,
    render_json,
    render_text,
    rule_catalog,
    run_rules,
    write_baseline,
)
from tools.gridlint.__main__ import main as gridlint_main

# ---------------------------------------------------------------------------
# Fixture trees: {relative path: source text}
# ---------------------------------------------------------------------------

_GL101_POSITIVE = {
    "repro/core/svc.py": """\
import time

class Service:
    def start(self, loop):
        loop.register_fd(0, 1, self._on_io)

    def _on_io(self, mask):
        self._tick()

    def _tick(self):
        time.sleep(0.1)
"""
}

_GL101_NEGATIVE = {
    "repro/core/svc.py": """\
import time

class Service:
    def start(self, loop):
        loop.register_fd(0, 1, self._on_io)

    def _on_io(self, mask):
        self._tick()

    def _tick(self):
        self.count = getattr(self, "count", 0) + 1

    def off_loop_worker(self):
        # Blocking is fine here: nothing registers this with the reactor.
        time.sleep(0.1)
"""
}

_GL101_SUPPRESSED = {
    "repro/core/svc.py": """\
import time

class Service:
    def start(self, loop):
        loop.register_fd(0, 1, self._on_io)

    def _on_io(self, mask):
        time.sleep(0)  # gridlint: disable=GL101 -- sleep(0) is a deliberate yield in this fixture
"""
}

_GL102_POSITIVE = {
    "repro/core/work.py": """\
import threading

def spawn():
    worker = threading.Thread(target=print)
    worker.start()
"""
}

# Same construct inside the transport layer: sanctioned.
_GL102_NEGATIVE = {
    "repro/transport/work.py": """\
import threading

def spawn():
    worker = threading.Thread(target=print)
    worker.start()
"""
}

_GL102_SUPPRESSED = {
    "repro/core/work.py": """\
import threading

def spawn():
    worker = threading.Thread(target=print)  # gridlint: disable=GL102 -- fixture thread, joined immediately
    worker.start()
"""
}

_GL103_POSITIVE = {
    "repro/core/pair.py": """\
class Pair:
    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass
"""
}

_GL103_NEGATIVE = {
    "repro/core/pair.py": """\
class Pair:
    def forward(self):
        with self._a:
            with self._b:
                pass

    def also_forward(self):
        with self._a:
            with self._b:
                pass
"""
}

_GL103_SUPPRESSED = {
    "repro/core/pair.py": """\
class Pair:
    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:  # gridlint: disable=GL103 -- fixture: never runs concurrently with forward
                pass
"""
}

_GL105_POSITIVE = {
    "repro/core/guards.py": """\
class RsaAuthGuard:
    def __init__(self, public_key):
        self.public_key = public_key

    def __call__(self, message, peer):
        if not self.public_key.verify(message.body, message.sig):
            return message.reply(402, {})
        return None
"""
}

# HMAC in the guard is the sanctioned budget; RSA *off* the guard path
# (login-time verification) must not trip the rule either.
_GL105_NEGATIVE = {
    "repro/core/guards.py": """\
import hashlib
import hmac


class TokenAuthGuard:
    def __init__(self, key):
        self._key = key

    def __call__(self, message, peer):
        mac = hmac.new(self._key, message.body, hashlib.sha256).digest()
        if not hmac.compare_digest(mac, message.sig):
            return message.reply(402, {})
        return None


class LoginService:
    def login(self, public_key, blob, sig):
        # Per-login RSA is fine: it runs once, not per message.
        return public_key.verify(blob, sig)
"""
}

_GL105_SUPPRESSED = {
    "repro/core/guards.py": """\
class LegacyRsaGuard:
    def __init__(self, public_key):
        self.public_key = public_key

    def __call__(self, message, peer):
        self.public_key.verify(message.body, message.sig)  # gridlint: disable=GL105 -- fixture: legacy-mode gate on one low-rate admin op
        return None
"""
}

_GL201_POSITIVE = {
    "repro/core/protocol.py": """\
class Op:
    HELLO = 100
    PING = 100

IDEMPOTENT_OPS = frozenset({Op.HELLO, Op.MISSING})
"""
}

_GL201_NEGATIVE = {
    "repro/core/protocol.py": """\
class Op:
    HELLO = 100
    PING = 200

IDEMPOTENT_OPS = frozenset({Op.HELLO, Op.PING})
"""
}

_GL201_SUPPRESSED = {
    "repro/core/protocol.py": """\
class Op:
    HELLO = 100
    PING = 100  # gridlint: disable=GL201 -- fixture alias kept for wire compatibility

IDEMPOTENT_OPS = frozenset({Op.HELLO})
"""
}

_GL301_POSITIVE = {
    "repro/core/handler.py": """\
class Handler:
    def __init__(self, metrics):
        self.metrics = metrics

    def handle(self, message):
        self.metrics.counter("handled").inc()
"""
}

_GL301_NEGATIVE = {
    "repro/core/handler.py": """\
class Handler:
    def __init__(self, metrics):
        self.metrics = metrics
        self._m_handled = metrics.counter("handled")

    def handle(self, message):
        self._m_handled.inc()
"""
}

_GL301_SUPPRESSED = {
    "repro/core/handler.py": """\
class Handler:
    def __init__(self, metrics):
        self.metrics = metrics

    def handle(self, message):
        self.metrics.counter("handled").inc()  # gridlint: disable=GL301 -- fixture: cold path, called once at shutdown
"""
}

_GL401_POSITIVE = {
    "repro/simulation/jitter.py": """\
import random
import time

def jitter():
    return random.random() + time.time()
"""
}

_GL401_NEGATIVE = {
    "repro/simulation/jitter.py": """\
import random

_RNG = random.Random(7)

def jitter(clock):
    return _RNG.random() + clock.now()
"""
}

_GL401_SUPPRESSED = {
    "repro/simulation/jitter.py": """\
import time

def wall_clock_label():
    return time.time()  # gridlint: disable=GL401 -- fixture: label only, never feeds results
"""
}

_GL104_POSITIVE = {
    "repro/core/shardmgr.py": """\
import multiprocessing
import os

from repro.transport.reactor import get_global_reactor


def spawn_worker(config):
    ctx = multiprocessing.get_context("fork")
    return ctx.Process(target=worker_main, args=(config,))


def worker_main(config):
    reactor = get_global_reactor()
    if os.fork() == 0:
        return reactor
"""
}

_GL104_NEGATIVE = {
    "repro/core/shardmgr.py": """\
import multiprocessing

from repro.transport.reactor import Reactor


def spawn_worker(config):
    ctx = multiprocessing.get_context("spawn")
    return ctx.Process(target=worker_main, args=(config,))


def worker_main(config):
    # Shared-nothing: the worker builds its own stack from scratch.
    return Reactor(loops=1, name="worker")
""",
    "repro/core/other.py": """\
from repro.transport.reactor import get_global_reactor


def fine_outside_shard_modules():
    # The global reactor is the norm everywhere but the shard layer.
    return get_global_reactor()
""",
}

_GL104_SUPPRESSED = {
    "repro/core/shardmgr.py": """\
import multiprocessing


def spawn_worker(config):
    ctx = multiprocessing.get_context("fork")  # gridlint: disable=GL104 -- fixture: platform with broken spawn, worker execs immediately
    return ctx.Process(target=worker_main, args=(config,))


def worker_main(config):
    return None
"""
}

_GL106_POSITIVE = {
    "repro/core/counter.py": """\
from repro.obs.racesan import shared_state


@shared_state
class Counter:
    def __init__(self, loop):
        self.hits = 0
        loop.register_fd(0, 1, self._on_io)

    def _on_io(self, mask):
        self.hits += 1
"""
}

_GL106_NEGATIVE = {
    "repro/core/counter.py": """\
import threading

from repro.obs.racesan import shared_state


@shared_state
class Counter:
    def __init__(self, loop):
        self.hits = 0
        self._lock = threading.Lock()
        loop.register_fd(0, 1, self._on_io)

    def _on_io(self, mask):
        with self._lock:
            self.hits += 1
"""
}

_GL106_SUPPRESSED = {
    "repro/core/counter.py": """\
from repro.obs.racesan import shared_state


@shared_state
class Counter:
    def __init__(self, loop):
        self.hits = 0
        loop.register_fd(0, 1, self._on_io)

    def _on_io(self, mask):
        self.hits += 1  # gridlint: disable=GL106 -- loop-confined: only the registering loop runs _on_io
"""
}

_GL107_POSITIVE = {
    "repro/core/worker.py": """\
import threading

from repro.obs.racesan import shared_state


@shared_state
class Worker:
    def __init__(self):
        self.stop = False
        threading.Thread(target=self._run).start()
        self.interval = 0.5

    def _run(self):
        return self.interval
"""
}

_GL107_NEGATIVE = {
    "repro/core/worker.py": """\
import threading

from repro.obs.racesan import shared_state


@shared_state
class Worker:
    def __init__(self):
        # Publish last: every field settles before the thread can look.
        self.stop = False
        self.interval = 0.5
        threading.Thread(target=self._run).start()

    def _run(self):
        return self.interval
"""
}

_GL107_SUPPRESSED = {
    "repro/core/worker.py": """\
import threading

from repro.obs.racesan import shared_state


@shared_state
class Worker:
    def __init__(self):
        self.stop = False
        self.started = threading.Event()
        threading.Thread(target=self._run).start()
        self.interval = 0.5  # gridlint: disable=GL107 -- the spawned side waits on self.started before reading fields

    def _run(self):
        self.started.wait(1.0)
        return self.interval
"""
}

FIXTURES: dict[str, dict[str, dict[str, str]]] = {
    "GL101": {
        "positive": _GL101_POSITIVE,
        "negative": _GL101_NEGATIVE,
        "suppressed": _GL101_SUPPRESSED,
    },
    "GL102": {
        "positive": _GL102_POSITIVE,
        "negative": _GL102_NEGATIVE,
        "suppressed": _GL102_SUPPRESSED,
    },
    "GL103": {
        "positive": _GL103_POSITIVE,
        "negative": _GL103_NEGATIVE,
        "suppressed": _GL103_SUPPRESSED,
    },
    "GL104": {
        "positive": _GL104_POSITIVE,
        "negative": _GL104_NEGATIVE,
        "suppressed": _GL104_SUPPRESSED,
    },
    "GL105": {
        "positive": _GL105_POSITIVE,
        "negative": _GL105_NEGATIVE,
        "suppressed": _GL105_SUPPRESSED,
    },
    "GL201": {
        "positive": _GL201_POSITIVE,
        "negative": _GL201_NEGATIVE,
        "suppressed": _GL201_SUPPRESSED,
    },
    "GL301": {
        "positive": _GL301_POSITIVE,
        "negative": _GL301_NEGATIVE,
        "suppressed": _GL301_SUPPRESSED,
    },
    "GL401": {
        "positive": _GL401_POSITIVE,
        "negative": _GL401_NEGATIVE,
        "suppressed": _GL401_SUPPRESSED,
    },
    "GL106": {
        "positive": _GL106_POSITIVE,
        "negative": _GL106_NEGATIVE,
        "suppressed": _GL106_SUPPRESSED,
    },
    "GL107": {
        "positive": _GL107_POSITIVE,
        "negative": _GL107_NEGATIVE,
        "suppressed": _GL107_SUPPRESSED,
    },
}


def lint(tmp_path, files: dict[str, str], **kwargs):
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    project = Project.load([tmp_path], root=tmp_path)
    return run_rules(project, **kwargs)


def codes_of(result) -> list[str]:
    return [finding.code for finding in result.findings]


# ---------------------------------------------------------------------------
# Per-rule fixtures
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_fires_on_positive_fixture(tmp_path, code):
    result = lint(tmp_path, FIXTURES[code]["positive"], select={code})
    assert code in codes_of(result), render_text(result)
    assert result.exit_code == 1


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_stays_quiet_on_negative_fixture(tmp_path, code):
    result = lint(tmp_path, FIXTURES[code]["negative"], select={code})
    assert codes_of(result) == [], render_text(result)
    assert result.exit_code == 0


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_justified_suppression_silences_rule(tmp_path, code):
    result = lint(tmp_path, FIXTURES[code]["suppressed"], select={code})
    assert codes_of(result) == [], render_text(result)
    assert len(result.suppressed) >= 1
    assert all(finding.code == code for finding in result.suppressed)


# ---------------------------------------------------------------------------
# Rule-specific sharp edges
# ---------------------------------------------------------------------------


def test_gl105_add_guard_function_chain(tmp_path):
    """RSA reached through a helper chain from add_guard() is caught."""
    files = {
        "repro/core/svc.py": """\
class Service:
    def wire(self, pipe):
        pipe.add_guard(self._check_rsa)

    def _check_rsa(self, message, peer):
        return self._verify(message)

    def _verify(self, message):
        return self.keypair.sign(message.body)
"""
    }
    result = lint(tmp_path, files, select={"GL105"})
    assert "GL105" in codes_of(result), render_text(result)


def test_gl106_externally_locked_chain_is_exempt(tmp_path):
    """The FrameDecoder idiom: the shared class takes no lock itself,
    but every reactor path into it crosses a lock-holding call site."""
    files = {
        "repro/core/chan.py": """\
from repro.obs.racesan import shared_state


@shared_state
class Decoder:
    def feed(self, data):
        self.buf = data


class Chan:
    def start(self, loop):
        loop.register_fd(0, 1, self._on_io)

    def _on_io(self, mask):
        with self._rx_lock:
            self._decoder.feed(b"x")


def off_loop_copy():
    # A thread-confined decoder: unlocked by design, and unreachable
    # from any reactor seed, so it must not poison the exemption.
    decoder = Decoder()
    decoder.feed(b"y")
"""
    }
    result = lint(tmp_path, files, select={"GL106"})
    assert codes_of(result) == [], render_text(result)


def test_gl106_one_unlocked_chain_defeats_exemption(tmp_path):
    """Two seed paths, one locked and one bare: the bare one wins."""
    files = {
        "repro/core/chan.py": """\
from repro.obs.racesan import shared_state


@shared_state
class Decoder:
    def feed(self, data):
        self.buf = data


class Chan:
    def start(self, loop):
        loop.register_fd(0, 1, self._on_io)
        loop.call_later(0.1, self._poll)

    def _on_io(self, mask):
        with self._rx_lock:
            self._decoder.feed(b"x")

    def _poll(self):
        self._decoder.feed(b"y")
"""
    }
    result = lint(tmp_path, files, select={"GL106"})
    assert codes_of(result) == ["GL106"], render_text(result)


def test_gl101_reaches_through_partial(tmp_path):
    """functools.partial(fn, ...) registrations resolve to fn."""
    files = {
        "repro/core/svc.py": """\
import time
from functools import partial


class Service:
    def start(self, loop):
        loop.register_fd(0, 1, partial(self._on_io, "tag"))

    def _on_io(self, tag, mask):
        time.sleep(0.1)
"""
    }
    result = lint(tmp_path, files, select={"GL101"})
    assert codes_of(result) == ["GL101"], render_text(result)


def test_gl101_reaches_through_wrapper_and_local_assignment(tmp_path):
    """cb = traced(self._tick); loop.call_later(..., cb) resolves to
    both the wrapper and the wrapped callable."""
    files = {
        "repro/core/svc.py": """\
import time


def traced(fn):
    return fn


class Service:
    def start(self, loop):
        cb = traced(self._tick)
        loop.call_later(0.1, cb)

    def _tick(self):
        time.sleep(0.1)
"""
    }
    result = lint(tmp_path, files, select={"GL101"})
    assert codes_of(result) == ["GL101"], render_text(result)


def test_gl101_partial_of_clean_callback_stays_quiet(tmp_path):
    files = {
        "repro/core/svc.py": """\
from functools import partial


class Service:
    def start(self, loop):
        loop.register_fd(0, 1, partial(self._on_io, "tag"))

    def _on_io(self, tag, mask):
        self.count = getattr(self, "count", 0) + 1
"""
    }
    result = lint(tmp_path, files, select={"GL101"})
    assert codes_of(result) == [], render_text(result)


def test_gl101_blocking_dispatch_handlers_are_exempt(tmp_path):
    """register(..., blocking=True) hands the handler to a worker pool."""
    files = {
        "repro/core/svc.py": """\
import time

class Service:
    def wire(self, pipe):
        pipe.register(Op.SLOW, self._slow, blocking=True)

    def _slow(self, message):
        time.sleep(0.5)
"""
    }
    result = lint(tmp_path, files, select={"GL101"})
    assert codes_of(result) == [], render_text(result)


def test_gl101_reaches_through_lambdas(tmp_path):
    files = {
        "repro/core/svc.py": """\
import time

class Service:
    def start(self, loop):
        loop.call_later(0.1, lambda: self._tick())

    def _tick(self):
        time.sleep(1.0)
"""
    }
    result = lint(tmp_path, files, select={"GL101"})
    assert "GL101" in codes_of(result), render_text(result)


def test_gl201_register_of_undeclared_op(tmp_path):
    files = {
        "repro/core/protocol.py": """\
class Op:
    HELLO = 100

IDEMPOTENT_OPS = frozenset({Op.HELLO})
""",
        "repro/core/wiring.py": """\
def wire(pipe, handler):
    pipe.register(Op.BOGUS, handler)
    pipe.register(Op.HELLO, handler)
    pipe.register(Op.HELLO, handler)
""",
    }
    result = lint(tmp_path, files, select={"GL201"})
    messages = [finding.message for finding in result.findings]
    assert any("Op.BOGUS" in message for message in messages), messages
    assert any("more than once" in message for message in messages), messages


def test_gl103_reports_interprocedural_cycles(tmp_path):
    files = {
        "repro/core/pair.py": """\
class Pair:
    def forward(self):
        with self._a:
            self.helper()

    def helper(self):
        with self._b:
            pass

    def backward(self):
        with self._b:
            with self._a:
                pass
"""
    }
    result = lint(tmp_path, files, select={"GL103"})
    assert "GL103" in codes_of(result), render_text(result)


# ---------------------------------------------------------------------------
# Engine diagnostics: the suppression contract
# ---------------------------------------------------------------------------


def test_unjustified_suppression_does_not_suppress(tmp_path):
    files = {
        "repro/core/handler.py": (
            "class Handler:\n"
            "    def handle(self, message):\n"
            "        self.metrics.counter('x').inc()  # gridlint: disable=GL301\n"
        )
    }
    result = lint(tmp_path, files)
    codes = codes_of(result)
    assert "GL301" in codes  # the finding survives
    assert "GL001" in codes  # and the bad suppression is itself reported


def test_unknown_code_in_suppression_is_gl002(tmp_path):
    files = {
        "repro/core/empty.py": "x = 1  # gridlint: disable=GL999 -- no such rule\n"
    }
    result = lint(tmp_path, files)
    assert codes_of(result) == ["GL002"]


def test_stale_suppression_is_gl003(tmp_path):
    files = {
        "repro/core/empty.py": "x = 1  # gridlint: disable=GL102 -- nothing here spawns threads\n"
    }
    result = lint(tmp_path, files)
    assert codes_of(result) == ["GL003"]


def test_multi_code_suppression(tmp_path):
    files = {
        "repro/core/work.py": """\
import threading

def spawn(metrics):
    t = threading.Thread(target=metrics.counter("spawns").inc)  # gridlint: disable=GL102,GL301 -- fixture: both rules hit this line
    t.start()
"""
    }
    result = lint(tmp_path, files, select={"GL102", "GL301"})
    assert codes_of(result) == [], render_text(result)
    assert {finding.code for finding in result.suppressed} == {"GL102", "GL301"}


# ---------------------------------------------------------------------------
# Baselines and reporters
# ---------------------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    result = lint(tmp_path, FIXTURES["GL102"]["positive"])
    assert result.exit_code == 1
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, result)
    baseline = load_baseline(baseline_file)
    assert baseline == {finding.key for finding in result.findings}

    rebaselined = lint(tmp_path, FIXTURES["GL102"]["positive"], baseline=baseline)
    assert rebaselined.exit_code == 0
    assert len(rebaselined.baselined) == len(result.findings)


def test_json_reporter_shape(tmp_path):
    result = lint(tmp_path, FIXTURES["GL301"]["positive"])
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["checked_files"] == 1
    assert payload["rules"] == [r.code for r in all_rules()]
    (finding,) = payload["findings"]
    assert finding["code"] == "GL301"
    assert finding["path"].endswith("handler.py")
    assert isinstance(finding["line"], int)


def test_cli_end_to_end(tmp_path, capsys):
    target = tmp_path / "repro" / "core" / "work.py"
    target.parent.mkdir(parents=True)
    target.write_text(_GL102_POSITIVE["repro/core/work.py"], encoding="utf-8")

    exit_code = gridlint_main([str(tmp_path), "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "GL102" in out

    exit_code = gridlint_main(
        [str(tmp_path), "--root", str(tmp_path), "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"], payload

    exit_code = gridlint_main([str(tmp_path / "missing")])
    assert exit_code == 2
    assert "not found" in capsys.readouterr().err

    exit_code = gridlint_main([str(tmp_path), "--select", "GL777"])
    assert exit_code == 2


def _git(tmp_path, *argv):
    import subprocess

    subprocess.run(
        ["git", "-c", "user.email=t@t.invalid", "-c", "user.name=t", *argv],
        cwd=tmp_path,
        check=True,
        capture_output=True,
    )


def test_cli_changed_only_scopes_to_the_diff(tmp_path, capsys, monkeypatch):
    """Findings in files untouched since BASE are dropped; changed and
    brand-new files keep theirs.  The whole tree is still parsed."""
    monkeypatch.chdir(tmp_path)
    _git(tmp_path, "init", "-q")
    old = tmp_path / "repro" / "core" / "old.py"
    old.parent.mkdir(parents=True)
    old.write_text(_GL102_POSITIVE["repro/core/work.py"], encoding="utf-8")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")

    exit_code = gridlint_main(
        [str(tmp_path), "--root", str(tmp_path), "--changed-only", "HEAD"]
    )
    out = capsys.readouterr().out
    assert exit_code == 0, out  # the committed finding is out of scope
    assert "0 finding(s)" in out

    new = tmp_path / "repro" / "core" / "new.py"
    new.write_text(_GL102_POSITIVE["repro/core/work.py"], encoding="utf-8")
    exit_code = gridlint_main(
        [str(tmp_path), "--root", str(tmp_path), "--changed-only", "HEAD"]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "new.py" in out and "old.py" not in out


def test_cli_changed_only_outside_git_is_a_usage_error(
    tmp_path, capsys, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "nowhere"))
    target = tmp_path / "repro" / "core" / "work.py"
    target.parent.mkdir(parents=True)
    target.write_text(_GL102_POSITIVE["repro/core/work.py"], encoding="utf-8")
    exit_code = gridlint_main(
        [str(tmp_path), "--root", str(tmp_path), "--changed-only"]
    )
    assert exit_code == 2
    assert "--changed-only failed" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert gridlint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in list(FIXTURES) + list(ENGINE_DIAGNOSTICS):
        assert code in out


# ---------------------------------------------------------------------------
# Meta-test: catalog and fixture coverage are complete
# ---------------------------------------------------------------------------


def test_every_rule_has_docs_and_fixtures():
    rules = all_rules()
    assert len(rules) >= 6, "the tree must ship at least six active rules"
    catalog = rule_catalog()
    for instance in rules:
        entry = catalog[instance.code]
        assert entry["title"], f"{instance.code} has no title"
        assert entry["doc"], f"{instance.code} has no documentation"
        fixture = FIXTURES.get(instance.code)
        assert fixture is not None, f"{instance.code} has no fixtures"
        assert fixture.get("positive"), f"{instance.code} has no positive fixture"
        assert fixture.get("negative"), f"{instance.code} has no negative fixture"
        assert fixture.get("suppressed"), f"{instance.code} has no suppression fixture"
    for code in ENGINE_DIAGNOSTICS:
        assert catalog[code]["title"], f"{code} missing from catalog"


def test_repo_tree_is_clean():
    """The shipped tree lints clean — the CI gate in test form."""
    project = Project.load(["src/repro"])
    result = run_rules(project)
    assert result.exit_code == 0, "\n" + render_text(result)

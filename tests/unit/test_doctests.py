"""Run the doctests embedded in module and class docstrings.

Keeps every usage example in the documentation honest.
"""

import doctest

import pytest

import repro.security.dh
import repro.simulation.engine


@pytest.mark.parametrize(
    "module",
    [
        repro.simulation.engine,
        repro.security.dh,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0


def test_grid_class_doctest():
    """The Grid docstring example spins up real middleware; run it."""
    import repro.core.grid as grid_module

    runner = doctest.DocTestRunner(verbose=False)
    finder = doctest.DocTestFinder()
    ran = 0
    globs = {"Grid": grid_module.Grid}
    for test in finder.find(grid_module.Grid, "Grid", globs=globs):
        if test.examples:
            runner.run(test)
            ran += len(test.examples)
    assert ran > 0
    assert runner.failures == 0


def test_package_doctest():
    """The top-level quick tour in repro/__init__.py must work."""
    import repro

    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0

"""Unit tests for workload generators."""

import pytest

from repro.control.scheduler import Job, next_job_id, reset_job_ids
from repro.simulation.randomness import RandomStream
from repro.workloads.generators import (
    JobStreamSpec,
    generate_job_stream,
    master_worker_trace,
    ring_trace,
    stencil_trace,
    synthetic_status,
    trace_locality,
)


class TestJobStream:
    def test_deterministic_for_seed(self):
        spec = JobStreamSpec(count=20)
        a = generate_job_stream(spec, RandomStream(1, "jobs"))
        b = generate_job_stream(spec, RandomStream(1, "jobs"))
        assert [(x.arrival_time, x.job.work) for x in a] == [
            (x.arrival_time, x.job.work) for x in b
        ]

    def test_arrivals_monotonic(self):
        stream = generate_job_stream(JobStreamSpec(count=50), RandomStream(2, "jobs"))
        times = [a.arrival_time for a in stream]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_work_respects_minimum(self):
        spec = JobStreamSpec(count=100, work_minimum=5.0)
        stream = generate_job_stream(spec, RandomStream(3, "jobs"))
        assert all(a.job.work >= 5.0 for a in stream)

    def test_heavy_tail_present(self):
        spec = JobStreamSpec(count=500, work_shape=1.2, work_minimum=1.0)
        stream = generate_job_stream(spec, RandomStream(4, "jobs"))
        works = sorted(a.job.work for a in stream)
        # Top decile should dominate the median by a large factor.
        assert works[-1] > 10 * works[len(works) // 2]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            JobStreamSpec(count=0)
        with pytest.raises(ValueError):
            JobStreamSpec(mean_interarrival=0.0)

    def test_job_ids_are_stream_scoped(self):
        """Bit-for-bit reproducibility regression (issue 7 satellite).

        Ids must not come from the scheduler's process-global allocator:
        the same seed yields the same ids — including ids — no matter
        what else allocated Jobs earlier in the process.
        """
        spec = JobStreamSpec(count=20)
        a = generate_job_stream(spec, RandomStream(1, "jobs"))
        Job(work=1.0)  # burn global allocator ids between the runs
        Job(work=1.0)
        b = generate_job_stream(spec, RandomStream(1, "jobs"))
        assert [x.job for x in a] == [x.job for x in b]
        assert [x.job.job_id for x in a] == list(range(1, 21))


class TestJobIdReset:
    def test_reset_restores_auto_id_sequence(self):
        reset_job_ids()
        first = [Job(work=1.0).job_id for _ in range(3)]
        reset_job_ids()
        second = [Job(work=1.0).job_id for _ in range(3)]
        assert first == second == [1, 2, 3]

    def test_reset_with_start(self):
        reset_job_ids(start=100)
        assert next_job_id() == 100
        assert Job(work=1.0).job_id == 101
        reset_job_ids()  # leave the allocator in a known state


class TestTraces:
    def test_ring_counts(self):
        trace = ring_trace(nprocs=4, rounds=3, message_bytes=100)
        assert len(trace) == 12
        assert trace.total_bytes == 1200
        assert all(dst == (src + 1) % 4 for src, dst, _ in trace.messages)

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            ring_trace(0, 1, 1)

    def test_master_worker_shape(self):
        trace = master_worker_trace(nprocs=4, tasks=6, request_bytes=10, result_bytes=90)
        assert len(trace) == 12
        requests = [m for m in trace.messages if m[0] == 0]
        replies = [m for m in trace.messages if m[1] == 0]
        assert len(requests) == len(replies) == 6
        assert {m[1] for m in requests} == {1, 2, 3}  # round-robin workers

    def test_master_worker_needs_workers(self):
        with pytest.raises(ValueError):
            master_worker_trace(1, 1, 1, 1)

    def test_stencil_neighbours_only(self):
        trace = stencil_trace(side=3, iterations=1, halo_bytes=8)
        for src, dst, _ in trace.messages:
            sr, sc = divmod(src, 3)
            dr, dc = divmod(dst, 3)
            assert abs(sr - dr) + abs(sc - dc) == 1

    def test_stencil_interior_has_four_neighbours(self):
        trace = stencil_trace(side=3, iterations=1, halo_bytes=8)
        centre_sends = [m for m in trace.messages if m[0] == 4]
        assert len(centre_sends) == 4

    def test_locality_contiguous_vs_strided(self):
        trace = ring_trace(nprocs=8, rounds=1, message_bytes=1)
        contiguous = {r: ("A" if r < 4 else "B") for r in range(8)}
        strided = {r: ("A" if r % 2 == 0 else "B") for r in range(8)}
        assert trace_locality(trace, contiguous) == pytest.approx(6 / 8)
        assert trace_locality(trace, strided) == 0.0

    def test_locality_single_site_is_one(self):
        trace = ring_trace(nprocs=4, rounds=1, message_bytes=1)
        assert trace_locality(trace, {r: "A" for r in range(4)}) == 1.0


class TestSyntheticStatus:
    def test_shape(self):
        status = synthetic_status(3, 5, RandomStream(1, "status"))
        assert sorted(status) == ["site0", "site1", "site2"]
        assert all(len(entries) == 5 for entries in status.values())
        entry = status["site0"][0]
        assert {"node", "site", "cpu_speed", "ram_free", "disk_free",
                "running_tasks", "alive"} <= set(entry)

    def test_deterministic(self):
        a = synthetic_status(2, 3, RandomStream(7, "status"))
        b = synthetic_status(2, 3, RandomStream(7, "status"))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_status(0, 1, RandomStream(1, "s"))

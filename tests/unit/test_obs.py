"""Unit tests for the observability layer: registry, spans, wire format.

The registry must stay correct under the concurrency it is built for
(many threads incrementing the same instrument), the histogram's
fixed-bucket quantiles must honour their edges exactly, span linkage
must reconstruct parent/child across hops, and the trace header must
survive the frame codec byte-for-byte (golden blobs below pin the wire
format: a peer from this commit and any later one must interoperate).
"""

import binascii
import threading

import pytest

from repro.core.grid import Grid
from repro.core.protocol import ControlMessage, Op
from repro.obs import (
    MetricsRegistry,
    ObsHub,
    SpanRecorder,
    TraceContext,
    current_trace,
    mint_trace,
    set_enabled,
    use_trace,
)
from repro.transport.frames import decode_frame, encode_frame


class TestRegistryThreadSafety:
    def test_concurrent_counter_increments_all_land(self):
        registry = MetricsRegistry("t")
        counter = registry.counter("hits")
        threads_n, per_thread = 8, 5000

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == threads_n * per_thread

    def test_concurrent_mixed_instruments_do_not_corrupt(self):
        registry = MetricsRegistry("t")
        gauge = registry.gauge("depth")
        histogram = registry.histogram("lat", bounds=[0.1, 1.0])
        rounds = 2000

        def gauge_worker():
            for _ in range(rounds):
                gauge.add(3)
                gauge.add(-3)

        def hist_worker():
            for _ in range(rounds):
                histogram.observe(0.05)

        threads = [threading.Thread(target=gauge_worker) for _ in range(4)]
        threads += [threading.Thread(target=hist_worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value == 0
        assert histogram.count == 4 * rounds

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry("t")
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")  # same name, different kind


class TestHistogramBuckets:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        registry = MetricsRegistry("t")
        h = registry.histogram("edges", bounds=[1.0, 2.0, 5.0])
        # Exactly on an edge counts into that bucket, not the next.
        for value in (1.0, 2.0, 5.0):
            h.observe(value)
        snap = h.to_dict()
        assert snap["buckets"] == [[1.0, 1], [2.0, 1], [5.0, 1]]
        assert snap["overflow"] == 0

    def test_overflow_bucket_and_max(self):
        registry = MetricsRegistry("t")
        h = registry.histogram("over", bounds=[1.0])
        h.observe(0.5)
        h.observe(99.0)
        snap = h.to_dict()
        assert snap["overflow"] == 1
        assert snap["max"] == 99.0
        # Quantiles that land in the overflow bucket report the observed
        # max, not infinity — an answer an operator can read.
        assert snap["p99"] == 99.0

    def test_quantiles_come_from_bucket_edges(self):
        registry = MetricsRegistry("t")
        h = registry.histogram("q", bounds=[0.1, 0.5, 1.0])
        for _ in range(99):
            h.observe(0.05)
        h.observe(0.7)
        snap = h.to_dict()
        assert snap["p50"] == 0.1  # 50th falls in the first bucket
        assert snap["p99"] == 0.1
        assert snap["count"] == 100


class TestSpanLinkage:
    def test_child_span_links_to_parent_across_recorders(self):
        """Two recorders play two proxies: the handler-side span must
        carry the originator's trace id and point at its span id."""
        a = SpanRecorder(origin="proxy.A")
        b = SpanRecorder(origin="proxy.B")
        root = a.start("request.JOB_SUBMIT")
        wire = root.context.to_wire()  # what the control header carries
        parent = TraceContext.from_wire(wire)
        child = b.start("handle.JOB_SUBMIT", parent=parent)
        child.finish()
        root.finish()
        (b_rec,) = b.records()
        (a_rec,) = a.records()
        assert b_rec["trace_id"] == a_rec["trace_id"]
        assert b_rec["parent_id"] == a_rec["span_id"]
        assert b_rec["origin"] == "proxy.B"

    def test_thread_local_trace_install_and_restore(self):
        assert current_trace() is None
        ctx = mint_trace()
        with use_trace(ctx):
            assert current_trace() is ctx
            inner = mint_trace()
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is ctx
        assert current_trace() is None

    def test_disabled_recorder_commits_nothing(self):
        recorder = SpanRecorder(origin="dark")
        set_enabled(False)
        try:
            span = recorder.start("request.PING")
            span.finish()
        finally:
            set_enabled(True)
        assert recorder.records() == []
        assert recorder.recorded == 0

    def test_capacity_bound_drops_oldest_and_counts(self):
        recorder = SpanRecorder(origin="small", capacity=2)
        for i in range(3):
            recorder.start(f"s{i}").finish()
        records = recorder.records()
        assert [r["name"] for r in records] == ["s1", "s2"]
        assert recorder.dropped == 1
        assert recorder.recorded == 3


# Golden wire blobs: a traced PING request and its traced PONG reply,
# encoded by this commit.  These bytes are the compatibility contract
# for the expandable trace header — regenerate only with a deliberate
# wire-format bump.
GOLDEN_TRACED_REQUEST = (
    "47580101000000000000007900000012080000000405000000026f700300000002006505"
    "0000000269640300000002002a050000000673656e646572050000000770726f78792e41"
    "0500000005747261636508000000020500000003746964050000001030306666303066663"
    "0306666303066660500000003736964050000000861623132616231320800000001050000"
    "00016b03000000020001"
)
GOLDEN_TRACED_REPLY = (
    "47580101000000000000008d00000005080000000505000000026f700300000002006605"
    "0000000269640300000002002b050000000673656e646572050000000770726f78792e42"
    "05000000087265706c795f746f0300000002002a0500000005747261636508000000020500"
    "000003746964050000001030306666303066663030666630306666050000000373696405"
    "000000086162313261623132"
    "0800000000"
)


class TestTraceWireFormat:
    TRACE = {"tid": "00ff00ff00ff00ff", "sid": "ab12ab12"}

    def _request(self) -> ControlMessage:
        return ControlMessage(
            op=Op.PING, body={"k": 1}, message_id=42, sender="proxy.A",
            trace=dict(self.TRACE),
        )

    def test_traced_request_matches_golden_bytes(self):
        data = encode_frame(self._request().to_frame())
        assert data == binascii.unhexlify(GOLDEN_TRACED_REQUEST)

    def test_traced_reply_matches_golden_bytes(self):
        reply = ControlMessage(
            op=Op.PONG, body={}, message_id=43, reply_to=42, sender="proxy.B",
            trace=dict(self.TRACE),
        )
        data = encode_frame(reply.to_frame())
        assert data == binascii.unhexlify(GOLDEN_TRACED_REPLY)

    def test_trace_survives_encode_decode_round_trip(self):
        message = self._request()
        decoded = ControlMessage.from_frame(
            decode_frame(encode_frame(message.to_frame()))
        )
        assert decoded.trace == self.TRACE
        assert TraceContext.from_wire(decoded.trace) == TraceContext(
            trace_id=self.TRACE["tid"], span_id=self.TRACE["sid"]
        )

    def test_golden_bytes_decode_to_traced_message(self):
        frame = decode_frame(binascii.unhexlify(GOLDEN_TRACED_REQUEST))
        message = ControlMessage.from_frame(frame)
        assert message.op == Op.PING
        assert message.trace == self.TRACE
        assert message.body == {"k": 1}

    def test_untraced_message_has_no_trace_header(self):
        message = ControlMessage(op=Op.PING, body={}, message_id=1)
        frame = message.to_frame()
        assert "trace" not in frame.headers
        assert ControlMessage.from_frame(frame).trace is None

    def test_malformed_trace_header_is_dropped_not_fatal(self):
        message = ControlMessage(op=Op.PING, body={}, message_id=1)
        frame = message.to_frame()
        frame.headers["trace"] = "not-a-dict"
        assert ControlMessage.from_frame(frame).trace is None

    def test_reply_inherits_request_trace(self):
        reply = self._request().reply(Op.PONG, {})
        assert reply.trace == self.TRACE


class TestObsDumpAcceptance:
    def test_two_proxy_request_yields_per_hop_spans(self):
        """The acceptance scenario: one request crossing two proxies must
        surface a span at each hop, linked into one trace, via OBS_DUMP."""
        with Grid() as grid:
            grid.add_site("A", nodes=1)
            grid.add_site("B", nodes=1)
            grid.connect_all()
            grid.add_user("alice", "pw")
            grid.grant("user:alice", "site:*", "submit")
            assert grid.submit_job(
                "alice", "pw", "echo", {"value": 5},
                origin_site="A", target_site="B",
            ) == 5
            a = grid.proxy_of("A")
            origin_spans = [
                s for s in a.obs.spans.records()
                if s["name"] == "request.JOB_SUBMIT"
            ]
            assert origin_spans, "originating proxy recorded no request span"
            trace_id = origin_spans[-1]["trace_id"]
            view = grid.global_observability(via_site="A", trace_id=trace_id)
            b_spans = view["B"]["spans"]
            assert any(s["name"] == "handle.JOB_SUBMIT" for s in b_spans)
            handler = next(
                s for s in b_spans if s["name"] == "handle.JOB_SUBMIT"
            )
            assert handler["trace_id"] == trace_id
            assert handler["parent_id"] == origin_spans[-1]["span_id"]

    def test_dump_is_wire_safe_and_filters_by_trace(self):
        hub = ObsHub("p")
        hub.metrics.counter("c").inc(3)
        span = hub.spans.start("request.PING")
        span.finish()
        hub.spans.start("request.PONG").finish()
        dump = hub.dump(trace_id=span.trace_id, include_process=False)
        assert dump["metrics"]["counters"] == {"c": 3}
        assert [s["name"] for s in dump["spans"]] == ["request.PING"]
        # Wire-safety: the dump must survive the frame codec untouched.
        from repro.transport.frames import decode_value, encode_value

        assert decode_value(encode_value(dump)) == dump

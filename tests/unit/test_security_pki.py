"""Unit tests for certificates, the CA, handshake, auth and tickets."""

import pytest

from repro.security.auth import (
    AccessControlList,
    AuthenticationError,
    Credential,
    PermissionDenied,
    UserDirectory,
)
from repro.security.ca import CertificationAuthority
from repro.security.certs import Certificate, CertificateError
from repro.security.handshake import (
    HandshakeError,
    accept_secure,
    connect_secure,
)
from repro.security.rsa import RsaKeyPair
from repro.security.tickets import Ticket, TicketError, TicketService
from repro.transport.frames import Frame, FrameKind
from repro.transport.inproc import channel_pair

KEY_BITS = 512


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now


@pytest.fixture(scope="module")
def proxy_key():
    return RsaKeyPair.generate(KEY_BITS)


@pytest.fixture(scope="module")
def node_key():
    return RsaKeyPair.generate(KEY_BITS)


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def ca(clock):
    return CertificationAuthority(key_bits=KEY_BITS, clock=clock)


class TestCertificates:
    def test_issue_and_validate(self, ca, proxy_key, clock):
        cert = ca.issue("proxy.siteA", "proxy", proxy_key.public)
        ca.validate(cert, expected_role="proxy")  # no exception
        assert cert.subject == "proxy.siteA"
        assert cert.issuer == ca.name

    def test_serialisation_round_trip(self, ca, proxy_key):
        cert = ca.issue("proxy.siteA", "proxy", proxy_key.public)
        restored = Certificate.from_bytes(cert.to_bytes())
        assert restored.subject == cert.subject
        assert restored.public_key == cert.public_key
        assert restored.signature == cert.signature

    def test_expired_certificate_rejected(self, ca, proxy_key, clock):
        cert = ca.issue("proxy.siteA", "proxy", proxy_key.public, lifetime=10.0)
        clock.now += 11.0
        with pytest.raises(CertificateError, match="expired"):
            ca.validate(cert)

    def test_not_yet_valid_rejected(self, ca, proxy_key, clock):
        cert = ca.issue("proxy.siteA", "proxy", proxy_key.public)
        clock.now -= 100.0
        with pytest.raises(CertificateError, match="not yet valid"):
            ca.validate(cert)

    def test_wrong_role_rejected(self, ca, proxy_key):
        cert = ca.issue("node.1", "node", proxy_key.public)
        with pytest.raises(CertificateError, match="role"):
            ca.validate(cert, expected_role="proxy")

    def test_forged_signature_rejected(self, ca, proxy_key, clock):
        cert = ca.issue("proxy.siteA", "proxy", proxy_key.public)
        forged = Certificate(**{**cert.__dict__, "subject": "proxy.evil"})
        with pytest.raises(CertificateError, match="signature"):
            forged.check(ca.public_key, clock())

    def test_wrong_ca_rejected(self, proxy_key, clock):
        ca1 = CertificationAuthority(key_bits=KEY_BITS, clock=clock)
        ca2 = CertificationAuthority(key_bits=KEY_BITS, clock=clock)
        cert = ca1.issue("proxy.siteA", "proxy", proxy_key.public)
        with pytest.raises(CertificateError):
            cert.check(ca2.public_key, clock())

    def test_revocation(self, ca, proxy_key):
        cert = ca.issue("proxy.siteA", "proxy", proxy_key.public)
        ca.revoke(cert.serial)
        assert ca.is_revoked(cert.serial)
        with pytest.raises(CertificateError, match="revoked"):
            ca.validate(cert)

    def test_revoke_unknown_serial(self, ca):
        with pytest.raises(KeyError):
            ca.revoke(9999)

    def test_ca_self_signed_root(self, ca, clock):
        ca.certificate.check(ca.public_key, clock())
        assert ca.certificate.role == "ca"

    def test_malformed_certificate_rejected(self):
        with pytest.raises(CertificateError):
            Certificate.from_bytes(b"garbage")

    def test_issue_validates_arguments(self, ca, proxy_key):
        with pytest.raises(ValueError):
            ca.issue("", "proxy", proxy_key.public)
        with pytest.raises(ValueError):
            ca.issue("x", "proxy", proxy_key.public, lifetime=0)


def run_handshake(ca, clock, client_key, server_key, mode="dh", **server_kwargs):
    """Drive both handshake ends over an in-process pair; returns channels."""
    import threading

    client_cert = ca.issue("proxy.siteA", "proxy", client_key.public)
    server_cert = ca.issue("proxy.siteB", "proxy", server_key.public)
    a, b = channel_pair("hs")
    result = {}

    def server():
        result["server"] = accept_secure(
            b, server_key, server_cert, ca.public_key, clock, **server_kwargs
        )

    thread = threading.Thread(target=server)
    thread.start()
    client = connect_secure(
        a, client_key, client_cert, ca.public_key, clock, mode=mode
    )
    thread.join(timeout=10.0)
    return client, result["server"]


class TestHandshake:
    @pytest.mark.parametrize("mode", ["dh", "rsa"])
    def test_secure_round_trip(self, ca, clock, proxy_key, node_key, mode):
        client, server = run_handshake(ca, clock, proxy_key, node_key, mode=mode)
        client.send(Frame(kind=FrameKind.CONTROL, headers={"op": "PING"}))
        frame = server.recv(timeout=5.0)
        assert frame.headers == {"op": "PING"}
        server.send(Frame(kind=FrameKind.CONTROL, headers={"op": "PONG"}))
        assert client.recv(timeout=5.0).headers == {"op": "PONG"}

    def test_peer_identity_exposed(self, ca, clock, proxy_key, node_key):
        client, server = run_handshake(ca, clock, proxy_key, node_key)
        assert client.peer.subject == "proxy.siteB"
        assert server.peer.subject == "proxy.siteA"

    def test_headers_are_confidential(self, ca, clock, proxy_key, node_key):
        """Tunneled frame headers must not appear on the inner channel."""
        import threading

        client_cert = ca.issue("c", "proxy", proxy_key.public)
        server_cert = ca.issue("s", "proxy", node_key.public)
        a, b = channel_pair("hs")
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(
                server=accept_secure(b, node_key, server_cert, ca.public_key, clock)
            )
        )
        thread.start()
        client = connect_secure(a, proxy_key, client_cert, ca.public_key, clock)
        thread.join(timeout=10.0)
        client.send(
            Frame(kind=FrameKind.CONTROL, headers={"op": "SECRET_OPERATION"})
        )
        carrier = b.recv(timeout=5.0)  # read the raw record from the inner side
        assert b"SECRET_OPERATION" not in carrier.payload
        assert carrier.headers == {}

    def test_untrusted_client_rejected(self, ca, clock, proxy_key, node_key):
        import threading

        rogue_ca = CertificationAuthority(key_bits=KEY_BITS, clock=clock)
        client_cert = rogue_ca.issue("evil", "proxy", proxy_key.public)
        server_cert = ca.issue("s", "proxy", node_key.public)
        a, b = channel_pair("hs")
        errors = []

        def server():
            try:
                accept_secure(b, node_key, server_cert, ca.public_key, clock)
            except HandshakeError as exc:
                errors.append(exc)

        thread = threading.Thread(target=server)
        thread.start()
        with pytest.raises(HandshakeError):
            # Client trusts the rogue CA, so it rejects the server's cert
            # (signed by the real CA) — either side may fail first.
            connect_secure(a, proxy_key, client_cert, rogue_ca.public_key, clock)
        thread.join(timeout=10.0)

    def test_expired_server_cert_rejected(self, ca, clock, proxy_key, node_key):
        import threading

        client_cert = ca.issue("c", "proxy", proxy_key.public)
        server_cert = ca.issue("s", "proxy", node_key.public, lifetime=10.0)
        clock.now += 100.0
        a, b = channel_pair("hs")

        def server():
            try:
                accept_secure(b, node_key, server_cert, ca.public_key, clock)
            except HandshakeError:
                pass

        thread = threading.Thread(target=server)
        thread.start()
        with pytest.raises(HandshakeError, match="certificate"):
            connect_secure(a, proxy_key, client_cert, ca.public_key, clock)
        thread.join(timeout=10.0)

    def test_role_enforcement(self, ca, clock, proxy_key, node_key):
        client, server = run_handshake(
            ca, clock, proxy_key, node_key, expected_peer_role="proxy"
        )
        assert server.peer.role == "proxy"

    def test_revocation_check_blocks_client(self, ca, clock, proxy_key, node_key):
        import threading

        client_cert = ca.issue("c", "proxy", proxy_key.public)
        server_cert = ca.issue("s", "proxy", node_key.public)
        ca.revoke(client_cert.serial)
        a, b = channel_pair("hs")
        errors = []

        def server():
            try:
                accept_secure(
                    b,
                    node_key,
                    server_cert,
                    ca.public_key,
                    clock,
                    revocation_check=lambda cert: ca.is_revoked(cert.serial),
                )
            except HandshakeError as exc:
                errors.append(str(exc))

        thread = threading.Thread(target=server)
        thread.start()
        with pytest.raises(HandshakeError):
            connect_secure(a, proxy_key, client_cert, ca.public_key, clock)
        thread.join(timeout=10.0)
        assert any("revoked" in e for e in errors)

    def test_unknown_mode_rejected(self, ca, clock, proxy_key):
        cert = ca.issue("c", "proxy", proxy_key.public)
        a, _ = channel_pair("hs")
        with pytest.raises(HandshakeError, match="mode"):
            connect_secure(a, proxy_key, cert, ca.public_key, clock, mode="quantum")


class TestUserDirectory:
    def test_password_authentication(self):
        users = UserDirectory()
        users.add_user("alice", "s3cret")
        users.authenticate_password("alice", "s3cret")

    def test_wrong_password_rejected(self):
        users = UserDirectory()
        users.add_user("alice", "s3cret")
        with pytest.raises(AuthenticationError):
            users.authenticate_password("alice", "wrong")

    def test_unknown_user_rejected(self):
        users = UserDirectory()
        with pytest.raises(AuthenticationError):
            users.authenticate_password("nobody", "x")

    def test_disabled_user_rejected(self):
        users = UserDirectory()
        users.add_user("alice", "pw")
        users.disable_user("alice")
        with pytest.raises(AuthenticationError):
            users.authenticate_password("alice", "pw")

    def test_duplicate_user_rejected(self):
        users = UserDirectory()
        users.add_user("alice", "pw")
        with pytest.raises(ValueError):
            users.add_user("alice", "pw2")

    def test_password_change(self):
        users = UserDirectory()
        users.add_user("alice", "old")
        users.set_password("alice", "new")
        users.authenticate_password("alice", "new")
        with pytest.raises(AuthenticationError):
            users.authenticate_password("alice", "old")

    def test_signature_verification(self, proxy_key):
        users = UserDirectory()
        users.add_user("alice", "pw", public_key=proxy_key.public)
        message = b"submit job 42"
        users.verify_signature("alice", message, proxy_key.sign(message))
        with pytest.raises(AuthenticationError):
            users.verify_signature("alice", b"other", proxy_key.sign(message))

    def test_signature_without_key_rejected(self):
        users = UserDirectory()
        users.add_user("alice", "pw")
        with pytest.raises(AuthenticationError):
            users.verify_signature("alice", b"m", b"sig")

    def test_remove_user_clears_groups(self):
        users = UserDirectory()
        users.add_user("alice", "pw")
        users.create_group("physics")
        users.add_to_group("physics", "alice")
        users.remove_user("alice")
        assert users.groups_of("alice") == set()

    def test_group_membership(self):
        users = UserDirectory()
        users.add_user("alice", "pw")
        users.create_group("physics")
        users.create_group("admins")
        users.add_to_group("physics", "alice")
        assert users.groups_of("alice") == {"physics"}
        users.remove_from_group("physics", "alice")
        assert users.groups_of("alice") == set()

    def test_group_errors(self):
        users = UserDirectory()
        users.create_group("g")
        with pytest.raises(ValueError):
            users.create_group("g")
        with pytest.raises(KeyError):
            users.add_to_group("nope", "alice")
        with pytest.raises(KeyError):
            users.add_to_group("g", "ghost")


class TestAcl:
    def make(self):
        users = UserDirectory()
        users.add_user("alice", "pw")
        users.add_user("bob", "pw")
        users.create_group("physics")
        users.add_to_group("physics", "alice")
        return users, AccessControlList(users)

    def test_deny_by_default(self):
        _, acl = self.make()
        assert not acl.is_allowed("alice", "site:A", "submit")

    def test_user_grant(self):
        _, acl = self.make()
        acl.grant("user:alice", "site:A", "submit")
        assert acl.is_allowed("alice", "site:A", "submit")
        assert not acl.is_allowed("bob", "site:A", "submit")

    def test_group_grant(self):
        _, acl = self.make()
        acl.grant("group:physics", "site:*", "submit")
        assert acl.is_allowed("alice", "site:B", "submit")
        assert not acl.is_allowed("bob", "site:B", "submit")

    def test_wildcard_action(self):
        _, acl = self.make()
        acl.grant("user:alice", "mpi:run", "*")
        assert acl.is_allowed("alice", "mpi:run", "anything")

    def test_deny_overrides_grant(self):
        _, acl = self.make()
        acl.grant("group:physics", "site:*", "submit")
        acl.deny("user:alice", "site:secret", "submit")
        assert acl.is_allowed("alice", "site:open", "submit")
        assert not acl.is_allowed("alice", "site:secret", "submit")

    def test_check_raises(self):
        _, acl = self.make()
        with pytest.raises(PermissionDenied):
            acl.check("alice", "site:A", "submit")

    def test_bad_principal_rejected(self):
        _, acl = self.make()
        with pytest.raises(ValueError):
            acl.grant("alice", "site:A", "submit")
        with pytest.raises(ValueError):
            acl.grant("user:", "site:A", "submit")


class TestCredential:
    def test_round_trip_and_verify(self, proxy_key):
        cred = Credential.issue("alice", "proxy.siteA", 100.0, proxy_key)
        restored = Credential.from_bytes(cred.to_bytes())
        restored.verify(proxy_key.public, now=200.0)
        assert restored.userid == "alice"

    def test_expired_rejected(self, proxy_key):
        cred = Credential.issue("alice", "proxy.siteA", 100.0, proxy_key)
        with pytest.raises(AuthenticationError, match="expired"):
            cred.verify(proxy_key.public, now=100.0 + 7200.0)

    def test_future_rejected(self, proxy_key):
        cred = Credential.issue("alice", "proxy.siteA", 1000.0, proxy_key)
        with pytest.raises(AuthenticationError, match="future"):
            cred.verify(proxy_key.public, now=100.0)

    def test_forged_rejected(self, proxy_key, node_key):
        cred = Credential.issue("alice", "proxy.siteA", 100.0, proxy_key)
        with pytest.raises(AuthenticationError, match="signature"):
            cred.verify(node_key.public, now=200.0)


class TestTickets:
    def make_service(self, clock):
        users = UserDirectory()
        users.add_user("alice", "pw")
        service = TicketService(users, clock, key_bits=KEY_BITS)
        return users, service

    def test_issue_and_verify(self, clock):
        _, service = self.make_service(clock)
        ticket = service.issue("alice", "pw", rights=["mpi:run"])
        service.verify(ticket, required_right="mpi:run")
        assert ticket.userid == "alice"

    def test_wrong_password_no_ticket(self, clock):
        _, service = self.make_service(clock)
        with pytest.raises(AuthenticationError):
            service.issue("alice", "wrong", rights=["mpi:run"])

    def test_expired_ticket_rejected(self, clock):
        _, service = self.make_service(clock)
        ticket = service.issue("alice", "pw", rights=["*"], lifetime=10.0)
        clock.now += 11.0
        with pytest.raises(TicketError, match="expired"):
            service.verify(ticket)

    def test_missing_right_rejected(self, clock):
        _, service = self.make_service(clock)
        ticket = service.issue("alice", "pw", rights=["mpi:run"])
        with pytest.raises(TicketError, match="lacks right"):
            service.verify(ticket, required_right="admin")

    def test_wildcard_right(self, clock):
        _, service = self.make_service(clock)
        ticket = service.issue("alice", "pw", rights=["*"])
        service.verify(ticket, required_right="anything")

    def test_serialisation_round_trip(self, clock):
        _, service = self.make_service(clock)
        ticket = service.issue("alice", "pw", rights=["a", "b"])
        restored = Ticket.from_bytes(ticket.to_bytes())
        service.verify(restored, required_right="a")
        assert restored.rights == ["a", "b"]

    def test_tampered_ticket_rejected(self, clock):
        _, service = self.make_service(clock)
        ticket = service.issue("alice", "pw", rights=["mpi:run"])
        forged = Ticket(
            userid="mallory",
            rights=ticket.rights,
            issued_at=ticket.issued_at,
            expires_at=ticket.expires_at,
            issuer=ticket.issuer,
            payload=ticket._payload.replace(b"alice", b"malry"),
            signature=ticket.signature,
        )
        with pytest.raises(TicketError, match="signature"):
            service.verify(forged)

    def test_offline_verification_with_public_key(self, clock):
        _, service = self.make_service(clock)
        ticket = service.issue("alice", "pw", rights=["mpi:run"])
        # A remote proxy verifies with only the public key and its clock.
        TicketService.verify_with_key(
            ticket, service.public_key, clock(), required_right="mpi:run"
        )

    def test_malformed_ticket_rejected(self):
        with pytest.raises(TicketError):
            Ticket.from_bytes(b"junk")

    def test_invalid_lifetime_rejected(self, clock):
        _, service = self.make_service(clock)
        with pytest.raises(ValueError):
            service.issue("alice", "pw", rights=[], lifetime=-1.0)

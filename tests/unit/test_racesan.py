"""Unit tests for the lockset/ownership data-race sanitizer.

Dynamic race detection only sees interleavings that actually happen, so
every two-thread scenario here forces strict alternation with a pair of
events — a plain ``for`` loop of a few hundred GIL-fast iterations can
finish before the other thread ever runs.

Each test runs a *scoped* sanitizer so the session-wide one (installed
by the root conftest) keeps its own verdicts untouched.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import racesan
from repro.transport import reactor as reactor_mod

ROUNDS = 12


@racesan.shared_state
class Box:
    """Minimal shared object: one counter, one lock to (not) use."""

    def __init__(self) -> None:
        self.value = 0
        self.lock = threading.Lock()


class PlainBox:
    """Undecorated twin, instrumented via watch() in one test only."""

    def __init__(self) -> None:
        self.value = 0


def _alternate(step_a, step_b, rounds: int = ROUNDS) -> None:
    """Run step_a and step_b in strict a/b/a/b alternation on two fresh
    threads, so the sanitizer provably observes an interleaving."""
    turn_a, turn_b = threading.Event(), threading.Event()
    turn_a.set()
    stalls: list[str] = []

    def run(my_turn: threading.Event, other: threading.Event, step) -> None:
        for _ in range(rounds):
            if not my_turn.wait(timeout=5.0):
                stalls.append("stalled")
                return
            my_turn.clear()
            step()
            other.set()

    t_a = threading.Thread(target=run, args=(turn_a, turn_b, step_a), name="rs-a")
    t_b = threading.Thread(target=run, args=(turn_b, turn_a, step_b), name="rs-b")
    t_a.start()
    t_b.start()
    t_a.join(timeout=10.0)
    t_b.join(timeout=10.0)
    assert not stalls and not t_a.is_alive() and not t_b.is_alive()


# ---------------------------------------------------------------------------
# State machine
# ---------------------------------------------------------------------------


def test_interleaved_unlocked_writes_are_a_race():
    with racesan.scoped() as san:
        box = Box()

        def bump() -> None:
            box.value += 1

        _alternate(bump, bump)
        assert len(san.races) == 1
        report = san.races[0]
        assert report.key == ("Box", "value")
        text = report.render()
        assert "no common lock" in text
        assert "rs-a" in text or "rs-b" in text
        # Both sides of the conflicting pair carry a stack.
        assert report.current.sites and report.other is not None
        assert report.other.sites
        with pytest.raises(racesan.RaceError):
            san.assert_clean()


def test_common_lock_keeps_the_field_clean():
    with racesan.scoped() as san:
        box = Box()

        def bump() -> None:
            with box.lock:
                box.value += 1

        _alternate(bump, bump)
        assert san.races == []
        san.assert_clean()


def test_init_then_publish_is_free():
    """Constructor writes and a single-owner handoff never race."""
    with racesan.scoped() as san:
        box = Box()
        box.value = 41  # still the constructing thread: EXCLUSIVE

        def consume() -> None:
            for _ in range(ROUNDS):
                box.value += 1

        worker = threading.Thread(target=consume)
        worker.start()
        worker.join(timeout=5.0)
        assert san.races == []


def test_handoff_to_thread_after_owner_died_is_free():
    with racesan.scoped() as san:
        box = Box()
        first = threading.Thread(target=lambda: setattr(box, "value", 1))
        first.start()
        first.join(timeout=5.0)
        # The first accessor's thread has exited: this is a transfer.
        second = threading.Thread(target=lambda: setattr(box, "value", 2))
        second.start()
        second.join(timeout=5.0)
        box.value += 1  # even the constructor may take it back
        assert san.races == []


def test_read_only_sharing_never_reports():
    with racesan.scoped() as san:
        box = Box()
        box.value = 7

        def read() -> None:
            assert box.value == 7

        _alternate(read, read)
        assert san.races == []


def test_transfer_declares_a_new_exclusive_owner():
    with racesan.scoped() as san:
        box = Box()
        done = threading.Event()

        def own_it() -> None:
            box.value += 1
            done.set()

        worker = threading.Thread(target=own_it)
        worker.start()
        assert done.wait(timeout=5.0)
        racesan.transfer(box)
        # Without transfer() this return of the original owner while the
        # worker may still be alive would begin lockset refinement.
        box.value += 1
        worker.join(timeout=5.0)
        assert san.races == []


def test_watch_instruments_undecorated_classes():
    with racesan.scoped() as san:
        box = racesan.watch(PlainBox())

        def bump() -> None:
            box.value += 1

        _alternate(bump, bump)
        assert [r.key for r in san.races] == [("PlainBox", "value")]


def test_constructor_resets_recycled_object_state():
    with racesan.scoped() as san:
        before = san.objects_reset
        Box()
        Box()
        assert san.objects_reset == before + 2


def test_writes_are_never_sampled_out():
    with racesan.scoped(sample_every=64) as san:
        box = Box()

        def bump() -> None:
            box.value += 1

        _alternate(bump, bump)
        assert len(san.races) == 1


# ---------------------------------------------------------------------------
# Reactor-ownership token
# ---------------------------------------------------------------------------


def test_owner_token_counts_as_a_lock():
    """Accesses serialized by loop ownership need no mutex."""
    try:
        racesan.set_owner_resolver(lambda: "loop:test")
        with racesan.scoped() as san:
            box = Box()

            def bump() -> None:
                box.value += 1

            _alternate(bump, bump)
            assert san.races == []
    finally:
        racesan.set_owner_resolver(reactor_mod.current_owner)


def test_owner_token_on_one_side_only_still_races():
    tokens = {"rs-a": "loop:test", "rs-b": None}
    try:
        racesan.set_owner_resolver(
            lambda: tokens.get(threading.current_thread().name)
        )
        with racesan.scoped() as san:
            box = Box()

            def bump() -> None:
                box.value += 1

            _alternate(bump, bump)
            assert len(san.races) == 1
    finally:
        racesan.set_owner_resolver(reactor_mod.current_owner)


def test_reactor_loop_thread_resolves_to_loop_token():
    reactor = reactor_mod.Reactor(loops=1, name="rs-owner").start()
    try:
        seen: list = []
        done = threading.Event()
        reactor.call_later(
            0.0, lambda: (seen.append(reactor_mod.current_owner()), done.set())
        )
        assert done.wait(timeout=5.0)
        assert seen[0] is not None and seen[0].startswith("loop:")
        assert reactor_mod.current_owner() is None  # not a loop thread here
    finally:
        reactor.stop()


# ---------------------------------------------------------------------------
# Suppression contract
# ---------------------------------------------------------------------------


def test_justified_suppression_counts_but_does_not_raise():
    with racesan.scoped() as san:
        box = Box()

        def bump() -> None:
            box.value += 1  # racesan: ok -- fixture: deliberate unlocked bump proving the pragma works

        _alternate(bump, bump)
        assert san.races == []
        assert len(san.suppressions_hit) == 1
        assert san.suppressions_hit[0].suppressed
        san.assert_clean()


def test_bare_pragma_suppresses_nothing():
    with racesan.scoped() as san:
        box = Box()

        def bump() -> None:
            box.value += 1  # racesan: ok

        _alternate(bump, bump)
        assert len(san.races) == 1
        report = san.races[0]
        assert report.unjustified_pragma
        assert "add `-- <reason>`" in report.render()


# ---------------------------------------------------------------------------
# Stats / lifecycle plumbing
# ---------------------------------------------------------------------------


def test_stats_shape_is_json_safe():
    with racesan.scoped() as san:
        box = Box()

        def bump() -> None:
            box.value += 1

        _alternate(bump, bump)
        stats = san.stats()
        assert stats["enabled"] and stats["recording"]
        assert "Box" in stats["watched_classes"]
        assert stats["objects_tracked"] >= 1
        assert stats["accesses_sampled"] > 0
        assert len(stats["races"]) == 1
        (race,) = stats["races"]
        assert race["class"] == "Box" and race["field"] == "value"
        json.dumps(stats)  # the observability() dump must serialize


def test_scoped_leaves_the_session_sanitizer_untouched():
    outer = racesan.active()
    with racesan.scoped() as san:
        assert racesan.active() is san
        assert san is not outer
    assert racesan.active() is outer


def test_install_rejects_bad_sampling():
    with pytest.raises(ValueError):
        racesan.RaceSanitizer(sample_every=0)


def test_mode_parses_environment(monkeypatch):
    monkeypatch.setenv("REPRO_RACESAN", "0")
    assert racesan.mode() == "off"
    monkeypatch.setenv("REPRO_RACESAN", "on")
    assert racesan.mode() == "on"
    monkeypatch.delenv("REPRO_RACESAN")
    assert racesan.mode() == "auto"


# ---------------------------------------------------------------------------
# Regressions: races this sanitizer found in the tree, now fixed
# ---------------------------------------------------------------------------


def test_ticket_keeper_counters_are_thread_safe():
    """SessionTicketKeeper.issued/redeemed bump under _count_lock; two
    accept threads used to lose increments (and racesan flagged it)."""
    from repro.security.handshake import SessionTicketKeeper

    with racesan.scoped() as san:
        keeper = SessionTicketKeeper(clock=time.time)
        blob = keeper.seal(b"m" * 32, b"cert", "suite")

        def issue() -> None:
            keeper.seal(b"m" * 32, b"cert", "suite")

        def redeem() -> None:
            assert keeper.redeem(blob) is not None

        _alternate(issue, redeem)
        assert keeper.issued == 1 + ROUNDS
        assert keeper.redeemed == ROUNDS
        san.assert_clean()


def test_revocation_epoch_read_races_merge_no_more():
    """RevocationList.epoch is read by heartbeat threads while gossip
    merge bumps it; the property now reads under the list lock."""
    from repro.security.tokens import RevocationList

    with racesan.scoped() as san:
        rlist = RevocationList()
        counter = iter(range(10_000))

        def mutate() -> None:
            rlist.revoke_token(f"tok-{next(counter)}")

        def observe() -> None:
            assert rlist.epoch >= 0

        _alternate(mutate, observe)
        assert rlist.epoch == ROUNDS
        san.assert_clean()


def test_ready_callback_swap_does_not_race_the_loop():
    """ReactorTcpChannel._ready_cb is published under _rx_cond; swapping
    the callback mid-traffic used to race the loop thread's read."""
    from repro.transport.frames import Frame, FrameKind
    from repro.transport.reactor import (
        Reactor,
        ReactorTcpListener,
        connect_tcp_reactor,
    )

    reactor = Reactor(loops=1, name="rs-ready").start()
    with racesan.scoped() as san:
        listener = ReactorTcpListener(reactor=reactor)
        client = connect_tcp_reactor(
            listener.host, listener.port, reactor=reactor
        )
        server = listener.accept(timeout=5.0)
        try:
            got: list[bytes] = []
            done = threading.Event()

            def on_ready() -> None:
                frame = server.poll_recv()
                if frame is not None:
                    got.append(frame.payload)
                    if len(got) >= ROUNDS:
                        done.set()

            for i in range(ROUNDS):
                # Swap the callback while frames are in flight: the old
                # unsynchronized publish raced _on_readable's read.
                server.set_ready_callback(on_ready)
                client.send(Frame(kind=FrameKind.DATA, payload=b"p%d" % i))
            deadline = time.monotonic() + 5.0
            while not done.is_set() and time.monotonic() < deadline:
                on_ready()
                time.sleep(0.01)
            assert len(got) >= 1
        finally:
            client.close()
            server.close()
            listener.close()
            reactor.stop()
        san.assert_clean()

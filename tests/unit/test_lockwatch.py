"""LockOrderWatchdog: deterministic cycle detection tests.

Every test uses a *private* watchdog instance over raw (unwatched)
locks, so deliberately-seeded cycles never pollute the global watchdog
installed by the root conftest — which must stay clean for the whole
suite (that is the acceptance criterion it enforces).
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import lockwatch
from repro.obs.lockwatch import LockOrderError, LockOrderWatchdog


@pytest.fixture
def watchdog():
    return LockOrderWatchdog()


def wrapped(watchdog, label):
    return watchdog.wrap(lockwatch.raw_lock(), site=label)


def test_opposite_orders_are_a_violation(watchdog):
    a = wrapped(watchdog, "a")
    b = wrapped(watchdog, "b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert len(watchdog.violations) == 1
    assert "cycle" in watchdog.violations[0]
    assert "(a)" in watchdog.violations[0] and "(b)" in watchdog.violations[0]
    with pytest.raises(LockOrderError):
        watchdog.assert_clean()


def test_consistent_order_is_clean(watchdog):
    a = wrapped(watchdog, "a")
    b = wrapped(watchdog, "b")
    for _ in range(3):
        with a:
            with b:
                pass
    watchdog.assert_clean()


def test_three_lock_cycle_detected(watchdog):
    a, b, c = (wrapped(watchdog, name) for name in "abc")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:
            pass
    assert len(watchdog.violations) == 1
    assert watchdog.violations[0].count("->") == 3


def test_cycle_found_across_threads(watchdog):
    """Opposite orders in different threads, serialised so no real
    deadlock can occur — the graph still records both edges."""
    a = wrapped(watchdog, "a")
    b = wrapped(watchdog, "b")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    t1 = threading.Thread(target=forward)
    t1.start()
    t1.join()
    t2 = threading.Thread(target=backward)
    t2.start()
    t2.join()
    assert len(watchdog.violations) == 1


def test_out_of_order_release_keeps_tracking_straight(watchdog):
    """Hand-over-hand: acquire a,b; release a; acquire c while holding b.

    The recorded edges must be {a -> b, b -> c} — if release tracking
    were positional rather than by serial, the c edge would hang off the
    wrong lock and the closing check below would misfire.
    """
    a = wrapped(watchdog, "a")
    b = wrapped(watchdog, "b")
    c = wrapped(watchdog, "c")
    a.acquire()
    b.acquire()
    a.release()
    c.acquire()  # edge must be b -> c (a is no longer held)
    c.release()
    b.release()
    with a:
        with c:  # a -> c: consistent with {a->b, b->c}
            pass
    watchdog.assert_clean()
    with c:
        with b:  # c -> b closes b -> c -> b
            pass
    assert len(watchdog.violations) == 1


def test_reentrant_rlock_is_not_an_edge(watchdog):
    r = watchdog.wrap(lockwatch.raw_rlock(), site="r")
    with r:
        with r:
            pass
    watchdog.assert_clean()


def test_nonblocking_failed_acquire_records_nothing(watchdog):
    a = wrapped(watchdog, "a")
    b = wrapped(watchdog, "b")
    with a:
        pass
    a.acquire()
    try:
        # A second acquire attempt fails: must not push a held entry.
        assert not a.acquire(blocking=False)
        with b:
            pass
    finally:
        a.release()
    # Only a -> b was recorded; no self-edge, no phantom entries.
    watchdog.assert_clean()


def test_wrapped_lock_supports_condition(watchdog):
    lock = wrapped(watchdog, "cond-lock")
    cond = threading.Condition(lock)
    with cond:
        cond.notify_all()
        assert not cond.wait(timeout=0.01)
    watchdog.assert_clean()


def test_global_install_is_idempotent_and_active():
    """The root conftest installed the watchdog for the whole suite
    (REPRO_LOCKWATCH=0 disables it); install() must be idempotent."""
    import os

    if os.environ.get("REPRO_LOCKWATCH", "1") == "0":
        pytest.skip("watchdog disabled via REPRO_LOCKWATCH=0")
    active = lockwatch.active()
    assert active is not None
    assert lockwatch.install() is active
    # Locks created now are watched and fully functional.
    lock = threading.Lock()
    assert hasattr(lock, "_serial")
    with lock:
        assert lock.locked()
    assert not lock.locked()


def test_violation_report_names_creation_sites(watchdog):
    a = watchdog.wrap(lockwatch.raw_lock(), site="module.py:10")
    b = watchdog.wrap(lockwatch.raw_lock(), site="module.py:20")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    (violation,) = watchdog.violations
    assert "module.py:10" in violation
    assert "module.py:20" in violation

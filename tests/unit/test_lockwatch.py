"""LockOrderWatchdog: deterministic cycle detection tests.

Every test uses a *private* watchdog instance over raw (unwatched)
locks, so deliberately-seeded cycles never pollute the global watchdog
installed by the root conftest — which must stay clean for the whole
suite (that is the acceptance criterion it enforces).
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import lockwatch, racesan
from repro.obs.lockwatch import LockOrderError, LockOrderWatchdog
from tests.unit.test_racesan import ROUNDS, Box, _alternate


@pytest.fixture
def watchdog():
    return LockOrderWatchdog()


@pytest.fixture
def global_watchdog():
    """The suite-wide watchdog (the one racesan reads held stacks from);
    installed here only when REPRO_LOCKWATCH=0 kept conftest from it."""
    installed_here = lockwatch.active() is None
    if installed_here:
        lockwatch.install()
    try:
        yield lockwatch.active()
    finally:
        if installed_here:
            lockwatch.uninstall()


def wrapped(watchdog, label):
    return watchdog.wrap(lockwatch.raw_lock(), site=label)


def test_opposite_orders_are_a_violation(watchdog):
    a = wrapped(watchdog, "a")
    b = wrapped(watchdog, "b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert len(watchdog.violations) == 1
    assert "cycle" in watchdog.violations[0]
    assert "(a)" in watchdog.violations[0] and "(b)" in watchdog.violations[0]
    with pytest.raises(LockOrderError):
        watchdog.assert_clean()


def test_consistent_order_is_clean(watchdog):
    a = wrapped(watchdog, "a")
    b = wrapped(watchdog, "b")
    for _ in range(3):
        with a:
            with b:
                pass
    watchdog.assert_clean()


def test_three_lock_cycle_detected(watchdog):
    a, b, c = (wrapped(watchdog, name) for name in "abc")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:
            pass
    assert len(watchdog.violations) == 1
    assert watchdog.violations[0].count("->") == 3


def test_cycle_found_across_threads(watchdog):
    """Opposite orders in different threads, serialised so no real
    deadlock can occur — the graph still records both edges."""
    a = wrapped(watchdog, "a")
    b = wrapped(watchdog, "b")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    t1 = threading.Thread(target=forward)
    t1.start()
    t1.join()
    t2 = threading.Thread(target=backward)
    t2.start()
    t2.join()
    assert len(watchdog.violations) == 1


def test_out_of_order_release_keeps_tracking_straight(watchdog):
    """Hand-over-hand: acquire a,b; release a; acquire c while holding b.

    The recorded edges must be {a -> b, b -> c} — if release tracking
    were positional rather than by serial, the c edge would hang off the
    wrong lock and the closing check below would misfire.
    """
    a = wrapped(watchdog, "a")
    b = wrapped(watchdog, "b")
    c = wrapped(watchdog, "c")
    a.acquire()
    b.acquire()
    a.release()
    c.acquire()  # edge must be b -> c (a is no longer held)
    c.release()
    b.release()
    with a:
        with c:  # a -> c: consistent with {a->b, b->c}
            pass
    watchdog.assert_clean()
    with c:
        with b:  # c -> b closes b -> c -> b
            pass
    assert len(watchdog.violations) == 1


def test_reentrant_rlock_is_not_an_edge(watchdog):
    r = watchdog.wrap(lockwatch.raw_rlock(), site="r")
    with r:
        with r:
            pass
    watchdog.assert_clean()


def test_nonblocking_failed_acquire_records_nothing(watchdog):
    a = wrapped(watchdog, "a")
    b = wrapped(watchdog, "b")
    with a:
        pass
    a.acquire()
    try:
        # A second acquire attempt fails: must not push a held entry.
        assert not a.acquire(blocking=False)
        with b:
            pass
    finally:
        a.release()
    # Only a -> b was recorded; no self-edge, no phantom entries.
    watchdog.assert_clean()


def test_wrapped_lock_supports_condition(watchdog):
    lock = wrapped(watchdog, "cond-lock")
    cond = threading.Condition(lock)
    with cond:
        cond.notify_all()
        assert not cond.wait(timeout=0.01)
    watchdog.assert_clean()


def test_global_install_is_idempotent_and_active():
    """The root conftest installed the watchdog for the whole suite
    (REPRO_LOCKWATCH=0 disables it); install() must be idempotent."""
    import os

    if os.environ.get("REPRO_LOCKWATCH", "1") == "0":
        pytest.skip("watchdog disabled via REPRO_LOCKWATCH=0")
    active = lockwatch.active()
    assert active is not None
    assert lockwatch.install() is active
    # Locks created now are watched and fully functional.
    lock = threading.Lock()
    assert hasattr(lock, "_serial")
    with lock:
        assert lock.locked()
    assert not lock.locked()


# ---------------------------------------------------------------------------
# Interop with the race sanitizer (racesan reads this module's held stack)
# ---------------------------------------------------------------------------


def test_lock_created_before_install_is_invisible_until_wrapped(global_watchdog):
    """A mutex minted before install() serialises threads for real, but
    it never reports to the watchdog, so the sanitizer sees its critical
    sections as lockless and (correctly, per its evidence) flags the
    field.  The supported migration for long-lived pre-install locks is
    ``active().wrap(old_lock)`` — after which the same pattern is clean.
    """
    pre_install = lockwatch.raw_lock()  # stands in for a pre-install Lock

    with racesan.scoped() as san:
        box = Box()

        def bump() -> None:
            with pre_install:
                box.value += 1

        _alternate(bump, bump)
        assert [r.key for r in san.races] == [("Box", "value")]
        assert "no common lock" in san.races[0].render()

    wrapped_lock = global_watchdog.wrap(pre_install, site="test:pre-install")
    with racesan.scoped() as san:
        box = Box()

        def bump_wrapped() -> None:
            with wrapped_lock:
                box.value += 1

        _alternate(bump_wrapped, bump_wrapped)
        assert san.races == []
        san.assert_clean()


def test_condition_wait_notify_stays_clean_under_sanitizer(global_watchdog):
    """Condition round-trips on a watched lock while recording: wait()
    drops the lock through ``_release_save`` (the held stack must empty
    — a blocked waiter does not protect anything) and reacquires via
    ``_acquire_restore`` before the predicate re-reads shared state."""
    lock = global_watchdog.wrap(lockwatch.raw_lock(), site="test:cond")
    cond = threading.Condition(lock)

    with racesan.scoped() as san:
        box = Box()
        stalls: list[str] = []

        def producer() -> None:
            for _ in range(ROUNDS):
                with cond:
                    box.value += 1
                    cond.notify()
                    if not cond.wait_for(lambda: box.value % 2 == 0, timeout=5.0):
                        stalls.append("producer")
                        return

        def consumer() -> None:
            for _ in range(ROUNDS):
                with cond:
                    if not cond.wait_for(lambda: box.value % 2 == 1, timeout=5.0):
                        stalls.append("consumer")
                        return
                    box.value += 1
                    cond.notify()

        t_p = threading.Thread(target=producer, name="cond-prod")
        t_c = threading.Thread(target=consumer, name="cond-cons")
        t_p.start()
        t_c.start()
        t_p.join(timeout=10.0)
        t_c.join(timeout=10.0)
        assert not stalls and not t_p.is_alive() and not t_c.is_alive()
        with cond:  # the sanitizer is still recording: play by its rules
            assert box.value == 2 * ROUNDS
        san.assert_clean()


def test_violation_report_names_creation_sites(watchdog):
    a = watchdog.wrap(lockwatch.raw_lock(), site="module.py:10")
    b = watchdog.wrap(lockwatch.raw_lock(), site="module.py:20")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    (violation,) = watchdog.violations
    assert "module.py:10" in violation
    assert "module.py:20" in violation

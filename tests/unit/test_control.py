"""Unit tests for monitoring, scheduling, failure detection and location."""

import pytest

from repro.control.failure import FailureDetector, PeerState
from repro.control.info import ResourceLocator, ResourceQuery
from repro.control.monitor import GlobalStatusCompiler, SiteStatusCache
from repro.control.scheduler import (
    Job,
    LoadBalancedScheduler,
    NodeView,
    RoundRobinScheduler,
    SchedulerError,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


class TestSiteStatusCache:
    def test_fresh_record_returned(self):
        cache = SiteStatusCache(ttl=10.0)
        cache.put("A", [{"node": "A.n0"}], now=0.0)
        record = cache.get("A", now=5.0)
        assert record is not None
        assert record.entries == [{"node": "A.n0"}]

    def test_stale_record_hidden(self):
        cache = SiteStatusCache(ttl=10.0)
        cache.put("A", [], now=0.0)
        assert cache.get("A", now=11.0) is None
        assert cache.get_any_age("A") is not None

    def test_missing_site(self):
        cache = SiteStatusCache()
        assert cache.get("ghost", now=0.0) is None

    def test_stale_sites_listing(self):
        cache = SiteStatusCache(ttl=10.0)
        cache.put("A", [], now=0.0)
        cache.put("B", [], now=8.0)
        assert cache.stale_sites(["A", "B", "C"], now=12.0) == ["A", "C"]

    def test_evict(self):
        cache = SiteStatusCache()
        cache.put("A", [], now=0.0)
        cache.evict("A")
        assert cache.get_any_age("A") is None

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            SiteStatusCache(ttl=-1.0)


class TestGlobalStatusCompiler:
    def make(self, ttl=10.0):
        clock = FakeClock()
        fetches = []

        def fetch(site):
            fetches.append(site)
            return [{"node": f"{site}.n0", "alive": True}]

        compiler = GlobalStatusCompiler(
            ["A", "B", "C"], fetch, clock, ttl=ttl
        )
        return compiler, clock, fetches

    def test_single_site_query_touches_one_site(self):
        compiler, clock, fetches = self.make()
        compiler.site_status("B")
        assert fetches == ["B"]
        assert compiler.queries_sent == 1

    def test_cache_avoids_refetch_within_ttl(self):
        compiler, clock, fetches = self.make()
        compiler.site_status("A")
        clock.now = 5.0
        compiler.site_status("A")
        assert fetches == ["A"]

    def test_stale_site_refetched(self):
        compiler, clock, fetches = self.make()
        compiler.site_status("A")
        clock.now = 11.0
        compiler.site_status("A")
        assert fetches == ["A", "A"]

    def test_global_refreshes_only_stale(self):
        compiler, clock, fetches = self.make()
        compiler.site_status("A")
        clock.now = 5.0
        status = compiler.global_status()
        assert sorted(status) == ["A", "B", "C"]
        assert fetches == ["A", "B", "C"]  # A was still fresh

    def test_unknown_site_rejected(self):
        compiler, _, _ = self.make()
        with pytest.raises(KeyError):
            compiler.site_status("Z")

    def test_add_remove_site(self):
        compiler, clock, fetches = self.make()
        compiler.add_site("D")
        compiler.global_status()
        assert "D" in compiler.cache.known_sites()
        compiler.remove_site("D")
        assert "D" not in compiler.sites
        assert compiler.cache.get_any_age("D") is None


class TestSchedulers:
    def nodes(self):
        return [
            NodeView(name="A.n0", site="A", speed=1.0),
            NodeView(name="A.n1", site="A", speed=1.0),
            NodeView(name="B.n0", site="B", speed=4.0),
        ]

    def test_round_robin_cycles_in_order(self):
        scheduler = RoundRobinScheduler(self.nodes())
        names = [scheduler.assign(Job(work=1.0)) for _ in range(6)]
        assert names == ["A.n0", "A.n1", "B.n0", "A.n0", "A.n1", "B.n0"]

    def test_round_robin_skips_dead_nodes(self):
        nodes = self.nodes()
        nodes[1].alive = False
        scheduler = RoundRobinScheduler(nodes)
        names = [scheduler.assign(Job(work=1.0)) for _ in range(4)]
        assert "A.n1" not in names

    def test_round_robin_respects_ram(self):
        nodes = self.nodes()
        nodes[0].ram_free = 10
        scheduler = RoundRobinScheduler(nodes)
        name = scheduler.assign(Job(work=1.0, ram=100))
        assert name != "A.n0"

    def test_load_balanced_prefers_fast_node(self):
        scheduler = LoadBalancedScheduler(self.nodes())
        # The 4x node should take the first several jobs before the slow
        # nodes become competitive.
        names = [scheduler.assign(Job(work=4.0)) for _ in range(3)]
        assert names[0] == "B.n0"
        assert names.count("B.n0") >= 2

    def test_load_balanced_accounts_queue(self):
        scheduler = LoadBalancedScheduler(
            [
                NodeView(name="x", site="A", speed=1.0),
                NodeView(name="y", site="A", speed=1.0),
            ]
        )
        first = scheduler.assign(Job(work=10.0))
        second = scheduler.assign(Job(work=10.0))
        assert {first, second} == {"x", "y"}

    def test_load_balanced_avoids_owner_loaded_node(self):
        scheduler = LoadBalancedScheduler(
            [
                NodeView(name="busy", site="A", speed=2.0, owner_load=0.9),
                NodeView(name="idle", site="A", speed=1.0, owner_load=0.0),
            ]
        )
        assert scheduler.assign(Job(work=1.0)) == "idle"

    def test_makespan_lb_beats_rr_on_heterogeneous(self):
        jobs = [Job(work=10.0) for _ in range(12)]
        rr = RoundRobinScheduler(self.nodes())
        lb = LoadBalancedScheduler(self.nodes())
        rr.assign_all(jobs)
        lb.assign_all([Job(work=10.0) for _ in range(12)])
        assert lb.makespan_estimate() < rr.makespan_estimate()

    def test_complete_reduces_queue(self):
        scheduler = LoadBalancedScheduler(self.nodes())
        name = scheduler.assign(Job(work=5.0))
        scheduler.complete(name, 5.0)
        assert scheduler.nodes[name].queued_work == 0.0

    def test_no_eligible_node_raises(self):
        nodes = self.nodes()
        for node in nodes:
            node.alive = False
        scheduler = LoadBalancedScheduler(nodes)
        with pytest.raises(SchedulerError):
            scheduler.assign(Job(work=1.0))

    def test_empty_node_list_rejected(self):
        with pytest.raises(SchedulerError):
            RoundRobinScheduler([])

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(SchedulerError):
            RoundRobinScheduler(
                [NodeView(name="x", site="A"), NodeView(name="x", site="B")]
            )

    def test_job_validation(self):
        with pytest.raises(SchedulerError):
            Job(work=-1.0)
        with pytest.raises(SchedulerError):
            Job(work=1.0, ram=-5)

    def test_stalled_node_never_chosen_by_lb(self):
        scheduler = LoadBalancedScheduler(
            [
                NodeView(name="stalled", site="A", owner_load=1.0),
                NodeView(name="ok", site="A"),
            ]
        )
        for _ in range(3):
            assert scheduler.assign(Job(work=1.0)) == "ok"


class TestFailureDetector:
    def test_alive_until_timeout(self):
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        detector.watch("proxy.B")
        clock.now = 2.0
        detector.check()
        assert detector.state_of("proxy.B") is PeerState.ALIVE

    def test_suspect_then_dead(self):
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        detector.watch("proxy.B")
        clock.now = 5.0
        detector.check()
        assert detector.state_of("proxy.B") is PeerState.SUSPECT
        clock.now = 11.0
        detector.check()
        assert detector.state_of("proxy.B") is PeerState.DEAD

    def test_heartbeat_keeps_alive(self):
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        detector.watch("proxy.B")
        for t in [2.0, 4.0, 6.0, 8.0]:
            clock.now = t
            detector.heard_from("proxy.B")
        clock.now = 10.0
        detector.check()
        assert detector.state_of("proxy.B") is PeerState.ALIVE

    def test_recovery_fires_callback(self):
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        events = []
        detector.on_suspect.append(lambda p: events.append(("suspect", p)))
        detector.on_dead.append(lambda p: events.append(("dead", p)))
        detector.on_recover.append(lambda p: events.append(("recover", p)))
        detector.watch("proxy.B")
        clock.now = 5.0
        detector.check()
        clock.now = 11.0
        detector.check()
        detector.heard_from("proxy.B")
        assert events == [
            ("suspect", "proxy.B"),
            ("dead", "proxy.B"),
            ("recover", "proxy.B"),
        ]

    def test_transition_callbacks_fire_once(self):
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        events = []
        detector.on_dead.append(lambda p: events.append(p))
        detector.watch("proxy.B")
        clock.now = 20.0
        detector.check()
        detector.check()
        detector.check()
        assert events == ["proxy.B"]

    def test_alive_and_dead_listings(self):
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        detector.watch("proxy.B")
        detector.watch("proxy.C")
        clock.now = 11.0
        detector.heard_from("proxy.C")
        assert detector.alive_peers() == ["proxy.C"]
        assert detector.dead_peers() == ["proxy.B"]

    def test_unwatched_peer_unknown(self):
        clock = FakeClock()
        detector = FailureDetector(clock)
        with pytest.raises(KeyError):
            detector.state_of("ghost")

    def test_heard_from_unknown_starts_watching(self):
        clock = FakeClock()
        detector = FailureDetector(clock)
        detector.heard_from("new-peer")
        assert detector.state_of("new-peer") is PeerState.ALIVE

    def test_parameter_validation(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            FailureDetector(clock, suspect_after=0, dead_after=10)
        with pytest.raises(ValueError):
            FailureDetector(clock, suspect_after=5, dead_after=5)

    def test_suspect_recovery_fires_exactly_once(self):
        """Repeated heartbeats after a SUSPECT verdict recover once."""
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        recovered = []
        detector.on_recover.append(lambda p: recovered.append(p))
        detector.watch("proxy.B")
        clock.now = 5.0
        detector.check()
        assert detector.state_of("proxy.B") is PeerState.SUSPECT
        detector.heard_from("proxy.B")
        detector.heard_from("proxy.B")
        detector.heard_from("proxy.B")
        assert recovered == ["proxy.B"]
        assert detector.state_of("proxy.B") is PeerState.ALIVE

    def test_dead_recovery_fires_exactly_once(self):
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        recovered = []
        detector.on_recover.append(lambda p: recovered.append(p))
        detector.watch("proxy.B")
        clock.now = 20.0
        detector.check()
        assert detector.state_of("proxy.B") is PeerState.DEAD
        detector.heard_from("proxy.B")
        detector.heard_from("proxy.B")
        assert recovered == ["proxy.B"]

    def test_mark_dead_fires_once_and_ignores_unknown(self):
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        died = []
        detector.on_dead.append(lambda p: died.append(p))
        detector.mark_dead("ghost")  # never watched: no-op, no callback
        detector.watch("proxy.B")
        detector.mark_dead("proxy.B")
        detector.mark_dead("proxy.B")
        assert died == ["proxy.B"]
        assert detector.state_of("proxy.B") is PeerState.DEAD
        # check() must not re-announce the death it already reported.
        clock.now = 20.0
        detector.check()
        assert died == ["proxy.B"]

    def test_mark_dead_then_heartbeat_recovers(self):
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        recovered = []
        detector.on_recover.append(lambda p: recovered.append(p))
        detector.watch("proxy.B")
        detector.mark_dead("proxy.B")
        detector.heard_from("proxy.B")
        assert recovered == ["proxy.B"]
        assert detector.state_of("proxy.B") is PeerState.ALIVE

    def test_callbacks_may_reenter_the_detector(self):
        """A callback that calls back into the detector must not deadlock."""
        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        states = []
        detector.on_dead.append(lambda p: states.append(detector.state_of(p)))
        detector.watch("proxy.B")
        detector.mark_dead("proxy.B")
        assert states == [PeerState.DEAD]

    def test_concurrent_heartbeats_and_checks_fire_transitions_once(self):
        """Receiver threads hammer heard_from while a monitor thread runs
        check(): every transition is reported exactly once per state
        change, never duplicated by the race."""
        import threading

        clock = FakeClock()
        detector = FailureDetector(clock, suspect_after=3.0, dead_after=10.0)
        recovered = []
        events_lock = threading.Lock()

        def on_recover(peer):
            with events_lock:
                recovered.append(peer)

        detector.on_recover.append(on_recover)
        detector.watch("proxy.B")

        for round_number in range(20):
            # Silence long enough to be declared dead...
            clock.now += 20.0
            detector.check()
            assert detector.state_of("proxy.B") is PeerState.DEAD
            # ...then a burst of concurrent heartbeats and checks.
            barrier = threading.Barrier(8)

            def hammer():
                barrier.wait()
                for _ in range(50):
                    detector.heard_from("proxy.B")
                    detector.check()

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert detector.state_of("proxy.B") is PeerState.ALIVE
            # One DEAD -> ALIVE transition per round, no double-fires.
            assert len(recovered) == round_number + 1


class TestResourceLocator:
    def status(self):
        return {
            "A": [
                {"node": "A.n0", "site": "A", "cpu_speed": 1.0, "ram_free": 512,
                 "disk_free": 1000, "running_tasks": 0, "alive": True},
                {"node": "A.n1", "site": "A", "cpu_speed": 2.0, "ram_free": 256,
                 "disk_free": 1000, "running_tasks": 1, "alive": True},
            ],
            "B": [
                {"node": "B.n0", "site": "B", "cpu_speed": 4.0, "ram_free": 1024,
                 "disk_free": 1000, "running_tasks": 0, "alive": True},
                {"node": "B.n1", "site": "B", "cpu_speed": 4.0, "ram_free": 1024,
                 "disk_free": 1000, "running_tasks": 0, "alive": False},
            ],
        }

    def test_find_fastest_first(self):
        locator = ResourceLocator(self.status())
        found = locator.find(ResourceQuery(count=2))
        assert [e["node"] for e in found] == ["B.n0", "A.n1"]

    def test_alive_filter(self):
        locator = ResourceLocator(self.status())
        found = locator.find(ResourceQuery(count=10))
        assert "B.n1" not in [e["node"] for e in found]
        relaxed = locator.find(ResourceQuery(count=10, require_alive=False))
        assert "B.n1" in [e["node"] for e in relaxed]

    def test_ram_constraint(self):
        locator = ResourceLocator(self.status())
        found = locator.find(ResourceQuery(min_ram_free=600, count=10))
        assert [e["node"] for e in found] == ["B.n0"]

    def test_idle_constraint(self):
        locator = ResourceLocator(self.status())
        found = locator.find(ResourceQuery(require_idle=True, count=10))
        assert "A.n1" not in [e["node"] for e in found]

    def test_prefer_site_ordering(self):
        locator = ResourceLocator(self.status())
        found = locator.find(ResourceQuery(prefer_site="A", count=3))
        assert found[0]["site"] == "A"

    def test_count_matching_and_sites(self):
        locator = ResourceLocator(self.status())
        query = ResourceQuery(min_cpu_speed=1.5)
        assert locator.count_matching(query) == 2  # A.n1 and B.n0
        assert locator.sites_with_capacity(query) == ["A", "B"]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            ResourceQuery(count=0)

"""Unit tests for the sharding building blocks.

Covers the fd-passing primitives (``send_socket``/``recv_socket``), the
round-robin :class:`ShardAcceptor`, mode selection, and the metrics
fold used by the ``SHARD_STATS`` → ``OBS_DUMP`` path.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.obs.metrics import MetricsRegistry, fold_snapshots
from repro.transport.shard import (
    ShardAcceptor,
    pick_mode,
    recv_socket,
    send_socket,
    supports_fd_passing,
    supports_reuseport,
)

fd_passing = pytest.mark.skipif(
    not supports_fd_passing(), reason="socket.send_fds unavailable"
)


# ---------------------------------------------------------------------------
# fd passing
# ---------------------------------------------------------------------------


@fd_passing
class TestFdPassing:
    def test_socket_round_trips_over_unix_pair(self):
        link_a, link_b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        payload_a, payload_b = socket.socketpair()
        try:
            send_socket(link_a, payload_a)
            received = recv_socket(link_b, timeout=5.0)
            assert received is not None
            try:
                # The received descriptor is the same endpoint: bytes
                # written into it surface on the original pair's peer.
                received.sendall(b"through the wormhole")
                payload_b.settimeout(5.0)
                assert payload_b.recv(64) == b"through the wormhole"
            finally:
                received.close()
        finally:
            for s in (link_a, link_b, payload_a, payload_b):
                s.close()

    def test_recv_socket_returns_none_on_eof(self):
        link_a, link_b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        link_a.close()
        try:
            assert recv_socket(link_b, timeout=5.0) is None
        finally:
            link_b.close()

    def test_recv_socket_rejects_tagless_bytes(self):
        link_a, link_b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            link_a.sendall(b"Z")  # wrong tag, no descriptor attached
            with pytest.raises(OSError):
                recv_socket(link_b, timeout=5.0)
        finally:
            link_a.close()
            link_b.close()


# ---------------------------------------------------------------------------
# Mode selection
# ---------------------------------------------------------------------------


class TestPickMode:
    def test_explicit_modes_validate(self):
        if supports_reuseport():
            assert pick_mode("reuseport") == "reuseport"
        if supports_fd_passing():
            assert pick_mode("fdpass") == "fdpass"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            pick_mode("carrier-pigeon")

    def test_default_prefers_reuseport(self):
        mode = pick_mode(None)
        if supports_reuseport():
            assert mode == "reuseport"
        else:
            assert mode == "fdpass"


# ---------------------------------------------------------------------------
# Round-robin acceptor
# ---------------------------------------------------------------------------


@fd_passing
class TestShardAcceptor:
    def _listener(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(64)
        return sock

    def _worker_link(self, acceptor, shard_id):
        ours, theirs = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        acceptor.add_worker(shard_id, theirs)
        return ours

    def test_connections_deal_round_robin(self):
        listener = self._listener()
        acceptor = ShardAcceptor(listener, name="rr-test")
        links = {i: self._worker_link(acceptor, i) for i in range(3)}
        acceptor.start()
        conns = []
        try:
            host, port = listener.getsockname()
            for _ in range(6):
                conns.append(socket.create_connection((host, port)))
            received = {i: 0 for i in links}
            deadline = time.monotonic() + 5.0
            while sum(received.values()) < 6 and time.monotonic() < deadline:
                for shard_id, link in links.items():
                    link.settimeout(0.2)
                    try:
                        conn = recv_socket(link, timeout=0.2)
                    except (socket.timeout, OSError):
                        continue
                    if conn is not None:
                        received[shard_id] += 1
                        conn.close()
            # Perfect spread: 6 connections over 3 workers, 2 each.
            assert received == {0: 2, 1: 2, 2: 2}
            # The acceptor bumps `dealt` after the kernel hands the fd
            # over, so the receive above can race ahead of the counter.
            while sum(acceptor.dealt.values()) < 6 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sum(acceptor.dealt.values()) == 6
        finally:
            for conn in conns:
                conn.close()
            acceptor.close()
            for link in links.values():
                link.close()

    def test_dead_worker_link_is_skipped(self):
        listener = self._listener()
        acceptor = ShardAcceptor(listener, name="dead-test")
        live = self._worker_link(acceptor, 0)
        dead = self._worker_link(acceptor, 1)
        dead.close()  # worker 1 crashed: its end of the link is gone
        # Close the acceptor-held peer too so sends fail immediately.
        acceptor.start()
        conns = []
        try:
            host, port = listener.getsockname()
            for _ in range(4):
                conns.append(socket.create_connection((host, port)))
            got = 0
            deadline = time.monotonic() + 5.0
            while got < 4 and time.monotonic() < deadline:
                live.settimeout(0.2)
                try:
                    conn = recv_socket(live, timeout=0.2)
                except (socket.timeout, OSError):
                    continue
                if conn is not None:
                    got += 1
                    conn.close()
            # Every connection re-dealt to the surviving worker.
            assert got == 4
        finally:
            for conn in conns:
                conn.close()
            acceptor.close()
            live.close()


# ---------------------------------------------------------------------------
# Snapshot folding (SHARD_STATS → OBS_DUMP)
# ---------------------------------------------------------------------------


class TestFoldSnapshots:
    def _registry(self, served, latencies):
        reg = MetricsRegistry()
        counter = reg.counter("shard.served")
        for _ in range(served):
            counter.inc()
        reg.gauge("shard.backlog").add(float(served))
        hist = reg.histogram("shard.latency_ms")
        for value in latencies:
            hist.observe(value)
        return reg

    def test_counters_and_gauges_sum(self):
        a = self._registry(3, [1.0]).snapshot()
        b = self._registry(5, [2.0]).snapshot()
        folded = fold_snapshots([a, b])
        assert folded["counters"]["shard.served"] == 8
        assert folded["gauges"]["shard.backlog"] == pytest.approx(8.0)

    def test_histograms_merge_bucketwise(self):
        a = self._registry(1, [1.0, 2.0, 500.0]).snapshot()
        b = self._registry(1, [3.0, 1000.0]).snapshot()
        folded = fold_snapshots([a, b])
        merged = folded["histograms"]["shard.latency_ms"]
        assert merged["count"] == 5
        assert merged["sum"] == pytest.approx(1506.0)
        assert merged["max"] == pytest.approx(1000.0)

    def test_fold_equals_single_registry_totals(self):
        """The invariant the OBS_DUMP test leans on: folding per-worker
        registries is indistinguishable from one registry observing all
        the traffic."""
        parts = [self._registry(i + 1, [float(i + 1)]) for i in range(4)]
        whole = self._registry(sum(range(1, 5)), [1.0, 2.0, 3.0, 4.0])
        folded = fold_snapshots([p.snapshot() for p in parts])
        reference = whole.snapshot()
        assert folded["counters"] == reference["counters"]
        assert folded["gauges"] == reference["gauges"]
        f = folded["histograms"]["shard.latency_ms"]
        r = reference["histograms"]["shard.latency_ms"]
        for key in ("count", "sum", "max", "buckets"):
            assert f[key] == r[key]

    def test_fold_does_not_mutate_inputs(self):
        a = self._registry(2, [1.0]).snapshot()
        b = self._registry(2, [1.0]).snapshot()
        before = a["counters"]["shard.served"]
        fold_snapshots([a, b])
        assert a["counters"]["shard.served"] == before

    def test_empty_fold(self):
        folded = fold_snapshots([])
        assert folded["counters"] == {}
        assert folded["gauges"] == {}
        assert folded["histograms"] == {}

"""Unit tests for the in-process and TCP transports."""

import threading

import pytest

from repro.transport.errors import ChannelClosed, TransportTimeout
from repro.transport.frames import Frame, FrameKind
from repro.transport.inproc import InprocFabric, channel_pair
from repro.transport.tcp import TcpListener, connect_tcp


def data_frame(payload: bytes = b"x", **headers) -> Frame:
    return Frame(kind=FrameKind.DATA, headers=headers, payload=payload)


class TestInprocChannel:
    def test_send_recv_round_trip(self):
        a, b = channel_pair()
        a.send(data_frame(b"hello", seq=1))
        frame = b.recv(timeout=1.0)
        assert frame.payload == b"hello"
        assert frame.headers == {"seq": 1}

    def test_bidirectional(self):
        a, b = channel_pair()
        a.send(data_frame(b"ping"))
        assert b.recv(timeout=1.0).payload == b"ping"
        b.send(data_frame(b"pong"))
        assert a.recv(timeout=1.0).payload == b"pong"

    def test_order_preserved(self):
        a, b = channel_pair()
        for i in range(50):
            a.send(data_frame(seq=i))
        seqs = [b.recv(timeout=1.0).headers["seq"] for i in range(50)]
        assert seqs == list(range(50))

    def test_recv_timeout(self):
        a, b = channel_pair()
        with pytest.raises(TransportTimeout):
            b.recv(timeout=0.01)

    def test_send_after_close_raises(self):
        a, b = channel_pair()
        a.close()
        with pytest.raises(ChannelClosed):
            a.send(data_frame())

    def test_send_to_closed_peer_raises(self):
        a, b = channel_pair()
        b.close()
        with pytest.raises(ChannelClosed):
            a.send(data_frame())

    def test_recv_after_peer_close_raises(self):
        a, b = channel_pair()
        a.close()
        with pytest.raises(ChannelClosed):
            b.recv(timeout=1.0)
        # Closure is sticky.
        with pytest.raises(ChannelClosed):
            b.recv(timeout=1.0)

    def test_buffered_frames_drain_before_eof(self):
        a, b = channel_pair()
        a.send(data_frame(b"last words"))
        a.close()
        assert b.recv(timeout=1.0).payload == b"last words"
        with pytest.raises(ChannelClosed):
            b.recv(timeout=1.0)

    def test_close_is_idempotent(self):
        a, b = channel_pair()
        a.close()
        a.close()
        assert a.closed

    def test_stats_track_traffic(self):
        a, b = channel_pair()
        a.send(data_frame(b"12345"))
        b.recv(timeout=1.0)
        assert a.stats.frames_sent == 1
        assert b.stats.frames_received == 1
        assert a.stats.bytes_sent == b.stats.bytes_received
        assert a.stats.bytes_sent > 5  # wire size includes framing

    def test_context_manager_closes(self):
        a, b = channel_pair()
        with a:
            pass
        assert a.closed

    def test_threaded_producer_consumer(self):
        a, b = channel_pair()
        received = []

        def consumer():
            for _ in range(100):
                received.append(b.recv(timeout=5.0).headers["seq"])

        thread = threading.Thread(target=consumer)
        thread.start()
        for i in range(100):
            a.send(data_frame(seq=i))
        thread.join(timeout=5.0)
        assert received == list(range(100))


class TestInprocFabric:
    def test_listen_connect_accept(self):
        fabric = InprocFabric()
        listener = fabric.listen("siteA.proxy")
        client = fabric.connect("siteA.proxy")
        server = listener.accept(timeout=1.0)
        client.send(data_frame(b"hi"))
        assert server.recv(timeout=1.0).payload == b"hi"

    def test_connect_unknown_address_raises(self):
        fabric = InprocFabric()
        with pytest.raises(ChannelClosed):
            fabric.connect("nowhere")

    def test_duplicate_bind_rejected(self):
        fabric = InprocFabric()
        fabric.listen("addr")
        with pytest.raises(ValueError):
            fabric.listen("addr")

    def test_closed_listener_rejects_connects(self):
        fabric = InprocFabric()
        listener = fabric.listen("addr")
        listener.close()
        with pytest.raises(ChannelClosed):
            fabric.connect("addr")

    def test_address_freed_after_close(self):
        fabric = InprocFabric()
        fabric.listen("addr").close()
        fabric.listen("addr")  # rebinding works

    def test_addresses_listing(self):
        fabric = InprocFabric()
        fabric.listen("b")
        fabric.listen("a")
        assert fabric.addresses() == ["a", "b"]

    def test_accept_timeout(self):
        fabric = InprocFabric()
        listener = fabric.listen("addr")
        with pytest.raises(TransportTimeout):
            listener.accept(timeout=0.01)

    def test_serve_handler_gets_channels(self):
        fabric = InprocFabric()
        listener = fabric.listen("addr")
        got = []
        event = threading.Event()

        def handler(channel):
            got.append(channel)
            event.set()

        listener.serve(handler)
        fabric.connect("addr")
        assert event.wait(timeout=2.0)
        listener.close()
        assert len(got) == 1


class TestTcpTransport:
    def test_round_trip_over_real_sockets(self):
        listener = TcpListener()
        accepted = []
        done = threading.Event()

        def server():
            channel = listener.accept(timeout=5.0)
            frame = channel.recv(timeout=5.0)
            channel.send(data_frame(frame.payload.upper()))
            accepted.append(channel)
            done.set()

        thread = threading.Thread(target=server)
        thread.start()
        client = connect_tcp(*listener.address)
        client.send(data_frame(b"hello tcp"))
        reply = client.recv(timeout=5.0)
        assert reply.payload == b"HELLO TCP"
        assert done.wait(timeout=5.0)
        client.close()
        for channel in accepted:
            channel.close()
        listener.close()
        thread.join(timeout=5.0)

    def test_many_frames_order_preserved(self):
        listener = TcpListener()
        server_channels = []

        def server():
            channel = listener.accept(timeout=5.0)
            server_channels.append(channel)
            for _ in range(200):
                frame = channel.recv(timeout=5.0)
                channel.send(frame)

        thread = threading.Thread(target=server)
        thread.start()
        client = connect_tcp(*listener.address)
        for i in range(200):
            client.send(data_frame(seq=i))
        seqs = [client.recv(timeout=5.0).headers["seq"] for _ in range(200)]
        assert seqs == list(range(200))
        thread.join(timeout=5.0)
        client.close()
        for channel in server_channels:
            channel.close()
        listener.close()

    def test_recv_after_peer_close(self):
        listener = TcpListener()
        holder = []

        def server():
            channel = listener.accept(timeout=5.0)
            holder.append(channel)
            channel.send(data_frame(b"bye"))
            channel.close()

        thread = threading.Thread(target=server)
        thread.start()
        client = connect_tcp(*listener.address)
        assert client.recv(timeout=5.0).payload == b"bye"
        with pytest.raises(ChannelClosed):
            client.recv(timeout=5.0)
        thread.join(timeout=5.0)
        client.close()
        listener.close()

    def test_listener_accept_timeout(self):
        listener = TcpListener()
        with pytest.raises(TransportTimeoutOrClosed):
            listener.accept(timeout=0.05)
        listener.close()

    def test_send_after_close_raises(self):
        listener = TcpListener()
        holder = []
        thread = threading.Thread(
            target=lambda: holder.append(listener.accept(timeout=5.0))
        )
        thread.start()
        client = connect_tcp(*listener.address)
        client.close()
        with pytest.raises(ChannelClosed):
            client.send(data_frame())
        thread.join(timeout=5.0)
        for channel in holder:
            channel.close()
        listener.close()

    def test_large_payload(self):
        listener = TcpListener()
        payload = bytes(range(256)) * 4096  # 1 MiB
        holder = []

        def server():
            channel = listener.accept(timeout=5.0)
            holder.append(channel)
            channel.send(data_frame(payload))

        thread = threading.Thread(target=server)
        thread.start()
        client = connect_tcp(*listener.address)
        assert client.recv(timeout=10.0).payload == payload
        thread.join(timeout=5.0)
        client.close()
        for channel in holder:
            channel.close()
        listener.close()


    def _echo_pair(self):
        """Connected (client, server_channel, listener) over loopback."""
        listener = TcpListener()
        holder = []
        thread = threading.Thread(
            target=lambda: holder.append(listener.accept(timeout=5.0))
        )
        thread.start()
        client = connect_tcp(*listener.address)
        thread.join(timeout=5.0)
        return client, holder[0], listener

    def test_send_many_batches_arrive_in_order(self):
        client, server, listener = self._echo_pair()
        try:
            frames = [data_frame(bytes([i % 256]) * (i % 97), seq=i) for i in range(300)]
            client.send_many(frames)
            got = [server.recv(timeout=5.0) for _ in range(300)]
            assert [f.headers["seq"] for f in got] == list(range(300))
            for want, have in zip(frames, got):
                assert have.payload == want.payload
            # Coalesced writes must still account per frame, and both
            # sides must agree on the wire byte count.
            assert client.stats.frames_sent == 300
            assert server.stats.frames_received == 300
            assert client.stats.bytes_sent == server.stats.bytes_received
        finally:
            client.close()
            server.close()
            listener.close()

    def test_send_many_empty_is_noop(self):
        client, server, listener = self._echo_pair()
        try:
            client.send_many([])
            assert client.stats.frames_sent == 0
        finally:
            client.close()
            server.close()
            listener.close()

    def test_concurrent_senders_never_interleave_frames(self):
        # Multiple threads hammering send()/send_many() exercise the
        # group-commit coalescing path: whoever holds the socket lock
        # drains everyone's queued frames in one write.  Frames must
        # arrive intact and in per-sender order.
        client, server, listener = self._echo_pair()
        n_threads, per_thread = 8, 80
        try:
            def blast(tid):
                for i in range(0, per_thread, 4):
                    batch = [
                        data_frame(bytes([tid]) * 600, tid=tid, seq=i + j)
                        for j in range(4)
                    ]
                    if tid % 2:
                        client.send_many(batch)
                    else:
                        for frame in batch:
                            client.send(frame)

            threads = [
                threading.Thread(target=blast, args=(tid,)) for tid in range(n_threads)
            ]
            for t in threads:
                t.start()
            seen = {tid: [] for tid in range(n_threads)}
            for _ in range(n_threads * per_thread):
                frame = server.recv(timeout=10.0)
                tid = frame.headers["tid"]
                assert frame.payload == bytes([tid]) * 600  # no torn frames
                seen[tid].append(frame.headers["seq"])
            for t in threads:
                t.join(timeout=5.0)
            for tid, seqs in seen.items():
                assert seqs == list(range(per_thread))  # per-sender FIFO
            assert client.stats.frames_sent == n_threads * per_thread
        finally:
            client.close()
            server.close()
            listener.close()

    def test_send_many_after_close_raises(self):
        client, server, listener = self._echo_pair()
        client.close()
        with pytest.raises(ChannelClosed):
            client.send_many([data_frame()])
        server.close()
        listener.close()


# accept() may surface a timeout as TransportTimeout; keep the intent clear.
TransportTimeoutOrClosed = TransportTimeout

"""Hardening tests for the data-plane fast path under hostile sockets.

The vectored-send loop, the group-commit queue and the cipher-suite
negotiation all have to survive what real kernels do on a bad day:
``sendmsg`` returning partway through a buffer, writes trickling out a
few bytes at a time, and message boundaries landing anywhere in the TCP
stream.
"""

import socket
import threading
import time

import pytest

from repro.security.ca import CertificationAuthority
from repro.security.cipher import CIPHER_SUITES
from repro.security.handshake import (
    _LEGACY_SUITE,
    _choose_suite,
    accept_secure,
    connect_secure,
)
from repro.security.rsa import RsaKeyPair
from repro.transport.errors import ChannelClosed
from repro.transport.frames import (
    Frame,
    FrameDecoder,
    FrameKind,
    encode_frame,
)
from repro.transport.tcp import TcpChannel, TcpListener, _IOV_MAX, _sendall_views


# ---------------------------------------------------------------------------
# _sendall_views: partial sendmsg returns
# ---------------------------------------------------------------------------


class FakeSock:
    """A socket whose sendmsg follows a scripted plan of partial returns.

    Each plan entry caps the bytes "sent" by one call (an OSError entry
    raises instead); once the plan runs dry, calls send everything they
    were given.
    """

    def __init__(self, plan=()):
        self.plan = list(plan)
        self.written = bytearray()
        self.call_sizes = []

    def sendmsg(self, buffers):
        self.call_sizes.append(len(buffers))
        total = sum(len(b) for b in buffers)
        allowed = total
        if self.plan:
            step = self.plan.pop(0)
            if isinstance(step, Exception):
                raise step
            allowed = min(step, total)
        remaining = allowed
        for buffer in buffers:
            take = min(len(buffer), remaining)
            self.written += bytes(buffer[:take])
            remaining -= take
            if remaining == 0:
                break
        return allowed


VIEWS = [b"hello ", b"", b"wor", b"ld", b"!" * 40, b"tail"]
JOINED = b"".join(VIEWS)


def test_sendall_views_complete_writes():
    sock = FakeSock()
    _sendall_views(sock, VIEWS)
    assert bytes(sock.written) == JOINED
    assert sock.call_sizes == [len([v for v in VIEWS if v])]


def test_sendall_views_survives_one_byte_returns():
    sock = FakeSock(plan=[1] * (len(JOINED) - 1))
    _sendall_views(sock, VIEWS)
    assert bytes(sock.written) == JOINED


def test_sendall_views_survives_midbuffer_partials():
    # 7 lands mid-"hello ", then mid-"!"-run, etc.
    sock = FakeSock(plan=[7, 2, 11, 3])
    _sendall_views(sock, VIEWS)
    assert bytes(sock.written) == JOINED


def test_sendall_views_respects_iov_max():
    views = [b"x"] * (_IOV_MAX * 2 + 100)
    sock = FakeSock(plan=[50])  # and a partial for good measure
    _sendall_views(sock, views)
    assert bytes(sock.written) == b"x" * len(views)
    assert all(size <= _IOV_MAX for size in sock.call_sizes)
    assert len(sock.call_sizes) >= 3


def test_sendall_views_propagates_error_after_partial():
    sock = FakeSock(plan=[5, OSError("EPIPE")])
    with pytest.raises(OSError):
        _sendall_views(sock, VIEWS)
    assert bytes(sock.written) == JOINED[:5]


# ---------------------------------------------------------------------------
# TcpChannel group commit over a trickling socket
# ---------------------------------------------------------------------------


class TrickleSock:
    """Delegates to a real socket but sends at most ``limit`` bytes per
    sendmsg — every frame crosses the wire in many partial writes."""

    def __init__(self, sock, limit=3):
        self._sock = sock
        self.limit = limit
        self.sendmsg_calls = 0

    def sendmsg(self, buffers):
        self.sendmsg_calls += 1
        data = b"".join(bytes(b) for b in buffers)
        return self._sock.send(data[: self.limit])

    def __getattr__(self, name):
        return getattr(self._sock, name)


def tcp_pair():
    listener = TcpListener()
    client = socket.create_connection((listener.host, listener.port))
    client.settimeout(None)
    sender = TcpChannel(client, name="trickle-sender")
    receiver = listener.accept(timeout=5.0)
    listener.close()
    return sender, receiver


def make_frames(start, count):
    return [
        Frame(
            kind=FrameKind.DATA,
            headers={"n": n},
            payload=bytes([n % 256]) * 33,
        )
        for n in range(start, start + count)
    ]


def test_send_many_group_commit_over_trickling_socket():
    sender, receiver = tcp_pair()
    sender._sock = TrickleSock(sender._sock, limit=3)
    try:
        workers = [
            threading.Thread(
                target=lambda s=start: sender.send_many(make_frames(s, 10))
            )
            for start in range(0, 40, 10)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30.0)
        got = {}
        for _ in range(40):
            frame = receiver.recv(timeout=10.0)
            got[frame.headers["n"]] = frame.payload
        assert sorted(got) == list(range(40))
        for n, payload in got.items():
            assert payload == bytes([n % 256]) * 33
        assert sender._sock.sendmsg_calls > 40  # really did trickle
    finally:
        sender.close()
        receiver.close()


def test_send_on_dead_peer_raises_channel_closed():
    sender, receiver = tcp_pair()
    sender._sock = TrickleSock(sender._sock, limit=3)
    receiver.close()
    try:
        with pytest.raises(ChannelClosed):
            # The first writes land in kernel buffers; keep pushing until
            # the RST surfaces.  Bounded: the channel closes itself on
            # the first OSError.
            for _ in range(1000):
                sender.send_many(make_frames(0, 5))
                time.sleep(0.001)
    finally:
        sender.close()


# ---------------------------------------------------------------------------
# Cipher-suite negotiation with hellos split across reads
# ---------------------------------------------------------------------------


def test_hello_survives_any_split_and_keeps_cipher_offer():
    """Reassembling the client hello from any two TCP segments preserves
    the suite offer — negotiation never silently downgrades."""
    hello = Frame(
        kind=FrameKind.HANDSHAKE,
        headers={"step": "hello"},
        payload=b"\x00" * 10,
    )
    wire = encode_frame(hello)
    for cut in range(len(wire) + 1):
        decoder = FrameDecoder()
        decoder.feed(wire[:cut])
        early = decoder.next_frame()
        decoder.feed(wire[cut:])
        frame = early or decoder.next_frame()
        assert frame is not None
        assert frame.headers == {"step": "hello"}
        assert frame.payload == hello.payload


def test_choose_suite_prefers_best_common():
    assert _choose_suite(list(CIPHER_SUITES)) == CIPHER_SUITES[0]
    assert _choose_suite(list(reversed(CIPHER_SUITES))) == CIPHER_SUITES[0]
    assert _choose_suite([]) == _LEGACY_SUITE
    assert _choose_suite(["no-such-suite"]) == _LEGACY_SUITE
    assert _choose_suite([_LEGACY_SUITE]) == _LEGACY_SUITE


def test_negotiation_over_trickling_sockets_picks_best_suite():
    """Full handshake with both directions trickling 16 bytes per write:
    the hellos arrive in dozens of fragments and the negotiated suite is
    still the best common one on both ends."""
    clock = time.time
    ca = CertificationAuthority(key_bits=512, clock=clock)
    client_keys = RsaKeyPair.generate(512)
    server_keys = RsaKeyPair.generate(512)
    client_cert = ca.issue("client", "proxy", client_keys.public)
    server_cert = ca.issue("server", "proxy", server_keys.public)

    client_channel, server_channel = tcp_pair()
    client_channel._sock = TrickleSock(client_channel._sock, limit=16)
    server_channel._sock = TrickleSock(server_channel._sock, limit=16)

    result = {}

    def serve():
        result["server"] = accept_secure(
            server_channel,
            server_keys,
            server_cert,
            ca.public_key,
            clock,
            expected_peer_role="proxy",
        )

    thread = threading.Thread(target=serve)
    thread.start()
    try:
        client = connect_secure(
            client_channel,
            client_keys,
            client_cert,
            ca.public_key,
            clock,
            expected_peer_role="proxy",
        )
        thread.join(timeout=30.0)
        server = result["server"]
        assert client.suite == CIPHER_SUITES[0]
        assert server.suite == CIPHER_SUITES[0]
        # The negotiated records actually flow over the trickle.
        client.send(Frame(kind=FrameKind.DATA, payload=b"after-split"))
        assert server.recv(timeout=10.0).payload == b"after-split"
    finally:
        client_channel.close()
        server_channel.close()

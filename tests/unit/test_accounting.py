"""Unit tests for the usage ledger and credit policy."""

import pytest

from repro.control.accounting import CreditPolicy, UsageLedger, UsageRecord


def make_ledger_with_traffic():
    ledger = UsageLedger()
    # alice (site A) runs work at B twice and at home once.
    ledger.record("alice", "A", "B", "B.n0", "render", 10.0)
    ledger.record("alice", "A", "B", "B.n1", "render", 5.0)
    ledger.record("alice", "A", "A", "A.n0", "render", 7.0)
    # bob (site B) runs work at A.
    ledger.record("bob", "B", "A", "A.n1", "simulate", 4.0)
    return ledger


class TestUsageLedger:
    def test_record_and_len(self):
        ledger = make_ledger_with_traffic()
        assert len(ledger) == 4

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            UsageLedger().record("u", "A", "B", "n", "t", -1.0)

    def test_usage_by_user(self):
        usage = make_ledger_with_traffic().usage_by_user()
        assert usage == {"alice": 22.0, "bob": 4.0}

    def test_contribution_by_site_counts_foreign_only(self):
        contribution = make_ledger_with_traffic().contribution_by_site()
        assert contribution == {"B": 15.0, "A": 4.0}

    def test_consumption_by_site(self):
        consumption = make_ledger_with_traffic().consumption_by_site()
        assert consumption == {"A": 15.0, "B": 4.0}

    def test_jobs_by_task(self):
        counts = make_ledger_with_traffic().jobs_by_task()
        assert counts == {"render": 3, "simulate": 1}

    def test_is_foreign_flag(self):
        record = UsageRecord("u", "A", "B", "n", "t", 1.0, 0.0)
        assert record.is_foreign
        local = UsageRecord("u", "A", "A", "n", "t", 1.0, 0.0)
        assert not local.is_foreign

    def test_records_returns_copy(self):
        ledger = make_ledger_with_traffic()
        ledger.records().clear()
        assert len(ledger) == 4

    def test_clock_stamps_records(self):
        clock_value = [100.0]
        ledger = UsageLedger(clock=lambda: clock_value[0])
        entry = ledger.record("u", "A", "B", "n", "t", 1.0)
        assert entry.recorded_at == 100.0


class TestCreditPolicy:
    def test_hosting_earns_consuming_costs(self):
        policy = CreditPolicy(rate=2.0)
        policy.settle(make_ledger_with_traffic())
        # B hosted 15s of A's work (+30), consumed 4s at A (-8) -> +22.
        assert policy.site_balance("B") == pytest.approx(22.0)
        assert policy.site_balance("A") == pytest.approx(-22.0)

    def test_zero_sum(self):
        policy = CreditPolicy(rate=1.5)
        policy.settle(make_ledger_with_traffic())
        assert policy.in_balance()

    def test_local_work_is_free(self):
        ledger = UsageLedger()
        ledger.record("alice", "A", "A", "A.n0", "t", 100.0)
        policy = CreditPolicy()
        policy.settle(ledger)
        assert policy.site_balance("A") == 0.0

    def test_initial_balance(self):
        policy = CreditPolicy(initial_balance=50.0)
        assert policy.site_balance("anywhere") == 50.0

    def test_settle_is_idempotent(self):
        ledger = make_ledger_with_traffic()
        policy = CreditPolicy()
        first = policy.settle(ledger)
        second = policy.settle(ledger)
        assert first == second


class TestGridIntegration:
    def test_jobs_flow_into_the_grid_ledger(self):
        from repro.core.grid import Grid

        grid = Grid()
        grid.add_site("A", nodes=1)
        grid.add_site("B", nodes=1)
        grid.connect_all()
        grid.add_user("alice", "pw")
        grid.grant("user:alice", "site:*", "submit")
        try:
            grid.submit_job("alice", "pw", "noop", origin_site="A")
            grid.submit_job(
                "alice", "pw", "sum_range", {"n": 1000},
                origin_site="A", target_site="B",
            )
            records = grid.ledger.records()
            assert len(records) == 2
            local, remote = records
            assert not local.is_foreign
            assert remote.is_foreign
            assert remote.origin_site == "A"
            assert remote.executed_site == "B"
            assert remote.userid == "alice"
            assert remote.cpu_seconds >= 0.0
            policy = CreditPolicy()
            policy.settle(grid.ledger)
            assert policy.in_balance()
            assert policy.site_balance("B") > 0.0 or remote.cpu_seconds == 0.0
        finally:
            grid.shutdown()

"""Unit tests for number theory, RSA, DH and the record cipher."""

import pytest

from repro.security.cipher import (
    CIPHER_SUITES,
    MAX_RECORD_BODY,
    CipherError,
    RecordCipher,
    SessionKeys,
    derive_session_keys,
    random_master_secret,
)
from repro.security.dh import DhError, DiffieHellman
from repro.security.numbers import generate_prime, is_probable_prime, modinv
from repro.security.rsa import RsaError, RsaKeyPair, RsaPublicKey

# Small keys keep the suite fast; benches sweep realistic sizes.
KEY_BITS = 512


@pytest.fixture(scope="module")
def keypair():
    return RsaKeyPair.generate(KEY_BITS)


class TestNumbers:
    def test_small_primes_recognised(self):
        for p in [2, 3, 5, 7, 11, 97, 101, 7919]:
            assert is_probable_prime(p)

    def test_small_composites_rejected(self):
        for c in [0, 1, 4, 9, 15, 91, 561, 7917]:  # 561 is a Carmichael number
            assert not is_probable_prime(c)

    def test_negative_not_prime(self):
        assert not is_probable_prime(-7)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)

    def test_large_known_composite(self):
        assert not is_probable_prime((2**127 - 1) * (2**89 - 1))

    def test_generate_prime_has_exact_bits(self):
        for bits in [64, 128, 256]:
            p = generate_prime(bits)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate_prime(4)

    def test_modinv_basic(self):
        assert modinv(3, 7) == 5
        assert (3 * modinv(3, 7)) % 7 == 1

    def test_modinv_no_inverse(self):
        with pytest.raises(ValueError):
            modinv(4, 8)

    def test_modinv_invalid_modulus(self):
        with pytest.raises(ValueError):
            modinv(3, 0)


class TestRsa:
    def test_sign_verify_round_trip(self, keypair):
        message = b"the proxy authenticates this site"
        signature = keypair.sign(message)
        assert keypair.public.verify(message, signature)

    def test_wrong_message_rejected(self, keypair):
        signature = keypair.sign(b"original")
        assert not keypair.public.verify(b"tampered", signature)

    def test_tampered_signature_rejected(self, keypair):
        signature = bytearray(keypair.sign(b"msg"))
        signature[0] ^= 0xFF
        assert not keypair.public.verify(b"msg", bytes(signature))

    def test_wrong_key_rejected(self, keypair):
        other = RsaKeyPair.generate(KEY_BITS)
        signature = keypair.sign(b"msg")
        assert not other.public.verify(b"msg", signature)

    def test_wrong_length_signature_rejected(self, keypair):
        assert not keypair.public.verify(b"msg", b"short")

    def test_encrypt_decrypt_round_trip(self, keypair):
        secret = b"0123456789abcdef0123456789abcdef"  # 32-byte session key
        assert keypair.decrypt(keypair.public.encrypt(secret)) == secret

    def test_encryption_is_randomised(self, keypair):
        secret = b"session-key"
        assert keypair.public.encrypt(secret) != keypair.public.encrypt(secret)

    def test_plaintext_too_long_rejected(self, keypair):
        too_long = b"\x00" * (keypair.byte_length - 5)
        with pytest.raises(RsaError):
            keypair.public.encrypt(too_long)

    def test_tampered_ciphertext_rejected(self, keypair):
        blob = bytearray(keypair.public.encrypt(b"secret"))
        blob[-1] ^= 0x01
        with pytest.raises(RsaError):
            keypair.decrypt(bytes(blob))

    def test_public_key_serialisation(self, keypair):
        blob = keypair.public.to_bytes()
        restored = RsaPublicKey.from_bytes(blob)
        assert restored == keypair.public

    def test_malformed_public_key_rejected(self):
        with pytest.raises(RsaError):
            RsaPublicKey.from_bytes(b"\x00\x00\x00\x02ab")

    def test_fingerprint_stable_and_short(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 16

    def test_tiny_key_generation_rejected(self):
        with pytest.raises(RsaError):
            RsaKeyPair.generate(128)

    def test_key_bits_property(self, keypair):
        assert abs(keypair.public.bits - KEY_BITS) <= 1


class TestDiffieHellman:
    def test_shared_secret_agrees(self):
        alice, bob = DiffieHellman(), DiffieHellman()
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_secret_is_32_bytes(self):
        alice, bob = DiffieHellman(), DiffieHellman()
        assert len(alice.shared_secret(bob.public)) == 32

    def test_different_sessions_different_secrets(self):
        alice, bob, eve = DiffieHellman(), DiffieHellman(), DiffieHellman()
        assert alice.shared_secret(bob.public) != alice.shared_secret(eve.public)

    def test_out_of_range_peer_rejected(self):
        alice = DiffieHellman()
        for bad in [0, 1, alice.prime - 1, alice.prime, alice.prime + 5]:
            with pytest.raises(DhError):
                alice.shared_secret(bad)

    def test_small_modulus_rejected(self):
        with pytest.raises(DhError):
            DiffieHellman(prime=4)


class TestRecordCipher:
    def make_pair(self):
        master = random_master_secret()
        keys = derive_session_keys(master, "client")
        return RecordCipher(keys), RecordCipher(keys)

    def test_seal_open_round_trip(self):
        sender, receiver = self.make_pair()
        record = sender.seal(b"hello tunnel")
        assert receiver.open(record) == b"hello tunnel"

    def test_empty_plaintext(self):
        sender, receiver = self.make_pair()
        assert receiver.open(sender.seal(b"")) == b""

    def test_large_plaintext(self):
        sender, receiver = self.make_pair()
        blob = bytes(range(256)) * 1000
        assert receiver.open(sender.seal(blob)) == blob

    def test_ciphertext_differs_from_plaintext(self):
        sender, _ = self.make_pair()
        record = sender.seal(b"secret payload")
        assert b"secret payload" not in record

    def test_sequence_numbers_vary_keystream(self):
        sender, receiver = self.make_pair()
        r1 = sender.seal(b"same")
        r2 = sender.seal(b"same")
        assert r1[40:] != r2[40:]  # same plaintext, different ciphertext
        assert receiver.open(r1) == b"same"
        assert receiver.open(r2) == b"same"

    def test_tampered_record_rejected(self):
        sender, receiver = self.make_pair()
        record = bytearray(sender.seal(b"payload"))
        record[-1] ^= 0x01
        with pytest.raises(CipherError):
            receiver.open(bytes(record))

    def test_tampered_mac_rejected(self):
        sender, receiver = self.make_pair()
        record = bytearray(sender.seal(b"payload"))
        record[10] ^= 0x01  # inside the MAC
        with pytest.raises(CipherError):
            receiver.open(bytes(record))

    def test_replay_rejected(self):
        sender, receiver = self.make_pair()
        record = sender.seal(b"once")
        receiver.open(record)
        with pytest.raises(CipherError):
            receiver.open(record)

    def test_reorder_rejected(self):
        sender, receiver = self.make_pair()
        first = sender.seal(b"1")
        second = sender.seal(b"2")
        receiver.open(second)
        with pytest.raises(CipherError):
            receiver.open(first)

    def test_truncated_record_rejected(self):
        sender, receiver = self.make_pair()
        with pytest.raises(CipherError):
            receiver.open(sender.seal(b"payload")[:10])

    def test_directional_keys_differ(self):
        master = random_master_secret()
        client = derive_session_keys(master, "client")
        server = derive_session_keys(master, "server")
        assert client.encrypt_key != server.encrypt_key
        assert client.mac_key != server.mac_key

    def test_wrong_direction_rejected(self):
        master = random_master_secret()
        sender = RecordCipher(derive_session_keys(master, "client"))
        receiver = RecordCipher(derive_session_keys(master, "server"))
        with pytest.raises(CipherError):
            receiver.open(sender.seal(b"cross"))

    def test_session_keys_length_enforced(self):
        with pytest.raises(CipherError):
            SessionKeys(encrypt_key=b"short", mac_key=b"\x00" * 32)

    def test_empty_master_secret_rejected(self):
        with pytest.raises(CipherError):
            derive_session_keys(b"", "client")

    def test_overhead_constant(self):
        sender, _ = self.make_pair()
        assert len(sender.seal(b"")) == RecordCipher.overhead()
        assert len(sender.seal(b"xyz")) == RecordCipher.overhead() + 3


# Sizes around the 32-byte keystream block boundary, where chunked
# generation and truncation bugs hide, plus larger multi-chunk bodies.
EDGE_SIZES = [0, 1, 31, 32, 33, 63, 64, 65, 1000, 4096, 65537]


class TestRecordCipherSuites:
    """Every negotiable suite must provide the same record contract."""

    @staticmethod
    def make_pair(suite):
        keys = derive_session_keys(random_master_secret(), "client")
        return RecordCipher(keys, suite=suite), RecordCipher(keys, suite=suite)

    def test_unknown_suite_rejected(self):
        keys = derive_session_keys(random_master_secret(), "client")
        with pytest.raises(CipherError, match="unknown cipher suite"):
            RecordCipher(keys, suite="rot13")

    def test_legacy_suite_is_the_default(self):
        keys = derive_session_keys(random_master_secret(), "client")
        assert RecordCipher(keys).suite == "sha256ctr"

    @pytest.mark.parametrize("suite", CIPHER_SUITES)
    @pytest.mark.parametrize("size", EDGE_SIZES)
    def test_round_trip_at_block_boundaries(self, suite, size):
        sender, receiver = self.make_pair(suite)
        plaintext = bytes(i & 0xFF for i in range(size))
        record = sender.seal(plaintext)
        assert len(record) == RecordCipher.overhead() + size
        assert receiver.open(record) == plaintext

    @pytest.mark.parametrize("suite", CIPHER_SUITES)
    def test_suites_share_wire_layout(self, suite):
        sender, _ = self.make_pair(suite)
        record = sender.seal(b"payload")
        assert record[:8] == (0).to_bytes(8, "big")
        assert len(record) == RecordCipher.overhead() + len(b"payload")

    @pytest.mark.parametrize("suite", CIPHER_SUITES)
    @pytest.mark.parametrize(
        "offset",
        [0, 7, 8, 39, 40, -1],
        ids=["seq-first", "seq-last", "mac-first", "mac-last", "body-first", "body-last"],
    )
    def test_any_flipped_bit_rejected(self, suite, offset):
        sender, receiver = self.make_pair(suite)
        record = bytearray(sender.seal(b"integrity matters"))
        record[offset] ^= 0x01
        with pytest.raises(CipherError):
            receiver.open(bytes(record))

    @pytest.mark.parametrize("suite", CIPHER_SUITES)
    def test_sequence_gap_accepted(self, suite):
        # A receiver must tolerate dropped records: sequence numbers only
        # need to increase, not be contiguous.
        sender, receiver = self.make_pair(suite)
        records = [sender.seal(str(i).encode()) for i in range(5)]
        assert receiver.open(records[0]) == b"0"
        assert receiver.open(records[4]) == b"4"

    @pytest.mark.parametrize("suite", CIPHER_SUITES)
    def test_replay_rejected(self, suite):
        sender, receiver = self.make_pair(suite)
        record = sender.seal(b"once only")
        receiver.open(record)
        with pytest.raises(CipherError, match="replayed"):
            receiver.open(record)

    @pytest.mark.parametrize("suite", CIPHER_SUITES)
    def test_oversized_body_rejected_before_mac(self, suite):
        sender, receiver = self.make_pair(suite)
        bogus = bytes(40) + b"\x00" * (MAX_RECORD_BODY + 1)
        with pytest.raises(CipherError, match="too large"):
            receiver.open(bogus)
        # The rejection must not poison the receive state: a legitimate
        # record still opens afterwards.
        assert receiver.open(sender.seal(b"still fine")) == b"still fine"

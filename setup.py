"""Setup shim: enables legacy editable installs in offline environments.

The environment has no network access and no ``wheel`` package, so PEP 517
builds fail; ``pip install -e . --no-use-pep517`` (or plain ``pip install -e .``
with older pip) uses this file instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

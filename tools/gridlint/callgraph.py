"""A conservative project call graph for reactor-reachability analysis.

GL101 needs to answer: "can this blocking call run on a reactor event
loop thread?"  Exact answers need types; this module settles for a
resolution policy that is *precise enough to act on*:

* ``self.method(...)`` resolves to a method of the enclosing class;
* ``name(...)`` resolves to a function of the same module;
* ``obj.method(...)`` resolves within the same module first, then
  project-wide **only when exactly one function defines that name** —
  fan-out names (``send``, ``close``, ``start``) are deliberately cut
  rather than over-approximated into noise.

Lambdas get synthetic nodes (``parent.<lambda@LINE>``) analysed with the
enclosing class context, because half the reactor callbacks in this
codebase are registered as lambdas.

What the cut edges miss at analysis time, the runtime
:class:`repro.obs.lockwatch.LockOrderWatchdog` and the loop-thread
fail-fast guards (:func:`repro.transport.reactor.on_reactor_thread`)
cover at test time — the static and dynamic checks are designed as a
pair.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from tools.gridlint.engine import Project, Source

__all__ = ["BlockingSite", "CallGraph", "FunctionNode", "SEED_CALL_NAMES"]

#: Attribute names whose call arguments are treated as reactor-context
#: callbacks.  ``blocking=True`` keyword exempts the registration (the
#: dispatch pipeline bounces those handlers to its worker pool).
SEED_CALL_NAMES = frozenset(
    {
        "set_ready_callback",
        "call_later",
        "call_every",
        "register_fd",
        "modify_fd",
        "add_channel",
        "register",
        "on_frame",
        "on_close",
        "add_guard",
        "set_default",
    }
)

#: ``.schedule(fn)`` is only a reactor seed when the receiver looks like
#: an event loop — schedulers elsewhere (job scheduling) share the name.
_SCHEDULE_RECEIVER_HINTS = ("loop", "reactor")


@dataclass(frozen=True)
class BlockingSite:
    """One primitive call that can block the calling thread indefinitely."""

    line: int
    description: str


@dataclass
class FunctionNode:
    """One function/method/lambda in the project graph."""

    path: str
    qualname: str
    cls: Optional[str]
    lineno: int
    end_lineno: int
    calls: list[tuple[str, str, int]] = field(default_factory=list)
    blocking: list[BlockingSite] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str]:
        return (self.path, self.qualname)

    @property
    def short(self) -> str:
        return f"{self.path}:{self.qualname}"


def _time_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases of ``time``, names bound to ``time.sleep``)."""
    modules: set[str] = set()
    sleeps: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    sleeps.add(alias.asname or alias.name)
    return modules, sleeps


def _call_has_kwarg(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _receiver_text(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return f"{_receiver_text(node.value)}.{node.attr}"
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _receiver_text(node.func) + "()"
    return "?"


def _classify_blocking(
    call: ast.Call, time_modules: set[str], sleep_names: set[str]
) -> Optional[str]:
    """Return a description when ``call`` is a blocking primitive."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in sleep_names:
        return "time.sleep()"
    if isinstance(func, ast.Attribute):
        receiver = func.value
        attr = func.attr
        if (
            attr == "sleep"
            and isinstance(receiver, ast.Name)
            and receiver.id in time_modules
        ):
            return "time.sleep()"
        if (
            attr == "create_connection"
            and isinstance(receiver, ast.Name)
            and receiver.id == "socket"
        ):
            return "socket.create_connection()"
        if attr == "acquire":
            # acquire() / acquire(True) / acquire(blocking=True) with no
            # timeout can park the thread forever.
            has_timeout = _call_has_kwarg(call, "timeout") or len(call.args) >= 2
            nonblocking = any(
                isinstance(arg, ast.Constant) and arg.value is False
                for arg in call.args[:1]
            ) or any(
                kw.arg == "blocking"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in call.keywords
            )
            if not has_timeout and not nonblocking:
                return f"blocking {_receiver_text(receiver)}.acquire()"
        if attr == "join" and not call.args and not call.keywords:
            return f"{_receiver_text(receiver)}.join() with no timeout"
        if attr == "wait" and not call.args and not _call_has_kwarg(call, "timeout"):
            return f"{_receiver_text(receiver)}.wait() with no timeout"
        if attr in ("accept", "connect", "sendall") and not _call_has_kwarg(
            call, "timeout"
        ):
            return f"blocking socket op {_receiver_text(receiver)}.{attr}()"
        if attr == "recv" and not _call_has_kwarg(call, "timeout"):
            return f"{_receiver_text(receiver)}.recv() with no timeout"
    return None


def _is_seed_call(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    name = func.attr
    if name == "schedule":
        receiver = _receiver_text(func.value).lower()
        return any(hint in receiver for hint in _SCHEDULE_RECEIVER_HINTS)
    if name not in SEED_CALL_NAMES:
        return False
    if name == "register":
        # Only dispatch-pipeline registrations seed reactor context —
        # `register` is a common method name (task registries, plugin
        # tables) whose callbacks run on worker threads.  Require the
        # op-registration shape: first arg `Op.X`, or a receiver that is
        # recognisably the pipeline.
        first_is_op = bool(call.args) and (
            isinstance(call.args[0], ast.Attribute)
            and isinstance(call.args[0].value, ast.Name)
            and call.args[0].value.id == "Op"
        )
        receiver = _receiver_text(func.value).lower()
        if not first_is_op and not any(
            hint in receiver for hint in ("pipe", "dispatch", "selector")
        ):
            return False
    # pipeline.register(op, fn, blocking=True) hands fn to a worker pool.
    return not any(
        kw.arg == "blocking"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in call.keywords
    )


class _FunctionCollector(ast.NodeVisitor):
    """Collect function nodes (including lambdas) with class context."""

    def __init__(self, source: Source) -> None:
        self.source = source
        self.nodes: list[FunctionNode] = []
        self._class_stack: list[str] = []
        self._qual_stack: list[str] = []
        self._time_modules, self._sleep_names = _time_aliases(source.tree)

    # -- structure -------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self._qual_stack.append(node.name)
        self.generic_visit(node)
        self._qual_stack.pop()
        self._class_stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda, name: str
    ) -> None:
        qualname = ".".join([*self._qual_stack, name])
        fn = FunctionNode(
            path=self.source.path,
            qualname=qualname,
            cls=self._class_stack[-1] if self._class_stack else None,
            lineno=node.lineno,
            end_lineno=getattr(node, "end_lineno", None) or node.lineno,
        )
        self.nodes.append(fn)
        body = node.body if isinstance(node.body, list) else [node.body]
        self._qual_stack.append(name)
        for stmt in body:
            self._scan_body(stmt, fn)
        self._qual_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node, f"<lambda@L{node.lineno}>")

    # -- body scanning ---------------------------------------------------

    def _scan_body(self, stmt: ast.AST, fn: FunctionNode) -> None:
        """Record calls/blocking sites of ``fn``, descending into nested
        defs separately (they are their own nodes)."""
        for node in _walk_shallow(stmt):
            if isinstance(node, ast.Call):
                description = _classify_blocking(
                    node, self._time_modules, self._sleep_names
                )
                if description is not None:
                    fn.blocking.append(BlockingSite(node.lineno, description))
                self._record_call(node, fn)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # Nested function: give it its own node, and record an
                # edge so reachability flows through closures the parent
                # merely *defines* are NOT followed — only ones it calls
                # or registers.
                self.visit(node)

    def _record_call(self, call: ast.Call, fn: FunctionNode) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            fn.calls.append(("local", func.id, call.lineno))
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                fn.calls.append(("self", func.attr, call.lineno))
            else:
                fn.calls.append(("attr", func.attr, call.lineno))


def _walk_shallow(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function/lambda bodies."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # its body belongs to its own node
        stack.extend(ast.iter_child_nodes(node))


class CallGraph:
    """Function index + resolution + reactor-seed discovery."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.nodes: dict[tuple[str, str], FunctionNode] = {}
        self._sources_by_path: dict[str, Source] = {
            source.path: source for source in project.sources
        }
        #: per module: plain function name -> node keys
        self._module_funcs: dict[str, dict[str, list[tuple[str, str]]]] = {}
        #: per (module, class): method name -> node key
        self._methods: dict[tuple[str, str], dict[str, tuple[str, str]]] = {}
        #: project-wide: name -> node keys (for unique-name resolution)
        self._by_name: dict[str, list[tuple[str, str]]] = {}
        for source in project.sources:
            collector = _FunctionCollector(source)
            for stmt in source.tree.body:
                collector.visit(stmt)
            for fn in collector.nodes:
                self.nodes[fn.key] = fn
                simple = fn.qualname.rsplit(".", 1)[-1]
                if fn.cls is not None and fn.qualname == f"{fn.cls}.{simple}":
                    self._methods.setdefault((fn.path, fn.cls), {})[simple] = fn.key
                if "." not in fn.qualname:
                    self._module_funcs.setdefault(fn.path, {}).setdefault(
                        simple, []
                    ).append(fn.key)
                if not simple.startswith("<"):
                    self._by_name.setdefault(simple, []).append(fn.key)

    # -- resolution ------------------------------------------------------

    def resolve(self, fn: FunctionNode, kind: str, name: str) -> list[FunctionNode]:
        if kind == "self" and fn.cls is not None:
            key = self._methods.get((fn.path, fn.cls), {}).get(name)
            return [self.nodes[key]] if key else []
        if kind == "local":
            keys = self._module_funcs.get(fn.path, {}).get(name, [])
            return [self.nodes[k] for k in keys]
        if kind == "attr":
            # Same module first (any class), then unique project-wide.
            same_module = [
                self.nodes[key]
                for (path, _), methods in self._methods.items()
                if path == fn.path
                for mname, key in methods.items()
                if mname == name
            ]
            if same_module:
                return same_module
            keys = self._by_name.get(name, [])
            if len(keys) == 1:
                return [self.nodes[keys[0]]]
        return []

    # -- seeds -----------------------------------------------------------

    def seeds(self) -> list[tuple[FunctionNode, FunctionNode]]:
        """(registering function, callback function) for every reactor
        callback registration found in the project."""
        out: list[tuple[FunctionNode, FunctionNode]] = []
        for source in self.project.sources:
            for node in ast.walk(source.tree):
                if not (isinstance(node, ast.Call) and _is_seed_call(node)):
                    continue
                owner = self._enclosing_function(source, node)
                if owner is None:
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for target in self._callback_targets(owner, arg):
                        out.append((owner, target))
        return out

    def _enclosing_function(
        self, source: Source, call: ast.Call
    ) -> Optional[FunctionNode]:
        """Innermost function node whose span contains ``call``."""
        best: Optional[FunctionNode] = None
        for fn in self.nodes.values():
            if fn.path != source.path:
                continue
            if not (fn.lineno <= call.lineno <= fn.end_lineno):
                continue
            if best is None or fn.lineno > best.lineno:
                best = fn
        return best

    def _callback_targets(
        self, owner: FunctionNode, arg: ast.AST, depth: int = 0
    ) -> list[FunctionNode]:
        if depth > 3:  # partial-of-partial-of-wrapper is deep enough
            return []
        if isinstance(arg, ast.Lambda):
            key = self._lambda_key(owner, arg)
            node = self.nodes.get(key)
            return [node] if node else []
        if isinstance(arg, ast.Call):
            # The registered callable is *constructed* here, not named:
            # ``partial(fn, ...)`` runs ``fn``; a single-decorator
            # wrapper ``deco(fn)`` runs both ``deco``'s closure and
            # (almost always) ``fn``.  Resolve through to the wrapped
            # callable in both shapes so GL101/GL105 see it.
            func = arg.func
            if (isinstance(func, ast.Name) and func.id == "partial") or (
                isinstance(func, ast.Attribute) and func.attr == "partial"
            ):
                if arg.args:
                    return self._callback_targets(owner, arg.args[0], depth + 1)
                return []
            out = list(self._callback_targets(owner, func, depth + 1))
            for inner in list(arg.args) + [kw.value for kw in arg.keywords]:
                if isinstance(inner, (ast.Name, ast.Attribute, ast.Lambda)):
                    out.extend(self._callback_targets(owner, inner, depth + 1))
            return out
        if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            if arg.value.id == "self":
                return self.resolve(owner, "self", arg.attr)
            return self.resolve(owner, "attr", arg.attr)
        if isinstance(arg, ast.Name):
            direct = self.resolve(owner, "local", arg.id)
            if direct:
                return direct
            # A plain variable: follow one local ``name = partial(...)``
            # (or ``name = deco(fn)``) assignment inside the registering
            # function, the common two-line registration idiom.
            assigned = self._local_assignment(owner, arg.id)
            if assigned is not None:
                return self._callback_targets(owner, assigned, depth + 1)
        return []

    def _local_assignment(
        self, owner: FunctionNode, name: str
    ) -> Optional[ast.AST]:
        """The value last assigned to local ``name`` inside ``owner``."""
        source = self._sources_by_path.get(owner.path)
        if source is None:
            return None
        found: Optional[ast.AST] = None
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Assign)
                and owner.lineno <= node.lineno <= owner.end_lineno
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
            ):
                continue
            if found is None or node.lineno > getattr(found, "lineno", 0):
                found = node.value
        return found

    def _lambda_key(self, owner: FunctionNode, node: ast.Lambda) -> tuple[str, str]:
        for key, fn in self.nodes.items():
            if fn.path == owner.path and fn.qualname.endswith(
                f"<lambda@L{node.lineno}>"
            ):
                return key
        return (owner.path, f"<lambda@L{node.lineno}>")

    # -- reachability ----------------------------------------------------

    def reachable_from_seeds(self) -> dict[tuple[str, str], list[str]]:
        """node key -> human-readable chain from its nearest seed."""
        chains: dict[tuple[str, str], list[str]] = {}
        frontier: list[FunctionNode] = []
        for owner, target in self.seeds():
            if target.key not in chains:
                chains[target.key] = [
                    f"registered in {owner.short}",
                    target.short,
                ]
                frontier.append(target)
        while frontier:
            fn = frontier.pop()
            for kind, name, _ in fn.calls:
                for callee in self.resolve(fn, kind, name):
                    if callee.key in chains:
                        continue
                    chains[callee.key] = chains[fn.key] + [callee.short]
                    frontier.append(callee)
        return chains

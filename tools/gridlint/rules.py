"""The gridlint rule catalog.

Each rule encodes one invariant the middleware actually depends on;
the docstrings double as the published rule documentation (surfaced by
``--list-rules`` and asserted non-empty by the meta-test).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from tools.gridlint.callgraph import CallGraph
from tools.gridlint.engine import Finding, Project, Rule, Source, rule

#: Modules allowed to spawn raw threads: the transport layer owns I/O
#: threading (reactor loops, threaded-mode receivers) and the dispatch
#: pipeline owns its blocking-handler worker pool.
SANCTIONED_THREAD_PATHS = ("transport/",)
SANCTIONED_THREAD_SUFFIXES = ("core/dispatch.py",)

#: Functions that are allowed to resolve metric instruments by name —
#: construction-time wiring, by convention.
INSTRUMENT_WIRING_FUNCTIONS = frozenset({"__init__", "bind_metrics"})

#: The shard layer's modules: worker entry paths that must stay
#: fork-free and shared-nothing (GL104).
SHARD_MODULE_SUFFIXES = ("transport/shard.py", "core/shardmgr.py")

#: Process-global singleton accessors a shard module must never call:
#: a worker that reaches for the global reactor or registry is quietly
#: welded back into state its respawn path cannot rebuild.
SHARD_FORBIDDEN_GLOBALS = frozenset(
    {"get_global_reactor", "get_global_registry"}
)

#: os functions that fork the process.
FORK_FUNCTIONS = frozenset({"fork", "forkpty"})

#: multiprocessing entry points whose first argument picks a start
#: method; "fork" there is the same hazard as os.fork().
START_METHOD_FUNCTIONS = frozenset({"get_context", "set_start_method"})

#: Registry implementations themselves (get-or-create lives here).
INSTRUMENT_IMPL_SUFFIXES = ("obs/metrics.py", "simulation/metrics.py")

#: Instrument-resolving registry methods (hot-path construction bait).
INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram", "timeseries"})

#: The asymmetric-crypto module: any call resolving into it from a
#: dispatch guard is a per-request RSA operation on the hot path (GL105).
ASYMMETRIC_MODULE_SUFFIXES = ("security/rsa.py",)

#: Attribute calls that look like public-key operations when their
#: receiver names key material (GL105).
ASYMMETRIC_ATTRS = frozenset({"sign", "verify", "encrypt", "decrypt"})

#: Receiver-text fragments that mark the receiver as key material.
KEY_RECEIVER_HINTS = ("key", "rsa", "public", "private", "cert")

#: Names the ``@shared_state`` decorator goes by at its use sites
#: (``repro.obs.racesan.shared_state``): plain, module-qualified, or
#: the explicit per-object helper.
SHARED_STATE_DECORATORS = frozenset({"shared_state"})

#: Receiver-text fragments that mark a ``with`` context manager as a
#: lock for GL106's lexical lock-path analysis.
LOCKLIKE_HINTS = ("lock", "cond", "mutex", "sem", "rlock")

#: Call names that publish ``self`` to another thread (GL107): raw
#: thread construction and every reactor/dispatch registration seed.
PUBLICATION_CALLS = frozenset(
    {
        "Thread",
        "Timer",
        "start_new_thread",
        "submit",
        "schedule",
        "call_later",
        "call_every",
        "add_channel",
        "register_fd",
        "set_ready_callback",
        "register",
        "add_guard",
    }
)


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names the file binds to ``import module`` (honouring ``as``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> dict[str, str]:
    """local name -> original name for ``from module import ...``."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


@rule
class NoBlockingOnReactor(Rule):
    """Reactor-loop callbacks must never block.

    A callback registered with ``set_ready_callback``, ``register_fd``,
    ``call_later``/``call_every``, or the dispatch registry (without
    ``blocking=True``) runs on a shared event-loop thread; one
    ``time.sleep``, unbounded ``Lock.acquire``, or blocking socket op
    stalls every channel multiplexed onto that loop.  The rule walks a
    conservative call graph from every registration site and flags
    blocking primitives reachable from them.  Non-blocking sockets and
    guarded acquires are real patterns — suppress those sites with the
    reason (e.g. "socket is non-blocking", "guarded by
    on_reactor_thread() fail-fast above").
    """

    code = "GL101"
    title = "blocking call reachable from a reactor-loop callback"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = CallGraph(project)
        chains = graph.reachable_from_seeds()
        for key, chain in sorted(chains.items()):
            fn = graph.nodes[key]
            for site in fn.blocking:
                yield Finding(
                    code=self.code,
                    path=fn.path,
                    line=site.line,
                    message=(
                        f"{site.description} in {fn.qualname} can run on a "
                        f"reactor loop thread ({' -> '.join(chain)})"
                    ),
                )


@rule
class NoUnsanctionedThreads(Rule):
    """Raw ``threading.Thread``/``Timer`` only in sanctioned modules.

    The transport layer (reactor loops, threaded-mode channel readers)
    and the dispatch worker pool are the two places allowed to own
    threads; everywhere else must go through them so shutdown ordering
    and the thread budget stay auditable.  Legitimate exceptions
    (handshake workers, accept loops) carry a suppression naming why the
    thread cannot ride the reactor.
    """

    code = "GL102"
    title = "raw thread construction outside sanctioned modules"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.sources:
            path = source.path.replace("\\", "/")
            if any(part in path for part in SANCTIONED_THREAD_PATHS) or any(
                path.endswith(sfx) for sfx in SANCTIONED_THREAD_SUFFIXES
            ):
                continue
            aliases = _module_aliases(source.tree, "threading")
            imported = {
                local
                for local, orig in _from_imports(source.tree, "threading").items()
                if orig in ("Thread", "Timer")
            }
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                hit: Optional[str] = None
                if isinstance(func, ast.Name) and func.id in imported:
                    hit = func.id
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("Thread", "Timer")
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases
                ):
                    hit = f"{func.value.id}.{func.attr}"
                if hit is not None:
                    yield Finding(
                        code=self.code,
                        path=source.path,
                        line=node.lineno,
                        message=(
                            f"{hit}() outside sanctioned modules "
                            "(transport/*, core/dispatch.py); route work "
                            "through the reactor or dispatch pool"
                        ),
                    )


@rule
class ForkSafeShardWorkers(Rule):
    """Shard worker entry paths must be fork-free and shared-nothing.

    A forked CPython process inherits reactor loop threads that are no
    longer running, locks whose owners no longer exist, and selector/fd
    state still shared with the parent — so the shard layer *spawns*
    workers and rebuilds every stack from scratch.  The rule flags fork
    primitives (``os.fork``/``os.forkpty``, and ``get_context``/
    ``set_start_method`` with ``"fork"``) anywhere in the tree, and —
    inside the shard modules themselves — any call to the process-global
    reactor or metrics registry accessors, which would silently couple
    workers through state a respawn cannot reproduce.
    """

    code = "GL104"
    title = "fork-unsafe primitive in a shard worker entry path"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.sources:
            path = source.path.replace("\\", "/")
            in_shard_module = any(
                path.endswith(sfx) for sfx in SHARD_MODULE_SUFFIXES
            )
            os_aliases = _module_aliases(source.tree, "os")
            fork_names = {
                local
                for local, orig in _from_imports(source.tree, "os").items()
                if orig in FORK_FUNCTIONS
            }
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name: Optional[str] = None
                if isinstance(func, ast.Name):
                    name = func.id
                    if name in fork_names:
                        yield self._finding(
                            source.path, node.lineno,
                            f"os.{name}() forks the process",
                        )
                        continue
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                    if (
                        name in FORK_FUNCTIONS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in os_aliases
                    ):
                        yield self._finding(
                            source.path, node.lineno,
                            f"os.{name}() forks the process",
                        )
                        continue
                if name in START_METHOD_FUNCTIONS and any(
                    isinstance(arg, ast.Constant) and arg.value == "fork"
                    for arg in node.args
                ):
                    yield self._finding(
                        source.path, node.lineno,
                        f'{name}("fork") selects the fork start method',
                    )
                elif in_shard_module and name in SHARD_FORBIDDEN_GLOBALS:
                    yield self._finding(
                        source.path, node.lineno,
                        f"{name}() couples shard workers through "
                        "process-global state",
                    )

    def _finding(self, path: str, line: int, what: str) -> Finding:
        return Finding(
            code=self.code,
            path=path,
            line=line,
            message=(
                f"{what}; shard workers must be spawned with private "
                "reactor/registry stacks"
            ),
        )


def _attr_text(node: ast.AST) -> str:
    """Dotted receiver text of an attribute chain (best effort)."""
    if isinstance(node, ast.Attribute):
        return f"{_attr_text(node.value)}.{node.attr}"
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _attr_text(node.func) + "()"
    return "?"


@rule
class NoAsymmetricCryptoInGuards(Rule):
    """Dispatch guards must stay on a symmetric-crypto budget.

    Guards run on the pipeline's authorize stage for *every* control
    message; the token control plane exists precisely so that path costs
    one HMAC, not one RSA operation per request.  The rule seeds from
    every ``add_guard(...)`` registration and from ``__call__`` of every
    ``*Guard`` class, walks the conservative call graph, and flags (a)
    calls that resolve into the asymmetric-crypto module and (b)
    ``sign``/``verify``/``encrypt``/``decrypt`` attribute calls whose
    receiver names key material.  A guard that genuinely must do
    public-key work carries a suppression saying why the per-message
    cost is acceptable.
    """

    code = "GL105"
    title = "asymmetric-crypto call reachable from a dispatch guard"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = CallGraph(project)
        receivers = self._receiver_index(project)
        for key, chain in sorted(self._guard_chains(graph).items()):
            fn = graph.nodes[key]
            for kind, name, line in fn.calls:
                what: Optional[str] = None
                if kind == "attr" and name in ASYMMETRIC_ATTRS:
                    receiver = receivers.get(fn.path, {}).get((line, name), "")
                    if any(
                        hint in receiver.lower()
                        for hint in KEY_RECEIVER_HINTS
                    ):
                        what = f"{receiver}.{name}()"
                if what is None:
                    for callee in graph.resolve(fn, kind, name):
                        callee_path = callee.path.replace("\\", "/")
                        if any(
                            callee_path.endswith(sfx)
                            for sfx in ASYMMETRIC_MODULE_SUFFIXES
                        ):
                            what = f"{name}() resolves into {callee_path}"
                            break
                if what is not None:
                    yield Finding(
                        code=self.code,
                        path=fn.path,
                        line=line,
                        message=(
                            f"{what} reachable from a dispatch guard "
                            f"({' -> '.join(chain)}); guards must stay "
                            "HMAC-cheap — move RSA to login/handshake time"
                        ),
                    )

    @staticmethod
    def _receiver_index(
        project: Project,
    ) -> dict[str, dict[tuple[int, str], str]]:
        """path -> {(line, attr): receiver text} for attribute calls."""
        index: dict[str, dict[tuple[int, str], str]] = {}
        for source in project.sources:
            per = index.setdefault(source.path, {})
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    per[(node.lineno, node.func.attr)] = _attr_text(
                        node.func.value
                    )
        return index

    def _guard_chains(
        self, graph: CallGraph
    ) -> dict[tuple[str, str], list[str]]:
        """node key -> chain from its nearest guard entry point."""
        chains: dict[tuple[str, str], list[str]] = {}
        frontier: list = []

        def seed(target, why: str) -> None:
            if target.key not in chains:
                chains[target.key] = [why, target.short]
                frontier.append(target)

        for source in graph.project.sources:
            for node in ast.walk(source.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_guard"
                ):
                    continue
                owner = graph._enclosing_function(source, node)
                if owner is None:
                    continue
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    for target in graph._callback_targets(owner, arg):
                        seed(target, f"guard registered in {owner.short}")
        for (path, cls), methods in graph._methods.items():
            if cls.endswith("Guard") and "__call__" in methods:
                seed(
                    graph.nodes[methods["__call__"]],
                    f"{cls}.__call__ guard entry",
                )
        while frontier:
            fn = frontier.pop()
            for kind, name, _ in fn.calls:
                for callee in graph.resolve(fn, kind, name):
                    if callee.key not in chains:
                        chains[callee.key] = chains[fn.key] + [callee.short]
                        frontier.append(callee)
        return chains


@rule
class LockOrderCycles(Rule):
    """Per-class lock acquisition order must be acyclic.

    For every class the rule extracts ``with self._lock:`` nests (and
    one level of ``self.method()`` calls made while holding a lock) into
    an acquisition-order graph over the class's lock attributes; a cycle
    means two code paths can take the same pair of locks in opposite
    order — a latent deadlock.  The runtime
    ``repro.obs.lockwatch.LockOrderWatchdog`` covers the orders this
    static view cannot see (cross-class, dynamic dispatch).
    """

    code = "GL103"
    title = "conflicting lock acquisition order (potential deadlock)"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.sources:
            for node in source.tree.body:
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(source.path, node)

    # -- per-class analysis ---------------------------------------------

    def _check_class(self, path: str, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        acquired_anywhere = {
            name: self._locks_in(method) for name, method in methods.items()
        }
        edges: dict[tuple[str, str], tuple[int, str]] = {}
        for name, method in methods.items():
            self._collect_edges(method, [], edges, acquired_anywhere, name)
        cycle = self._find_cycle(edges)
        if cycle is not None:
            order = " -> ".join([*cycle, cycle[0]])
            line, via = edges[(cycle[-1], cycle[0])]
            yield Finding(
                code=self.code,
                path=path,
                line=line,
                message=(
                    f"lock order cycle in class {cls.name}: {order} "
                    f"(closing edge in {via})"
                ),
            )

    @staticmethod
    def _self_lock(item: ast.withitem) -> Optional[str]:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    def _locks_in(self, method: ast.AST) -> set[str]:
        locks: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.With):
                for item in node.items:
                    name = self._self_lock(item)
                    if name is not None:
                        locks.add(name)
        return locks

    def _collect_edges(
        self,
        node: ast.AST,
        held: list[str],
        edges: dict[tuple[str, str], tuple[int, str]],
        acquired_anywhere: dict[str, set[str]],
        method_name: str,
    ) -> None:
        if isinstance(node, ast.With):
            taken: list[str] = []
            for item in node.items:
                name = self._self_lock(item)
                if name is None:
                    continue
                if held:
                    edges.setdefault((held[-1], name), (node.lineno, method_name))
                held.append(name)
                taken.append(name)
            for child in node.body:
                self._collect_edges(
                    child, held, edges, acquired_anywhere, method_name
                )
            for _ in taken:
                held.pop()
            return
        if (
            isinstance(node, ast.Call)
            and held
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            for lock in acquired_anywhere.get(node.func.attr, ()):
                if lock not in held:
                    edges.setdefault(
                        (held[-1], lock),
                        (node.lineno, f"{method_name} -> {node.func.attr}"),
                    )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            self._collect_edges(child, held, edges, acquired_anywhere, method_name)

    @staticmethod
    def _find_cycle(
        edges: dict[tuple[str, str], tuple[int, str]]
    ) -> Optional[list[str]]:
        graph: dict[str, list[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
        visiting: list[str] = []
        done: set[str] = set()

        def dfs(node: str) -> Optional[list[str]]:
            if node in visiting:
                return visiting[visiting.index(node) :]
            if node in done:
                return None
            visiting.append(node)
            for nxt in graph.get(node, ()):
                cycle = dfs(nxt)
                if cycle is not None:
                    return cycle
            visiting.pop()
            done.add(node)
            return None

        for start in sorted(graph):
            cycle = dfs(start)
            if cycle is not None:
                return cycle
        return None


@rule
class OpRegistryConsistency(Rule):
    """Op codes are unique and every dispatched op is classified.

    ``protocol.py`` is the single source of truth for the control
    protocol: each op name maps to exactly one code, ``IDEMPOTENT_OPS``
    only names real ops (a typo there silently disables retry safety),
    and every ``pipeline.register(Op.X, ...)`` in the tree refers to a
    declared op and registers it at most once per module.
    """

    code = "GL201"
    title = "op registry / idempotency classification inconsistency"

    def check(self, project: Project) -> Iterator[Finding]:
        protocols = project.find_sources("core/protocol.py") or project.find_sources(
            "protocol.py"
        )
        if not protocols:
            return
        protocol = protocols[0]
        op_codes: dict[str, int] = {}
        op_lines: dict[str, int] = {}
        for node in protocol.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "Op":
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, int)
                    ):
                        name = stmt.targets[0].id
                        op_codes[name] = stmt.value.value
                        op_lines[name] = stmt.lineno
        by_value: dict[int, str] = {}
        for name, value in op_codes.items():
            if value in by_value:
                yield Finding(
                    code=self.code,
                    path=protocol.path,
                    line=op_lines[name],
                    message=(
                        f"op code {value} assigned to both "
                        f"Op.{by_value[value]} and Op.{name}"
                    ),
                )
            else:
                by_value[value] = name
        yield from self._check_idempotent(protocol, op_codes)
        yield from self._check_registrations(project, op_codes)

    def _check_idempotent(
        self, protocol: Source, op_codes: dict[str, int]
    ) -> Iterator[Finding]:
        for node in ast.walk(protocol.tree):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "IDEMPOTENT_OPS"
            ):
                continue
            seen: set[str] = set()
            for member in ast.walk(node.value):
                if (
                    isinstance(member, ast.Attribute)
                    and isinstance(member.value, ast.Name)
                    and member.value.id == "Op"
                ):
                    if member.attr not in op_codes:
                        yield Finding(
                            code=self.code,
                            path=protocol.path,
                            line=member.lineno,
                            message=(
                                f"IDEMPOTENT_OPS names Op.{member.attr}, "
                                "which is not a declared op"
                            ),
                        )
                    elif member.attr in seen:
                        yield Finding(
                            code=self.code,
                            path=protocol.path,
                            line=member.lineno,
                            message=(
                                f"Op.{member.attr} listed twice in IDEMPOTENT_OPS"
                            ),
                        )
                    seen.add(member.attr)

    def _check_registrations(
        self, project: Project, op_codes: dict[str, int]
    ) -> Iterator[Finding]:
        for source in project.sources:
            registered: set[str] = set()
            for node in ast.walk(source.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "register"
                    and node.args
                ):
                    continue
                target = node.args[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "Op"
                ):
                    continue
                if target.attr not in op_codes:
                    yield Finding(
                        code=self.code,
                        path=source.path,
                        line=node.lineno,
                        message=(
                            f"register() refers to Op.{target.attr}, "
                            "which is not declared in protocol.py"
                        ),
                    )
                elif target.attr in registered:
                    yield Finding(
                        code=self.code,
                        path=source.path,
                        line=node.lineno,
                        message=(
                            f"Op.{target.attr} registered more than once "
                            "in this module"
                        ),
                    )
                registered.add(target.attr)


@rule
class NoHotPathInstrumentConstruction(Rule):
    """Metric instruments are resolved at wiring time, not per call.

    ``registry.counter(name)`` is get-or-create behind a lock plus a
    dict lookup — cheap once, not cheap per packet.  Hot paths must
    resolve instruments in ``__init__``/``bind_metrics`` (or at module
    scope) and keep the handle.  Deliberate caches that pay the lookup
    once per key (e.g. the dispatch per-op latency cache) carry a
    suppression saying so.
    """

    code = "GL301"
    title = "metric instrument resolved inside a function body"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = CallGraph(project)
        for fn in graph.nodes.values():
            path = fn.path.replace("\\", "/")
            if any(path.endswith(sfx) for sfx in INSTRUMENT_IMPL_SUFFIXES):
                continue
            if INSTRUMENT_WIRING_FUNCTIONS & set(fn.qualname.split(".")):
                continue
            for kind, name, line in fn.calls:
                if kind == "attr" and name in INSTRUMENT_METHODS:
                    yield Finding(
                        code=self.code,
                        path=fn.path,
                        line=line,
                        message=(
                            f".{name}() instrument lookup inside "
                            f"{fn.qualname}; resolve it once in __init__/"
                            "bind_metrics and keep the handle"
                        ),
                    )


@rule
class DeterministicSimulation(Rule):
    """No unseeded randomness or wall-clock time in deterministic code.

    The simulation layer and the chaos suite must replay bit-identically
    from a seed: module-level ``random.*`` draws global (unseeded) state
    and ``time.time()``/``datetime.now()`` leak the wall clock into
    results.  Use the seeded ``random.Random(...)`` streams from
    ``repro.simulation.randomness`` and the simulated clock instead.
    """

    code = "GL401"
    title = "unseeded randomness / wall clock in deterministic code"

    _SCOPES = ("simulation/", "tests/chaos", "security/")
    _ALLOWED_RANDOM = frozenset({"Random", "SystemRandom"})

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.sources:
            path = source.path.replace("\\", "/")
            if not any(scope in path for scope in self._SCOPES):
                continue
            time_aliases = _module_aliases(source.tree, "time")
            random_aliases = _module_aliases(source.tree, "random")
            datetime_names = {
                local
                for local, orig in _from_imports(source.tree, "datetime").items()
                if orig == "datetime"
            }
            random_funcs = {
                local
                for local, orig in _from_imports(source.tree, "random").items()
                if orig not in self._ALLOWED_RANDOM
            }
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name) and func.id in random_funcs:
                    yield self._finding(
                        source.path, node.lineno, f"random.{func.id}()"
                    )
                if not isinstance(func, ast.Attribute):
                    continue
                receiver = func.value
                if not isinstance(receiver, ast.Name):
                    continue
                if receiver.id in time_aliases and func.attr == "time":
                    yield self._finding(source.path, node.lineno, "time.time()")
                elif (
                    receiver.id in random_aliases
                    and func.attr not in self._ALLOWED_RANDOM
                ):
                    yield self._finding(
                        source.path, node.lineno, f"random.{func.attr}()"
                    )
                elif receiver.id in datetime_names and func.attr in (
                    "now",
                    "utcnow",
                    "today",
                ):
                    yield self._finding(
                        source.path, node.lineno, f"datetime.{func.attr}()"
                    )

    def _finding(self, path: str, line: int, what: str) -> Finding:
        return Finding(
            code=self.code,
            path=path,
            line=line,
            message=(
                f"{what} in deterministic code; use the seeded RNG stream "
                "or the simulated clock"
            ),
        )


def _is_shared_state_class(cls: ast.ClassDef) -> bool:
    """True when the class carries the ``@shared_state`` decorator."""
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id in SHARED_STATE_DECORATORS:
            return True
        if (
            isinstance(target, ast.Attribute)
            and target.attr in SHARED_STATE_DECORATORS
        ):
            return True
    return False


def _is_locklike(item: ast.withitem) -> bool:
    text = _attr_text(item.context_expr).lower()
    return any(hint in text for hint in LOCKLIKE_HINTS)


def _unlocked_self_writes(
    method: ast.AST, after_line: int = 0
) -> list[tuple[int, str]]:
    """(line, field) for every ``self.X`` (aug)assignment not lexically
    under a lock-like ``with``, skipping nested function bodies."""
    out: list[tuple[int, str]] = []

    def walk(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            now_locked = locked or any(_is_locklike(item) for item in node.items)
            for child in node.body:
                walk(child, now_locked)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # a nested def is its own (separately analysed) node
        if (
            not locked
            and isinstance(node, (ast.Assign, ast.AugAssign))
            and node.lineno > after_line
        ):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out.append((node.lineno, target.attr))
        for child in ast.iter_child_nodes(node):
            walk(child, locked)

    body = getattr(method, "body", [])
    for stmt in body if isinstance(body, list) else [body]:
        walk(stmt, False)
    return out


@rule
class SharedStateUnlockedMutation(Rule):
    """``@shared_state`` fields need a lock on loop-reachable paths.

    Classes marked ``@shared_state`` (the runtime race sanitizer's
    model, ``repro.obs.racesan``) are touched from reactor loops, the
    dispatch pool, and gossip threads at once.  The rule walks the same
    conservative call graph as GL101 from every reactor-callback
    registration, and flags ``self.field = ...`` / ``+=`` mutations in
    reachable methods of shared classes with no lock-like ``with`` on
    the lexical path.  "Lexical path" is chain-sensitive: a method is
    exempt when **every** seed-to-method chain passes through at least
    one lock-holding call site — that is the ``FrameDecoder`` idiom,
    where the owning channel's ``_rx_cond`` guards all reactor entry
    points even though the decoder methods themselves take no lock.
    Deliberately loop-confined state (single owner, no mutex by design)
    carries a suppression naming the owner; the runtime sanitizer
    verifies that claim with its reactor-ownership token.
    """

    code = "GL106"
    title = "unlocked @shared_state mutation on a loop-reachable path"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = CallGraph(project)
        chains = graph.reachable_from_seeds()
        locked_in = self._locked_on_all_paths(graph, chains, project)
        for source in project.sources:
            for cls in source.tree.body:
                if not (
                    isinstance(cls, ast.ClassDef) and _is_shared_state_class(cls)
                ):
                    continue
                for method in cls.body:
                    if not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if method.name == "__init__":
                        continue  # construction precedes sharing
                    key = (source.path, f"{cls.name}.{method.name}")
                    chain = chains.get(key)
                    if chain is None:
                        continue
                    if locked_in.get(key, False):
                        continue
                    for line, field_name in _unlocked_self_writes(method):
                        yield Finding(
                            code=self.code,
                            path=source.path,
                            line=line,
                            message=(
                                f"self.{field_name} mutated without a lock in "
                                f"{cls.name}.{method.name}, reachable from a "
                                f"reactor callback ({' -> '.join(chain)}); "
                                "guard it, or suppress naming the single "
                                "owner that serializes access"
                            ),
                        )

    @staticmethod
    def _locked_call_lines(project: Project) -> dict[tuple[str, int], bool]:
        """(path, line) -> True when every call starting on that line
        sits lexically inside a lock-like ``with``.  Nested function
        bodies restart unlocked — they run later, not under the with."""
        locked_lines: dict[tuple[str, int], bool] = {}

        def walk(path: str, node: ast.AST, locked: bool) -> None:
            if isinstance(node, ast.With):
                now = locked or any(_is_locklike(item) for item in node.items)
                for child in ast.iter_child_nodes(node):
                    walk(path, child, now)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.iter_child_nodes(node):
                    walk(path, child, False)
                return
            if isinstance(node, ast.Lambda):
                walk(path, node.body, False)
                return
            if isinstance(node, ast.Call):
                key = (path, node.lineno)
                locked_lines[key] = locked_lines.get(key, True) and locked
            for child in ast.iter_child_nodes(node):
                walk(path, child, locked)

        for source in project.sources:
            walk(source.path, source.tree, False)
        return locked_lines

    @classmethod
    def _locked_on_all_paths(
        cls,
        graph: CallGraph,
        chains: dict[tuple[str, str], list[str]],
        project: Project,
    ) -> dict[tuple[str, str], bool]:
        """node key -> True when every seed-to-node chain crosses a
        lock-holding call site.

        Greatest-fixpoint dataflow over the reachable subgraph:
        ``locked_in(n) = AND over incoming edges (locked_in(caller) OR
        edge holds a lock)``.  Seed callbacks start unlocked (the
        reactor invokes them bare), everything else starts optimistic
        and is knocked down as unlocked paths are discovered.
        """
        locked_lines = cls._locked_call_lines(project)
        locked_in = {key: True for key in chains}
        for _, target in graph.seeds():
            if target.key in locked_in:
                locked_in[target.key] = False
        changed = True
        while changed:
            changed = False
            for key in chains:
                fn = graph.nodes.get(key)
                if fn is None:
                    continue
                for kind, name, line in fn.calls:
                    for callee in graph.resolve(fn, kind, name):
                        if not locked_in.get(callee.key, False):
                            continue
                        edge_locked = locked_in[key] or locked_lines.get(
                            (fn.path, line), False
                        )
                        if not edge_locked:
                            locked_in[callee.key] = False
                            changed = True
        return locked_in


@rule
class SharedStateEscapeAfterSpawn(Rule):
    """No ``@shared_state`` field rebinds after publishing ``self``.

    Handing ``self`` (or a bound method, or a closure over ``self``) to
    ``Thread(target=...)``, ``schedule``, ``call_later``/``call_every``,
    ``add_channel``, ``register_fd``, or ``set_ready_callback``
    publishes the object to another thread; any later unlocked
    ``self.field = ...`` in the same method races the new thread's first
    access — the classic escape-after-spawn bug, where ``__init__``
    starts its worker and then keeps initialising.  Finish initialising
    first, publish last; late rebinds that are genuinely safe (the
    spawned side provably waits) carry a suppression saying why.
    """

    code = "GL107"
    title = "@shared_state field rebound after publication to another thread"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.sources:
            for cls in source.tree.body:
                if not (
                    isinstance(cls, ast.ClassDef) and _is_shared_state_class(cls)
                ):
                    continue
                for method in cls.body:
                    if not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    published = self._publication(method)
                    if published is None:
                        continue
                    pub_line, pub_what = published
                    for line, field_name in _unlocked_self_writes(
                        method, after_line=pub_line
                    ):
                        yield Finding(
                            code=self.code,
                            path=source.path,
                            line=line,
                            message=(
                                f"self.{field_name} rebound after {pub_what} "
                                f"(line {pub_line}) published self to another "
                                f"thread in {cls.name}.{method.name}; publish "
                                "last, or take the lock both sides share"
                            ),
                        )

    @staticmethod
    def _publication(method: ast.AST) -> Optional[tuple[int, str]]:
        """First (line, call) in ``method`` that hands self to a thread."""
        best: Optional[tuple[int, str]] = None
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            else:
                continue
            if name not in PUBLICATION_CALLS:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            mentions_self = any(
                isinstance(sub, ast.Name) and sub.id == "self"
                for arg in args
                for sub in ast.walk(arg)
            )
            if not mentions_self:
                continue
            if best is None or node.lineno < best[0]:
                best = (node.lineno, f"{name}(...)")
        return best

"""gridlint core: sources, suppressions, findings, baselines, reporters.

The middleware's correctness rests on conventions no general-purpose
linter knows about — "never block on a reactor loop thread", "hot paths
resolve their instruments once", "every op code is classified for
idempotency".  gridlint encodes those conventions as AST rules with
stable codes so CI can enforce them mechanically:

* ``GL1xx`` — concurrency invariants (reactor, threads, locks)
* ``GL2xx`` — control-protocol invariants (op registry, idempotency)
* ``GL3xx`` — observability invariants (instrument lifecycle)
* ``GL4xx`` — determinism invariants (seeded randomness, no wall clock)
* ``GL0xx`` — engine diagnostics (malformed suppressions)

Suppression contract: a finding may be silenced per line with::

    do_something()  # gridlint: disable=GL101 -- why this is safe

The justification after ``--`` is **required**.  A suppression without
one does not suppress anything and is itself reported (GL001) — the
point of the comment is to leave the reasoning in the code, not to make
the linter shut up.  Unknown codes in a disable list are GL002, and a
suppression that matches no finding is GL003 (stale suppressions rot
into false confidence).

Baselines: ``--baseline FILE`` hides findings recorded in FILE so the
linter can land green on a tree with known debt; ``--write-baseline``
records the current findings.  The shipped tree carries **no** baseline
entries — every pre-existing violation was fixed or given a justified
suppression instead.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

__all__ = [
    "ENGINE_DIAGNOSTICS",
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "Source",
    "Suppression",
    "load_baseline",
    "render_json",
    "render_text",
    "rule",
    "run_rules",
    "write_baseline",
]

#: Engine-level diagnostic codes (not AST rules, but reported the same
#: way so CI and editors treat them uniformly).
ENGINE_DIAGNOSTICS: dict[str, str] = {
    "GL001": "suppression comment has no justification (`-- <reason>` required)",
    "GL002": "suppression names an unknown rule code",
    "GL003": "suppression matched no finding (stale; delete it)",
}

_SUPPRESS_RE = re.compile(
    r"#\s*gridlint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:--\s*(\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    message: str

    @property
    def key(self) -> str:
        """Baseline identity: stable across unrelated edits to other files."""
        return f"{self.code}:{self.path}:{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class Suppression:
    """One ``# gridlint: disable=...`` comment on one physical line."""

    line: int
    codes: tuple[str, ...]
    justification: str
    used: bool = False


class Source:
    """One parsed Python file plus its suppression table."""

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.tree = tree
        self.suppressions: list[Suppression] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = tuple(
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            )
            self.suppressions.append(
                Suppression(
                    line=lineno,
                    codes=codes,
                    justification=(match.group(2) or "").strip(),
                )
            )

    @classmethod
    def parse(cls, path: Path, root: Path) -> Optional["Source"]:
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError, ValueError):
            return None
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        return cls(rel, text, tree)

    def suppression_at(self, line: int, code: str) -> Optional[Suppression]:
        for suppression in self.suppressions:
            if suppression.line == line and code in suppression.codes:
                return suppression
        return None


class Project:
    """Every source under the scanned paths; what rules operate on."""

    def __init__(self, sources: list[Source]) -> None:
        self.sources = sources
        self._by_path = {source.path: source for source in sources}

    @classmethod
    def load(cls, paths: Iterable[Path], root: Optional[Path] = None) -> "Project":
        root = (root or Path.cwd()).resolve()
        files: list[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        sources = []
        seen: set[str] = set()
        for file in files:
            source = Source.parse(file, root)
            if source is not None and source.path not in seen:
                seen.add(source.path)
                sources.append(source)
        return cls(sources)

    def source(self, path: str) -> Optional[Source]:
        return self._by_path.get(path)

    def find_sources(self, suffix: str) -> list[Source]:
        """Sources whose (slash-normalised) path ends with ``suffix``."""
        return [
            source
            for source in self.sources
            if source.path.replace("\\", "/").endswith(suffix)
        ]


class Rule:
    """One named invariant check.  Subclasses set ``code``/``title`` and
    implement :meth:`check` yielding findings over the whole project
    (rules may be cross-file: call graphs, registries)."""

    code: str = ""
    title: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    @property
    def doc(self) -> str:
        return (self.__doc__ or "").strip()


_RULES: dict[str, type[Rule]] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a :class:`Rule` by its code."""
    instance_code = cls.code
    if not instance_code or instance_code in _RULES:
        raise ValueError(f"rule code missing or duplicated: {instance_code!r}")
    if not (cls.__doc__ or "").strip():
        raise ValueError(f"rule {instance_code} must document its invariant")
    _RULES[instance_code] = cls
    return cls


def all_rules() -> list[Rule]:
    # Import for side effects: the @rule decorators populate the registry.
    from tools.gridlint import rules as _rules  # noqa: F401

    return [factory() for _, factory in sorted(_RULES.items())]


def rule_catalog() -> dict[str, dict[str, str]]:
    """code -> {title, doc} for every registered rule plus diagnostics."""
    catalog = {
        code: {"title": title, "doc": title}
        for code, title in ENGINE_DIAGNOSTICS.items()
    }
    for instance in all_rules():
        catalog[instance.code] = {"title": instance.title, "doc": instance.doc}
    return catalog


@dataclass
class LintResult:
    """Everything one run produced, pre-rendering."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    checked_files: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def run_rules(
    project: Project,
    rules: Optional[list[Rule]] = None,
    baseline: Optional[set[str]] = None,
    select: Optional[set[str]] = None,
) -> LintResult:
    """Run every rule, then apply suppressions and the baseline.

    Order matters: suppression is applied to raw rule output first (a
    suppressed finding never needs baselining), then the baseline hides
    what remains, then the engine diagnostics are computed — they can
    not be suppressed or baselined (a lint about the lint must always
    surface).
    """
    rules = rules if rules is not None else all_rules()
    if select:
        rules = [r for r in rules if r.code in select]
    result = LintResult(
        checked_files=len(project.sources),
        rules_run=[r.code for r in rules],
    )
    raw: list[Finding] = []
    for instance in rules:
        raw.extend(instance.check(project))
    known_codes = set(ENGINE_DIAGNOSTICS) | set(_RULES)
    kept: list[Finding] = []
    for finding in raw:
        source = project.source(finding.path)
        suppression = (
            source.suppression_at(finding.line, finding.code) if source else None
        )
        if suppression is not None and suppression.justification:
            suppression.used = True
            result.suppressed.append(finding)
        else:
            kept.append(finding)
    baseline = baseline or set()
    for finding in kept:
        if finding.key in baseline:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    # Engine diagnostics: malformed, unknown, and stale suppressions.
    for source in project.sources:
        for suppression in source.suppressions:
            if not suppression.justification:
                result.findings.append(
                    Finding(
                        code="GL001",
                        path=source.path,
                        line=suppression.line,
                        message=(
                            "suppression has no justification; write "
                            "`# gridlint: disable="
                            + ",".join(suppression.codes)
                            + " -- <why this is safe>`"
                        ),
                    )
                )
            for code in suppression.codes:
                if code not in known_codes:
                    result.findings.append(
                        Finding(
                            code="GL002",
                            path=source.path,
                            line=suppression.line,
                            message=f"unknown rule code {code!r} in suppression",
                        )
                    )
            if (
                suppression.justification
                and not suppression.used
                and all(code in known_codes for code in suppression.codes)
                and (select is None or any(c in select for c in suppression.codes))
            ):
                result.findings.append(
                    Finding(
                        code="GL003",
                        path=source.path,
                        line=suppression.line,
                        message=(
                            "suppression matched no finding "
                            f"({', '.join(suppression.codes)}); delete it"
                        ),
                    )
                )
    result.findings.sort(key=lambda f: (f.path, f.line, f.code))
    return result


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def load_baseline(path: Path) -> set[str]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return set()
    if isinstance(data, dict):
        entries = data.get("findings", [])
    else:
        entries = data
    return {entry for entry in entries if isinstance(entry, str)}


def write_baseline(path: Path, result: LintResult) -> None:
    keys = sorted(
        {finding.key for finding in result.findings}
        | {finding.key for finding in result.baselined}
    )
    path.write_text(
        json.dumps({"version": 1, "findings": keys}, indent=2) + "\n",
        encoding="utf-8",
    )


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


def render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    lines.append(
        f"gridlint: {len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{result.checked_files} file(s), "
        f"rules: {', '.join(result.rules_run)}"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    def encode(finding: Finding) -> dict[str, object]:
        return {
            "code": finding.code,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }

    return json.dumps(
        {
            "version": 1,
            "findings": [encode(f) for f in result.findings],
            "suppressed": [encode(f) for f in result.suppressed],
            "baselined": [encode(f) for f in result.baselined],
            "checked_files": result.checked_files,
            "rules": result.rules_run,
        },
        indent=2,
    )

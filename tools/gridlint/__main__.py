"""Command-line entry point: ``python -m tools.gridlint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from tools.gridlint.engine import (
    Project,
    all_rules,
    load_baseline,
    render_json,
    render_text,
    rule_catalog,
    run_rules,
    write_baseline,
)


def _changed_files(base: str) -> Optional[set[Path]]:
    """Absolute paths of files changed vs ``base``, or None on git error.

    Untracked files are included: a brand-new file is exactly what a
    pre-commit pass must not skip.
    """
    try:
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", base],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = ""
        if isinstance(exc, subprocess.CalledProcessError) and exc.stderr:
            detail = f": {exc.stderr.strip()}"
        print(f"gridlint: --changed-only failed ({exc}){detail}", file=sys.stderr)
        return None
    root = Path(toplevel)
    return {
        (root / line).resolve()
        for line in (*diff.splitlines(), *untracked.splitlines())
        if line.strip()
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.gridlint",
        description="Project-specific invariant checks for the grid middleware.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="JSON baseline of known findings to hide",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="record current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="root for relative paths in reports (default: cwd)",
    )
    parser.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="BASE",
        help=(
            "only report findings in files changed vs BASE "
            "(git diff --name-only BASE; default HEAD).  The whole tree "
            "is still parsed, so call-graph rules stay sound — only the "
            "report is scoped"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, entry in sorted(rule_catalog().items()):
            print(f"{code}: {entry['title']}")
            doc = entry["doc"]
            if doc and doc != entry["title"]:
                for line in doc.splitlines():
                    print(f"    {line.strip()}" if line.strip() else "")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"gridlint: path(s) not found: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    select = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",") if code.strip()}
        known = {r.code for r in all_rules()}
        unknown = select - known
        if unknown:
            print(
                f"gridlint: unknown rule code(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    project = Project.load(paths, root=args.root)
    baseline = load_baseline(args.baseline) if args.baseline else None
    result = run_rules(project, baseline=baseline, select=select)

    if args.changed_only is not None:
        changed = _changed_files(args.changed_only)
        if changed is None:
            return 2
        result.findings = [
            f for f in result.findings if Path(f.path).resolve() in changed
        ]

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, result)
        print(
            f"gridlint: wrote {len(result.findings) + len(result.baselined)} "
            f"finding(s) to {args.write_baseline}"
        )
        return 0

    print(render_json(result) if args.format == "json" else render_text(result))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: ``python -m tools.gridlint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from tools.gridlint.engine import (
    Project,
    all_rules,
    load_baseline,
    render_json,
    render_text,
    rule_catalog,
    run_rules,
    write_baseline,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.gridlint",
        description="Project-specific invariant checks for the grid middleware.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="JSON baseline of known findings to hide",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="record current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="root for relative paths in reports (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, entry in sorted(rule_catalog().items()):
            print(f"{code}: {entry['title']}")
            doc = entry["doc"]
            if doc and doc != entry["title"]:
                for line in doc.splitlines():
                    print(f"    {line.strip()}" if line.strip() else "")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"gridlint: path(s) not found: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    select = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",") if code.strip()}
        known = {r.code for r in all_rules()}
        unknown = select - known
        if unknown:
            print(
                f"gridlint: unknown rule code(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    project = Project.load(paths, root=args.root)
    baseline = load_baseline(args.baseline) if args.baseline else None
    result = run_rules(project, baseline=baseline, select=select)

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, result)
        print(
            f"gridlint: wrote {len(result.findings) + len(result.baselined)} "
            f"finding(s) to {args.write_baseline}"
        )
        return 0

    print(render_json(result) if args.format == "json" else render_text(result))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())

"""gridlint — project-specific static analysis for the proxy middleware.

Run it as a module::

    python -m tools.gridlint src/repro
    python -m tools.gridlint src/repro --format=json

See :mod:`tools.gridlint.engine` for the engine/suppression contract and
:mod:`tools.gridlint.rules` for the rule catalog.
"""

from __future__ import annotations

from tools.gridlint.engine import (
    ENGINE_DIAGNOSTICS,
    Finding,
    LintResult,
    Project,
    Rule,
    Source,
    Suppression,
    all_rules,
    load_baseline,
    render_json,
    render_text,
    rule,
    rule_catalog,
    run_rules,
    write_baseline,
)

__all__ = [
    "ENGINE_DIAGNOSTICS",
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "Source",
    "Suppression",
    "all_rules",
    "load_baseline",
    "render_json",
    "render_text",
    "rule",
    "rule_catalog",
    "run_rules",
    "write_baseline",
]

"""Project-internal developer tooling (not shipped with the library)."""

"""Distributed thread support (paper future work).

The paper lists "distributed thread support" among the work its
architecture is meant to host.  :mod:`repro.threads.remote` provides it:
thread-like handles whose bodies execute on grid nodes — possibly at
other sites — through the same authenticated proxy job path as ordinary
submissions.
"""

from repro.threads.remote import GridExecutor, GridThread, GridThreadError

__all__ = ["GridExecutor", "GridThread", "GridThreadError"]

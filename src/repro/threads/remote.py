"""Grid threads: thread-like handles over remote execution.

A :class:`GridThread` looks like :class:`threading.Thread` — ``start``,
``join``, ``is_alive``, plus ``result()`` — but its body is a registered
task executed on a grid node chosen by the scheduler, possibly at a
remote site.  All placement, authentication and permission checking ride
the existing proxy path; nothing new crosses the wire.

:class:`GridExecutor` adds the convenience layer: submit many tasks, map
over parameter lists, gather results — a minimal
``concurrent.futures``-style interface for the grid.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence

from repro.core.grid import Grid

__all__ = ["GridExecutor", "GridThread", "GridThreadError"]


class GridThreadError(Exception):
    """Misuse of a grid thread (double start, result before join, ...)."""


class GridThread:
    """One unit of work running somewhere on the grid."""

    def __init__(
        self,
        grid: Grid,
        userid: str,
        password: str,
        task: str,
        params: Optional[dict] = None,
        target_site: Optional[str] = None,
        origin_site: Optional[str] = None,
        timeout: float = 60.0,
    ):
        self.grid = grid
        self.userid = userid
        self.password = password
        self.task = task
        self.params = params or {}
        self.target_site = target_site
        self.origin_site = origin_site
        self.timeout = timeout
        self._thread: Optional[threading.Thread] = None
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._finished = threading.Event()

    def start(self) -> "GridThread":
        if self._thread is not None:
            raise GridThreadError("grid thread already started")

        def body() -> None:
            try:
                self._result = self.grid.submit_job(
                    self.userid,
                    self.password,
                    self.task,
                    params=self.params,
                    origin_site=self.origin_site,
                    target_site=self.target_site,
                    timeout=self.timeout,
                )
            except BaseException as exc:
                self._error = exc
            finally:
                self._finished.set()

        self._thread = threading.Thread(  # gridlint: disable=GL102 -- GridThread mirrors a remote thread with a local one; collected via result()
            target=body, daemon=True, name=f"grid-thread-{self.task}"
        )
        self._thread.start()
        return self

    def is_alive(self) -> bool:
        return self._thread is not None and not self._finished.is_set()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is None:
            raise GridThreadError("grid thread was never started")
        if not self._finished.wait(timeout=timeout):
            raise TimeoutError(f"grid thread {self.task!r} still running")

    def result(self) -> Any:
        """The task's return value; raises its error.  Requires join."""
        if not self._finished.is_set():
            raise GridThreadError("grid thread not finished; join() first")
        if self._error is not None:
            raise self._error
        return self._result


class GridExecutor:
    """Submit-many / map interface over grid threads."""

    def __init__(
        self,
        grid: Grid,
        userid: str,
        password: str,
        origin_site: Optional[str] = None,
        timeout: float = 60.0,
    ):
        self.grid = grid
        self.userid = userid
        self.password = password
        self.origin_site = origin_site
        self.timeout = timeout
        self._threads: list[GridThread] = []

    def submit(
        self,
        task: str,
        params: Optional[dict] = None,
        target_site: Optional[str] = None,
    ) -> GridThread:
        thread = GridThread(
            self.grid,
            self.userid,
            self.password,
            task,
            params=params,
            target_site=target_site,
            origin_site=self.origin_site,
            timeout=self.timeout,
        ).start()
        self._threads.append(thread)
        return thread

    def map(
        self,
        task: str,
        param_list: Sequence[dict],
        spread_sites: bool = True,
    ) -> list[Any]:
        """Run ``task`` once per parameter dict; returns ordered results.

        With ``spread_sites`` the invocations round-robin across the
        grid's sites (distributed threads in the literal sense).
        """
        sites = sorted(self.grid.sites) if spread_sites else [None]
        threads = [
            self.submit(
                task,
                params=params,
                target_site=sites[index % len(sites)] if spread_sites else None,
            )
            for index, params in enumerate(param_list)
        ]
        for thread in threads:
            thread.join(timeout=self.timeout)
        return [thread.result() for thread in threads]

    def shutdown(self, timeout: Optional[float] = 60.0) -> None:
        """Wait for every outstanding thread."""
        for thread in self._threads:
            if thread.is_alive():
                thread.join(timeout=timeout)

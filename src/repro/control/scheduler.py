"""Resource scheduling: round-robin baseline vs load balancing.

The paper: "In its original form, the MPI uses the round-robin method to
distribute the processes among the nodes" and proposes a scheduler that
"provides balanced process distribution using the grid's status
information … the best possible use and optimization of the available
resources."

Both schedulers share one interface so experiment E6 swaps them under an
identical workload:

* :class:`RoundRobinScheduler` — ignores all status information, cycles
  the node list (the baseline);
* :class:`LoadBalancedScheduler` — minimum-estimated-completion-time:
  tracks outstanding work per node and assigns each job where it will
  finish earliest given node speed, current queue and owner load.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field

__all__ = [
    "Job",
    "LoadBalancedScheduler",
    "NodeView",
    "RoundRobinScheduler",
    "Scheduler",
    "SchedulerError",
    "next_job_id",
    "reset_job_ids",
]

_job_ids = itertools.count(1)


def next_job_id() -> int:
    """Allocate the next auto-assigned job id."""
    return next(_job_ids)


def reset_job_ids(start: int = 1) -> None:
    """Rewind the auto-id allocator.

    Auto-assigned ids are a convenience for ad-hoc Jobs; anything that
    claims bit-for-bit reproducibility (``workloads/generators.py``, the
    benchmarks, the test suites via the ``job_id_counter`` fixture)
    either passes explicit ids or resets this counter first, so the same
    seed yields the same ids regardless of what ran earlier in the
    process.
    """
    global _job_ids
    _job_ids = itertools.count(start)


class SchedulerError(Exception):
    """No eligible node, or malformed job parameters."""


@dataclass(frozen=True)
class Job:
    """A unit of grid work to place."""

    work: float  # CPU-seconds on a reference (speed 1.0) node
    ram: int = 0
    job_id: int = field(default_factory=next_job_id)

    def __post_init__(self) -> None:
        if self.work < 0:
            raise SchedulerError(f"negative work: {self.work}")
        if self.ram < 0:
            raise SchedulerError(f"negative ram: {self.ram}")


@dataclass
class NodeView:
    """What the scheduler knows about a node from the status information."""

    name: str
    site: str
    speed: float = 1.0
    owner_load: float = 0.0  # fraction of CPU the owner keeps
    ram_free: int = 1 << 30
    alive: bool = True
    #: outstanding grid work (CPU-seconds) the scheduler has placed here
    queued_work: float = 0.0

    def effective_rate(self) -> float:
        """CPU-seconds of grid work this node absorbs per second."""
        return self.speed * max(0.0, 1.0 - self.owner_load)

    def estimated_completion(self, job: Job) -> float:
        """Seconds until ``job`` would finish if placed here now."""
        rate = self.effective_rate()
        if rate <= 0:
            return float("inf")
        return (self.queued_work + job.work) / rate


class Scheduler(abc.ABC):
    """Assigns jobs to nodes; subclasses differ only in the choice rule."""

    def __init__(self, nodes: list[NodeView]):
        if not nodes:
            raise SchedulerError("scheduler needs at least one node")
        self.nodes = {node.name: node for node in nodes}
        if len(self.nodes) != len(nodes):
            raise SchedulerError("duplicate node names")
        self.assignments: list[tuple[int, str]] = []

    def eligible(self, job: Job) -> list[NodeView]:
        return [
            node
            for node in self.nodes.values()
            if node.alive and node.ram_free >= job.ram
        ]

    @abc.abstractmethod
    def choose(self, job: Job, candidates: list[NodeView]) -> NodeView:
        """Pick the node for one job from non-empty ``candidates``."""

    def assign(self, job: Job) -> str:
        """Place one job; returns the node name and updates queue state."""
        candidates = self.eligible(job)
        if not candidates:
            raise SchedulerError(
                f"no eligible node for job {job.job_id} "
                f"(work={job.work}, ram={job.ram})"
            )
        node = self.choose(job, candidates)
        node.queued_work += job.work
        self.assignments.append((job.job_id, node.name))
        return node.name

    def assign_all(self, jobs: list[Job]) -> dict[int, str]:
        return {job.job_id: self.assign(job) for job in jobs}

    def complete(self, node_name: str, work: float) -> None:
        """Report finished work so queue estimates stay honest."""
        node = self.nodes[node_name]
        node.queued_work = max(0.0, node.queued_work - work)

    def makespan_estimate(self) -> float:
        """Time until every queued assignment drains, by the model."""
        return max(
            (
                node.queued_work / node.effective_rate()
                for node in self.nodes.values()
                if node.queued_work > 0 and node.effective_rate() > 0
            ),
            default=0.0,
        )


class RoundRobinScheduler(Scheduler):
    """MPI's native policy: cycle the node list, blind to load and speed."""

    def __init__(self, nodes: list[NodeView]):
        super().__init__(nodes)
        self._order = [node.name for node in nodes]
        self._next = 0

    def choose(self, job: Job, candidates: list[NodeView]) -> NodeView:
        eligible_names = {node.name for node in candidates}
        # Advance the cursor until an eligible node comes up; the cursor
        # keeps rotating across calls exactly like mpirun's host list.
        for _ in range(len(self._order)):
            name = self._order[self._next % len(self._order)]
            self._next += 1
            if name in eligible_names:
                return self.nodes[name]
        raise SchedulerError("round-robin cursor found no eligible node")


class LoadBalancedScheduler(Scheduler):
    """Minimum estimated completion time using the grid's status info."""

    def choose(self, job: Job, candidates: list[NodeView]) -> NodeView:
        return min(
            candidates, key=lambda node: (node.estimated_completion(job), node.name)
        )

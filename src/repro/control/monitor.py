"""Distributed monitoring: per-site collection, on-demand compilation.

The design point the paper argues for: "The control and collection of
status information on the grid are done in a distributed form, with each
proxy responsible for the collection and control of the site where it is
located. … This approach reduces the overhead in the control
communication, since it is not always necessary to check the grid's
overall status, but only that of some of the sites."

:class:`SiteStatusCache` implements the freshness logic at a querying
proxy: per-site records with a time-to-live, so repeated queries within
the TTL cost nothing, and a global compilation only refreshes the sites
that are stale.  :class:`GlobalStatusCompiler` drives the refreshes
through a pluggable fetch function (the live grid passes
``proxy.query_peer_status``; the simulation passes a modelled fetch) and
counts queries/bytes so experiment E5 can compare against the
centralised baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["GlobalStatusCompiler", "SiteStatusCache", "StatusRecord"]


@dataclass
class StatusRecord:
    """One site's cached status."""

    site: str
    collected_at: float
    entries: list[dict[str, Any]] = field(default_factory=list)

    def age(self, now: float) -> float:
        return now - self.collected_at


class SiteStatusCache:
    """Per-site status records with a freshness TTL."""

    def __init__(self, ttl: float = 30.0):
        if ttl < 0:
            raise ValueError(f"negative ttl: {ttl}")
        self.ttl = ttl
        self._records: dict[str, StatusRecord] = {}

    def put(self, site: str, entries: list[dict[str, Any]], now: float) -> None:
        self._records[site] = StatusRecord(
            site=site, collected_at=now, entries=list(entries)
        )

    def get(self, site: str, now: float) -> Optional[StatusRecord]:
        """Fresh record or None (missing or stale)."""
        record = self._records.get(site)
        if record is None or record.age(now) > self.ttl:
            return None
        return record

    def get_any_age(self, site: str) -> Optional[StatusRecord]:
        """The record regardless of staleness (degraded-mode reads)."""
        return self._records.get(site)

    def stale_sites(self, sites: list[str], now: float) -> list[str]:
        return [site for site in sites if self.get(site, now) is None]

    def evict(self, site: str) -> None:
        self._records.pop(site, None)

    def known_sites(self) -> list[str]:
        return sorted(self._records)


class GlobalStatusCompiler:
    """Compiles grid-wide status by refreshing only the stale sites.

    ``fetch(site)`` returns the per-station entry list for a site —
    whatever transport that implies is the caller's business, keeping the
    compiler usable from both the live runtime and the simulation.
    """

    def __init__(
        self,
        sites: list[str],
        fetch: Callable[[str], list[dict[str, Any]]],
        clock: Callable[[], float],
        ttl: float = 30.0,
    ):
        self.sites = list(sites)
        self.fetch = fetch
        self.clock = clock
        self.cache = SiteStatusCache(ttl=ttl)
        self.queries_sent = 0
        self.entries_transferred = 0

    def site_status(self, site: str) -> list[dict[str, Any]]:
        """One site's status, fetched only when the cache is stale.

        This is the common case the paper optimises: "it is not always
        necessary to check the grid's overall status, but only that of
        some of the sites."
        """
        if site not in self.sites:
            raise KeyError(f"unknown site: {site!r}")
        now = self.clock()
        record = self.cache.get(site, now)
        if record is None:
            entries = self.fetch(site)
            self.queries_sent += 1
            self.entries_transferred += len(entries)
            self.cache.put(site, entries, now)
            record = self.cache.get(site, now)
            assert record is not None
        return record.entries

    def global_status(self) -> dict[str, list[dict[str, Any]]]:
        """The full compilation; refreshes only stale sites."""
        return {site: self.site_status(site) for site in self.sites}

    def add_site(self, site: str) -> None:
        if site not in self.sites:
            self.sites.append(site)

    def remove_site(self, site: str) -> None:
        """Forget a departed site (failure recovery path)."""
        if site in self.sites:
            self.sites.remove(site)
        self.cache.evict(site)

"""Usage accounting and reward mechanisms.

The paper lists, among desirable grid services, "resource and task
storage, and reward mechanisms" (citing Buyya's economic grid
scheduling).  This module provides the bookkeeping half: a
:class:`UsageLedger` records every job executed through the proxies —
who ran it, whose site donated the cycles — and a :class:`CreditPolicy`
converts the ledger into credits: sites *earn* for hosting foreign work,
users *spend* for consuming it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["CreditPolicy", "UsageLedger", "UsageRecord"]


@dataclass(frozen=True)
class UsageRecord:
    """One executed job, as the destination proxy accounted it."""

    userid: str
    origin_site: str
    executed_site: str
    node: str
    task: str
    cpu_seconds: float
    recorded_at: float

    @property
    def is_foreign(self) -> bool:
        """True when the executing site donated cycles to another site."""
        return self.origin_site != self.executed_site


class UsageLedger:
    """Append-only record of grid work, queryable by user and by site."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock or (lambda: 0.0)
        self._records: list[UsageRecord] = []
        self._lock = threading.Lock()

    def record(
        self,
        userid: str,
        origin_site: str,
        executed_site: str,
        node: str,
        task: str,
        cpu_seconds: float,
    ) -> UsageRecord:
        if cpu_seconds < 0:
            raise ValueError(f"negative cpu_seconds: {cpu_seconds}")
        entry = UsageRecord(
            userid=userid,
            origin_site=origin_site,
            executed_site=executed_site,
            node=node,
            task=task,
            cpu_seconds=cpu_seconds,
            recorded_at=self.clock(),
        )
        with self._lock:
            self._records.append(entry)
        return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> list[UsageRecord]:
        with self._lock:
            return list(self._records)

    # -- aggregations ------------------------------------------------------

    def usage_by_user(self) -> dict[str, float]:
        """CPU-seconds consumed per user."""
        totals: dict[str, float] = {}
        for entry in self.records():
            totals[entry.userid] = totals.get(entry.userid, 0.0) + entry.cpu_seconds
        return totals

    def contribution_by_site(self) -> dict[str, float]:
        """CPU-seconds each site executed for *other* sites' users."""
        totals: dict[str, float] = {}
        for entry in self.records():
            if entry.is_foreign:
                totals[entry.executed_site] = (
                    totals.get(entry.executed_site, 0.0) + entry.cpu_seconds
                )
        return totals

    def consumption_by_site(self) -> dict[str, float]:
        """CPU-seconds each site's users consumed *elsewhere*."""
        totals: dict[str, float] = {}
        for entry in self.records():
            if entry.is_foreign:
                totals[entry.origin_site] = (
                    totals.get(entry.origin_site, 0.0) + entry.cpu_seconds
                )
        return totals

    def jobs_by_task(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.records():
            counts[entry.task] = counts.get(entry.task, 0) + 1
        return counts


@dataclass
class CreditPolicy:
    """Converts ledger entries into credits.

    ``rate`` is credits per donated CPU-second; hosting foreign work
    earns, consuming foreign cycles costs.  Local work is free — the
    owner's site is serving its own users.
    """

    rate: float = 1.0
    initial_balance: float = 0.0
    _balances: dict[str, float] = field(default_factory=dict)

    def site_balance(self, site: str) -> float:
        return self._balances.get(site, self.initial_balance)

    def apply(self, entry: UsageRecord) -> None:
        if not entry.is_foreign:
            return
        amount = entry.cpu_seconds * self.rate
        self._balances[entry.executed_site] = (
            self.site_balance(entry.executed_site) + amount
        )
        self._balances[entry.origin_site] = (
            self.site_balance(entry.origin_site) - amount
        )

    def settle(self, ledger: UsageLedger) -> dict[str, float]:
        """Recompute all balances from scratch over the full ledger."""
        self._balances.clear()
        for entry in ledger.records():
            self.apply(entry)
        return dict(self._balances)

    def in_balance(self) -> bool:
        """Credits are zero-sum across the grid."""
        return abs(sum(self._balances.values())) < 1e-9

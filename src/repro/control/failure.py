"""Heartbeat-based failure detection and recovery bookkeeping.

The paper argues its distributed control "reduces the effect of failures
on a given site or proxy": losing one proxy costs the grid that site's
capacity, not the whole grid.  :class:`FailureDetector` provides the
mechanism — per-peer last-heard timestamps, a suspicion timeout, and
callbacks on suspect/recover transitions.  It is clock-injected so the
live runtime drives it with wall time and experiment E7 with simulated
time.

Transition callbacks fire **exactly once per transition**: state changes
are decided under a lock (the live runtime calls ``heard_from`` from
receiver threads while ``check`` runs on a monitor thread, and the
unlocked implementation could double-fire a callback when both observed
the same stale state), and callbacks run outside the lock so they may
re-enter the detector.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.racesan import shared_state

__all__ = ["FailureDetector", "PeerState", "PeerHealth"]


class PeerState(enum.Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class PeerHealth:
    peer: str
    state: PeerState
    last_heard: float
    suspected_at: Optional[float] = None


@shared_state
class FailureDetector:
    """Timeout-based detector over heartbeat observations.

    A peer is ALIVE while heartbeats arrive within ``suspect_after``
    seconds, SUSPECT between ``suspect_after`` and ``dead_after``, and
    DEAD beyond that.  State changes fire the registered callbacks once
    per transition.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        suspect_after: float = 3.0,
        dead_after: float = 10.0,
    ):
        if suspect_after <= 0 or dead_after <= suspect_after:
            raise ValueError(
                f"need 0 < suspect_after < dead_after, got "
                f"{suspect_after}, {dead_after}"
            )
        self.clock = clock
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self._peers: dict[str, PeerHealth] = {}
        self._lock = threading.Lock()
        self.on_suspect: list[Callable[[str], None]] = []
        self.on_dead: list[Callable[[str], None]] = []
        self.on_recover: list[Callable[[str], None]] = []

    # -- observations ------------------------------------------------------

    def watch(self, peer: str) -> None:
        """Start monitoring a peer (counts as hearing from it now)."""
        with self._lock:
            self._peers[peer] = PeerHealth(
                peer=peer, state=PeerState.ALIVE, last_heard=self.clock()
            )

    def unwatch(self, peer: str) -> None:
        with self._lock:
            self._peers.pop(peer, None)

    def heard_from(self, peer: str) -> None:
        """Record a heartbeat or any authenticated traffic from ``peer``."""
        recovered = False
        with self._lock:
            health = self._peers.get(peer)
            if health is None:
                self._peers[peer] = PeerHealth(
                    peer=peer, state=PeerState.ALIVE, last_heard=self.clock()
                )
                return
            health.last_heard = self.clock()
            if health.state is not PeerState.ALIVE:
                health.state = PeerState.ALIVE
                health.suspected_at = None
                recovered = True
        if recovered:
            for callback in list(self.on_recover):
                callback(peer)

    def mark_dead(self, peer: str) -> None:
        """Declare a peer dead out of band (e.g. its tunnel closed).

        Fires ``on_dead`` once unless the peer was already DEAD; unknown
        peers are ignored.
        """
        with self._lock:
            health = self._peers.get(peer)
            died = health is not None and health.state is not PeerState.DEAD
            if died:
                health.state = PeerState.DEAD
        if died:
            for callback in list(self.on_dead):
                callback(peer)

    # -- evaluation ------------------------------------------------------------

    def check(self) -> list[PeerHealth]:
        """Re-evaluate every peer; fires transition callbacks.

        Call periodically (the runtime) or after advancing simulated time
        (the benchmarks).  Returns the current health list.
        """
        died: list[str] = []
        suspected: list[str] = []
        with self._lock:
            now = self.clock()
            for health in self._peers.values():
                silence = now - health.last_heard
                if silence > self.dead_after:
                    if health.state is not PeerState.DEAD:
                        health.state = PeerState.DEAD
                        died.append(health.peer)
                elif silence > self.suspect_after:
                    if health.state is PeerState.ALIVE:
                        health.state = PeerState.SUSPECT
                        health.suspected_at = now
                        suspected.append(health.peer)
            snapshot = list(self._peers.values())
        for peer in died:
            for callback in list(self.on_dead):
                callback(peer)
        for peer in suspected:
            for callback in list(self.on_suspect):
                callback(peer)
        return snapshot

    def state_of(self, peer: str) -> PeerState:
        with self._lock:
            try:
                return self._peers[peer].state
            except KeyError:
                raise KeyError(f"not watching peer: {peer!r}") from None

    def is_watching(self, peer: str) -> bool:
        with self._lock:
            return peer in self._peers

    def alive_peers(self) -> list[str]:
        return self._peers_in(PeerState.ALIVE)

    def dead_peers(self) -> list[str]:
        return self._peers_in(PeerState.DEAD)

    def _peers_in(self, state: PeerState) -> list[str]:
        self.check()
        with self._lock:
            return sorted(
                peer
                for peer, health in self._peers.items()
                if health.state is state
            )

    def detection_latency(self, failed_at: float, detected_at: float) -> float:
        """Helper for experiments: time from failure to DEAD verdict."""
        return detected_at - failed_at

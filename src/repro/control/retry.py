"""Uniform retry/timeout/backoff policy for the whole stack.

Before this module every layer improvised its own error handling: the
tunnel raised on first failure, the proxy looped over peers ad hoc, and
callers guessed at timeouts.  :class:`RetryPolicy` centralises the rules:

* **exponential backoff with jitter** — attempt *n* sleeps
  ``base_delay * multiplier**n``, capped at ``max_delay``, with a
  bounded random perturbation so synchronised retry storms decorrelate;
* **deadline budgets** — a :class:`Deadline` caps the *total* time spent
  across all attempts (sleeps included); the policy never starts a sleep
  it cannot afford;
* **idempotency guards** — a non-idempotent operation is executed at
  most once: :meth:`RetryPolicy.call` refuses to re-run it no matter how
  retryable the failure looks.  Callers declare idempotency explicitly
  (see ``IDEMPOTENT_OPS`` in :mod:`repro.core.protocol`).

Jitter randomness is injectable (``rng``) so chaos tests can replay the
exact backoff schedule from a seed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.transport.errors import TransportError

__all__ = ["Deadline", "RetryError", "RetryPolicy"]


class RetryError(Exception):
    """All attempts failed (or the policy refused to retry).

    ``last`` is the exception from the final attempt; ``attempts`` is how
    many times the operation actually ran.
    """

    def __init__(self, message: str, last: BaseException, attempts: int):
        super().__init__(message)
        self.last = last
        self.attempts = attempts


class Deadline:
    """A total time budget shared across attempts.

    Clock-injected like the rest of the stack so simulated-time tests can
    drive it; ``None`` budget means unlimited.
    """

    def __init__(
        self,
        budget: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget = budget
        self.clock = clock
        self._started = clock()

    def elapsed(self) -> float:
        return self.clock() - self._started

    def remaining(self) -> float:
        if self.budget is None:
            return float("inf")
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def clamp(self, timeout: Optional[float]) -> float:
        """The largest per-attempt timeout the budget still affords."""
        remaining = self.remaining()
        if timeout is None:
            return max(0.0, remaining) if remaining != float("inf") else remaining
        return max(0.0, min(timeout, remaining))


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, how long to wait, and what counts as transient.

    ``retryable`` lists the exception types worth another attempt;
    anything else propagates immediately.  ``deadline`` bounds the total
    wall time across attempts and sleeps.  ``jitter`` is the maximum
    fractional perturbation of each nominal delay (0.1 = ±10%).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None
    retryable: Tuple[Type[BaseException], ...] = (TransportError,)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}, {self.max_delay}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")

    # -- schedule ----------------------------------------------------------

    def nominal_delays(self) -> Iterator[float]:
        """The un-jittered backoff sequence (one delay per retry gap)."""
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """Backoff sequence with jitter applied.

        Every jittered delay lies within ``jitter`` fraction of its
        nominal value, so the sequence stays ordered enough to reason
        about while decorrelating synchronised retriers.
        """
        rng = rng or random
        for nominal in self.nominal_delays():
            if self.jitter == 0.0 or nominal == 0.0:
                yield nominal
            else:
                yield nominal * (1.0 + rng.uniform(-self.jitter, self.jitter))

    # -- execution ---------------------------------------------------------

    def call(
        self,
        fn: Callable[[Deadline], object],
        idempotent: bool = True,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ):
        """Run ``fn`` under this policy; returns its result.

        ``fn`` receives the live :class:`Deadline` so it can clamp its own
        per-attempt timeouts to the remaining budget.  Non-idempotent
        operations run exactly once — the guard exists because a retried
        duplicate of e.g. a job submission could execute twice.

        Raises :class:`RetryError` wrapping the final failure when every
        permitted attempt failed.
        """
        deadline = Deadline(self.deadline, clock=clock)
        attempts = 0
        gaps = self.delays(rng=rng)
        while True:
            attempts += 1
            try:
                return fn(deadline)
            except self.retryable as exc:
                if not idempotent:
                    raise RetryError(
                        f"not retrying non-idempotent operation after: {exc}",
                        last=exc,
                        attempts=attempts,
                    ) from exc
                if attempts >= self.max_attempts:
                    raise RetryError(
                        f"gave up after {attempts} attempts: {exc}",
                        last=exc,
                        attempts=attempts,
                    ) from exc
                pause = next(gaps)
                if deadline.remaining() <= pause:
                    raise RetryError(
                        f"deadline exhausted after {attempts} attempts: {exc}",
                        last=exc,
                        attempts=attempts,
                    ) from exc
                if on_retry is not None:
                    on_retry(attempts, exc)
                if pause > 0:
                    sleep(pause)

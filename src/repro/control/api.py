"""The Grid API layer: station-state and grid-summary queries.

The paper's layer: "this layer contains grid manipulation functions,
returning, for instance, the state of a station (availability of RAM
memory, CPU and HD)."  :class:`GridApi` is the façade the command line
and the web interface call; everything returns plain dicts so the UIs
can render them without touching middleware types.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover — runtime import would be circular:
    # core.grid imports control.accounting, which initialises this package
    from repro.core.grid import Grid

__all__ = ["GridApi"]


class GridApi:
    """User-facing query functions over a live grid."""

    def __init__(self, grid: "Grid"):
        self.grid = grid

    # -- station state -----------------------------------------------------

    def station_state(self, node: str) -> dict[str, Any]:
        """RAM / CPU / HD availability of one station."""
        from repro.core.grid import GridError

        site_name = self.grid.directory.find_node(node)
        if site_name is None:
            raise GridError(f"unknown station: {node!r}")
        status = self.grid.sites[site_name].nodes[node].status()
        return {
            "node": status.node,
            "site": status.site,
            "cpu_speed": status.cpu_speed,
            "ram_total": status.ram_total,
            "ram_free": status.ram_free,
            "disk_total": status.disk_total,
            "disk_free": status.disk_free,
            "running_tasks": status.running_tasks,
            "alive": status.alive,
        }

    def site_state(self, site: str) -> list[dict[str, Any]]:
        """All station states of one site, via its proxy's collection."""
        return self.grid.proxy_of(site).local_status()

    def grid_state(self, via_site: Optional[str] = None) -> dict[str, list[dict]]:
        """The compiled global status."""
        return self.grid.global_status(via_site=via_site)

    # -- observability -----------------------------------------------------

    def observability(
        self,
        via_site: Optional[str] = None,
        trace_id: Optional[str] = None,
        max_spans: Optional[int] = None,
    ) -> dict[str, Optional[dict]]:
        """The compiled grid-wide telemetry view (``OBS_DUMP`` per site).

        Pass ``trace_id`` to narrow every site's spans to one trace and
        read a single request's per-hop story across the grid.
        """
        return self.grid.global_observability(
            via_site=via_site, trace_id=trace_id, max_spans=max_spans
        )

    # -- summaries ---------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """One-screen overview for the UIs."""
        status = self.grid.global_status() if self.grid.sites else {}
        total_nodes = sum(len(entries) for entries in status.values())
        alive_nodes = sum(
            1 for entries in status.values() for e in entries if e["alive"]
        )
        return {
            "sites": len(self.grid.sites),
            "proxies": len(self.grid.proxies),
            "nodes": total_nodes,
            "alive_nodes": alive_nodes,
            "users": len(self.grid.users.known_users()),
            "site_names": sorted(self.grid.sites),
        }

    def topology(self) -> dict[str, Any]:
        """Sites, their proxies, nodes and live tunnels."""
        return {
            "sites": {
                name: {
                    "proxy": self.grid.directory.proxy_of_site(name),
                    "nodes": self.grid.directory.nodes_of_site(name),
                    "tunnels": self.grid.proxy_of(name).peers(),
                }
                for name in sorted(self.grid.sites)
            }
        }

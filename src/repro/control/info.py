"""The resource-location service.

Part of the paper's layer-3 services ("load balancing, information
collector, and resource location").  Given the compiled status entries,
:class:`ResourceLocator` answers capability queries: *find me N stations
with at least this much free RAM and this CPU speed*, optionally
preferring one site (locality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ResourceLocator", "ResourceQuery"]


@dataclass(frozen=True)
class ResourceQuery:
    """Capability constraints for locating stations."""

    min_cpu_speed: float = 0.0
    min_ram_free: int = 0
    min_disk_free: int = 0
    require_alive: bool = True
    require_idle: bool = False  # no running tasks
    prefer_site: Optional[str] = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be positive: {self.count}")


class ResourceLocator:
    """Matches queries against status entries (as proxies report them)."""

    def __init__(self, status: dict[str, list[dict[str, Any]]]):
        #: site -> station entries, the shape global_status() produces
        self.status = status

    def _matches(self, entry: dict[str, Any], query: ResourceQuery) -> bool:
        if query.require_alive and not entry.get("alive", False):
            return False
        if entry.get("cpu_speed", 0.0) < query.min_cpu_speed:
            return False
        if entry.get("ram_free", 0) < query.min_ram_free:
            return False
        if entry.get("disk_free", 0) < query.min_disk_free:
            return False
        if query.require_idle and entry.get("running_tasks", 0) > 0:
            return False
        return True

    def find(self, query: ResourceQuery) -> list[dict[str, Any]]:
        """Up to ``query.count`` matching stations, best-first.

        Ordering: preferred site first, then fastest CPU, then most free
        RAM — the "best possible use of the available resources" the
        paper's scheduler wants.
        """
        matches: list[dict[str, Any]] = []
        for site, entries in self.status.items():
            for entry in entries:
                if self._matches(entry, query):
                    matches.append({**entry, "site": entry.get("site", site)})
        matches.sort(
            key=lambda e: (
                0 if e["site"] == query.prefer_site else 1,
                -e.get("cpu_speed", 0.0),
                -e.get("ram_free", 0),
                e.get("node", ""),
            )
        )
        return matches[: query.count]

    def count_matching(self, query: ResourceQuery) -> int:
        """How many stations satisfy the constraints (ignores count)."""
        total = 0
        for site, entries in self.status.items():
            total += sum(1 for entry in entries if self._matches(entry, query))
        return total

    def sites_with_capacity(self, query: ResourceQuery) -> list[str]:
        """Sites holding at least one matching station."""
        sites = []
        for site, entries in self.status.items():
            if any(self._matches(entry, query) for entry in entries):
                sites.append(site)
        return sorted(sites)

"""Grid workload management: durable queue, fair share, late binding.

The paper's named improvement is a scheduler that "provides balanced
process distribution using the grid's status information" instead of
MPI's round-robin.  This module grows that idea to grid scale, following
the DIRAC pilot-job model: jobs are not pushed to nodes — they wait in a
**durable priority queue** at an authority proxy, and *sites claim work*
when they have capacity (late binding).  A claim carries the site's
Layer-3 status data, so matchmaking always runs against the freshest
capability picture a site can give.

Components:

* :class:`JobSpec` / :class:`JobRecord` — one unit of work and its
  lifecycle (``pending → claimed → done``, back to ``pending`` on
  failure, ``dead`` after ``max_attempts``).
* :class:`FairShare` — exponentially-decayed per-user usage; within one
  priority tier, claims go to the user with the smallest decayed usage,
  so a heavy submitter cannot starve light ones and an idle user's
  standing recovers over time (half-life, not hard reset).
* :class:`Matchmaker` — capability matching against the per-site status
  entries the control plane already compiles (``local_status`` /
  ``synthetic_status`` shape), plus **backfill**: when the fair-share
  head job does not fit the claimer (RAM, or the claimer's idle gap), a
  bounded scan finds a smaller job that does, so capacity never idles
  behind a giant.
* :class:`FileJournal` / :class:`MemoryJournal` — an append-only event
  journal.  Every state transition is journaled *before* it is
  acknowledged; :meth:`WorkloadManager.replay` rebuilds the exact queue
  state from the event stream, and :meth:`WorkloadManager.recover`
  restarts from a journal file after a crash (outstanding claims are
  requeued — their leases died with the process).
* :class:`WorkloadManager` — the authority: ``submit`` / ``claim`` /
  ``complete`` / ``fail`` / ``release_pilot``, all idempotent where the
  protocol needs them to be.

Idempotency model (what makes the JOB_* ops safe to retry):

* ``submit`` dedups on ``job_id`` — a re-sent submit acknowledges the
  existing record instead of enqueueing a twin.
* ``claim`` dedups on ``claim_id`` — a re-sent claim returns the same
  assignment from a bounded cache instead of claiming fresh jobs.
* ``complete``/``fail`` are guarded by a per-attempt **token**: each
  claim mints ``job_id#attempt``, and a report carrying a stale token
  (the job was requeued and reclaimed since) is ignored.  This is what
  keeps a job from finishing twice when a site dies after executing but
  before reporting.

Requeue-on-site-death: the proxy wires ``FailureDetector.on_dead`` to
:meth:`WorkloadManager.release_pilot`, so every job claimed through a
dead pilot goes back to the queue (or to the dead-letter set once its
attempts are spent) the moment the tunnel layer declares the peer gone.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.racesan import shared_state

__all__ = [
    "FairShare",
    "FileJournal",
    "JobRecord",
    "JobSpec",
    "JobState",
    "Matchmaker",
    "MemoryJournal",
    "WmsError",
    "WorkloadManager",
    "site_capability",
]


class WmsError(Exception):
    """Malformed job, unknown job id, or journal corruption."""


class JobState:
    """Lifecycle states (plain strings: they travel in wire bodies)."""

    PENDING = "pending"
    CLAIMED = "claimed"
    DONE = "done"
    DEAD = "dead"


@dataclass(frozen=True)
class JobSpec:
    """One unit of grid work, as submitted.

    ``job_id`` is client-assigned and is the submit idempotency key —
    a retried JOB_QSUBMIT with the same id acknowledges the existing
    record.  ``work`` is CPU-seconds on a reference (speed 1.0) node.
    """

    job_id: str
    user: str = "anon"
    group: str = ""
    priority: int = 0
    work: float = 1.0
    ram: int = 0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if not self.job_id or not isinstance(self.job_id, str):
            raise WmsError(f"job_id must be a non-empty string: {self.job_id!r}")
        if self.work < 0:
            raise WmsError(f"negative work: {self.work}")
        if self.ram < 0:
            raise WmsError(f"negative ram: {self.ram}")
        if self.max_attempts < 1:
            raise WmsError(f"max_attempts must be >= 1: {self.max_attempts}")

    def to_wire(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "user": self.user,
            "group": self.group,
            "priority": self.priority,
            "work": self.work,
            "ram": self.ram,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_wire(cls, body: dict[str, Any]) -> "JobSpec":
        try:
            return cls(
                job_id=body["job_id"],
                user=body.get("user", "anon"),
                group=body.get("group", ""),
                priority=int(body.get("priority", 0)),
                work=float(body.get("work", 1.0)),
                ram=int(body.get("ram", 0)),
                max_attempts=int(body.get("max_attempts", 3)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WmsError(f"malformed job spec: {exc}") from exc


@dataclass
class JobRecord:
    """One job's authority-side lifecycle state."""

    spec: JobSpec
    seq: int
    submitted_at: float
    state: str = JobState.PENDING
    attempts: int = 0
    pilot: str = ""  # proxy that holds the current claim
    site: str = ""  # site the pilot fronts
    token: str = ""  # per-attempt idempotency token
    error: str = ""  # last failure reason

    def view(self) -> dict[str, Any]:
        return {
            "job_id": self.spec.job_id,
            "state": self.state,
            "attempts": self.attempts,
            "pilot": self.pilot,
            "site": self.site,
            "error": self.error,
        }


# ---------------------------------------------------------------------------
# Fair share
# ---------------------------------------------------------------------------


class FairShare:
    """Exponentially-decayed per-user usage.

    ``charge`` adds work to a user's account; ``usage`` reads it decayed
    to *now* with the configured half-life.  Claims order users by
    decayed usage (ties by name), which is the whole fair-share rule:
    the least-served user goes first, a burst of service raises only the
    burster's usage, and history fades instead of accumulating forever.
    """

    def __init__(self, half_life: float = 300.0):
        if half_life <= 0:
            raise WmsError(f"half_life must be positive: {half_life}")
        self.half_life = half_life
        self._usage: dict[str, float] = {}
        self._stamp: dict[str, float] = {}

    def usage(self, user: str, now: float) -> float:
        raw = self._usage.get(user)
        if raw is None:
            return 0.0
        age = max(0.0, now - self._stamp[user])
        return raw * (0.5 ** (age / self.half_life))

    def charge(self, user: str, work: float, now: float) -> None:
        self._usage[user] = self.usage(user, now) + work
        self._stamp[user] = now

    def snapshot(self, now: float) -> dict[str, float]:
        return {user: self.usage(user, now) for user in sorted(self._usage)}


# ---------------------------------------------------------------------------
# Matchmaking against Layer-3 status data
# ---------------------------------------------------------------------------


def site_capability(status_entries: list[dict[str, Any]]) -> dict[str, Any]:
    """Summarise a site's status rows into a claim capability.

    The rows are exactly what ``ProxyServer.local_status`` (and the
    benchmarks' ``synthetic_status``) produce; the summary is what a
    claim carries: the largest job the site could place right now.
    """
    alive = [e for e in status_entries if e.get("alive", False)]
    if not alive:
        return {"ram_free": 0, "speed": 0.0, "slots": 0}
    return {
        "ram_free": max(int(e.get("ram_free", 0)) for e in alive),
        "speed": max(float(e.get("cpu_speed", 0.0)) for e in alive),
        "slots": sum(1 for e in alive if e.get("running_tasks", 0) == 0),
    }


class Matchmaker:
    """Does a job fit a claimer's capability (and its idle gap)?

    ``gap`` is the backfill window in seconds: a claimer that knows it
    only has *g* seconds of idle capacity (a reservation is coming, a
    drain is scheduled) only receives jobs estimated to finish inside
    it.  ``None`` means unbounded.
    """

    def fits(
        self,
        spec: JobSpec,
        capability: Optional[dict[str, Any]],
        gap: Optional[float] = None,
    ) -> bool:
        if capability is not None:
            if spec.ram > int(capability.get("ram_free", 0)):
                return False
            speed = float(capability.get("speed", 1.0))
        else:
            speed = 1.0
        if gap is not None:
            if speed <= 0:
                return False
            if spec.work / speed > gap:
                return False
        return True


# ---------------------------------------------------------------------------
# Journals
# ---------------------------------------------------------------------------


class MemoryJournal:
    """In-memory event journal — chaos tests compare two runs' events."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def append(self, event: dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:  # symmetry with FileJournal
        pass


class FileJournal:
    """Append-only JSON-lines journal with crash-recovery replay.

    Every event is written and flushed before the operation that caused
    it is acknowledged, so an acknowledged transition is never lost to a
    process crash.  ``fsync=True`` additionally forces the OS buffer to
    disk per event — the full durability posture, at ~10× the cost; the
    default survives process death, which is the failure mode the test
    suites exercise.
    """

    def __init__(self, path: str, fsync: bool = False):
        self.path = path
        self.fsync = fsync
        self._fh = open(path, "a", encoding="utf-8")

    def append(self, event: dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()

    @staticmethod
    def read(path: str) -> list[dict[str, Any]]:
        """Parse a journal file back into its event list.

        A torn final line (the crash happened mid-write, before the
        flush returned) is discarded: the transition it described was
        never acknowledged, so dropping it is the *correct* recovery.
        Corruption anywhere earlier is an error — acknowledged history
        must not be silently partial.
        """
        events: list[dict[str, Any]] = []
        if not os.path.exists(path):
            return events
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                if index == len(lines) - 1:
                    break  # torn tail: unacknowledged, safe to drop
                raise WmsError(
                    f"corrupt journal {path!r} at line {index + 1}"
                ) from exc
        return events


# ---------------------------------------------------------------------------
# The workload manager
# ---------------------------------------------------------------------------


@shared_state
class WorkloadManager:
    """Durable fair-share job queue with pilot-style late binding.

    One instance is the grid's scheduling authority; a proxy adopts it
    with :meth:`~repro.core.proxy.ProxyServer.attach_wms`, which fronts
    it with the JOB_QSUBMIT/JOB_CLAIM/JOB_STATUS/JOB_DONE control ops
    and wires the failure detector to :meth:`release_pilot`.

    All public methods are thread-safe (the dispatch pipeline serves
    claims from its worker pool) and deterministic: given the same call
    sequence and clock values, the journal comes out byte-identical —
    the chaos suite holds us to that.
    """

    def __init__(
        self,
        name: str = "wms",
        clock: Callable[[], float] = time.monotonic,
        journal: Optional[Any] = None,
        half_life: float = 300.0,
        backfill_limit: int = 8,
        claim_cache_size: int = 1024,
        metrics: Optional[Any] = None,
    ):
        if backfill_limit < 0:
            raise WmsError(f"backfill_limit must be >= 0: {backfill_limit}")
        self.name = name
        self.clock = clock
        self.journal = journal
        self.matchmaker = Matchmaker()
        self.backfill_limit = backfill_limit
        self._shares = FairShare(half_life=half_life)
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}
        #: priority tier -> user -> FIFO of pending job ids
        self._pending: dict[int, dict[str, deque[str]]] = {}
        self._pending_count = 0
        self._claimed_by: dict[str, set[str]] = {}  # pilot -> claimed ids
        self._claim_cache: OrderedDict[str, list[dict[str, Any]]] = OrderedDict()
        self._claim_cache_size = claim_cache_size
        self._seq = itertools.count(1)
        self._counts = {
            JobState.PENDING: 0,
            JobState.CLAIMED: 0,
            JobState.DONE: 0,
            JobState.DEAD: 0,
        }
        # Instruments are constructed here, once (the GL301 contract);
        # metrics=None runs the manager dark.
        if metrics is not None:
            self._m_submitted = metrics.counter("wms.submitted")
            self._m_claims = metrics.counter("wms.claims")
            self._m_jobs_claimed = metrics.counter("wms.jobs_claimed")
            self._m_completed = metrics.counter("wms.completed")
            self._m_requeued = metrics.counter("wms.requeued")
            self._m_dead = metrics.counter("wms.dead_lettered")
            self._m_stale = metrics.counter("wms.stale_reports")
            self._m_depth = metrics.gauge("wms.queue_depth")
            self._m_wait = metrics.histogram("wms.wait_s")
            self._m_claim_serve = metrics.histogram("wms.claim_serve_s")
        else:
            self._m_submitted = self._m_claims = self._m_jobs_claimed = None
            self._m_completed = self._m_requeued = self._m_dead = None
            self._m_stale = self._m_depth = self._m_wait = None
            self._m_claim_serve = None

    # -- journal helpers -------------------------------------------------

    def _log(self, event: dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(event)

    def _set_depth(self) -> None:
        if self._m_depth is not None:
            self._m_depth.set(self._pending_count)

    # -- submit ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> dict[str, Any]:
        """Enqueue a job; idempotent on ``spec.job_id``."""
        now = self.clock()
        with self._lock:
            existing = self._records.get(spec.job_id)
            if existing is not None:
                return {
                    "job_id": spec.job_id,
                    "state": existing.state,
                    "duplicate": True,
                }
            record = JobRecord(spec=spec, seq=next(self._seq), submitted_at=now)
            self._records[spec.job_id] = record
            self._enqueue_locked(record, front=False)
            self._counts[JobState.PENDING] += 1
            self._log(
                {"ev": "submit", "t": now, "seq": record.seq, "job": spec.to_wire()}
            )
            if self._m_submitted is not None:
                self._m_submitted.inc()
            self._set_depth()
            return {"job_id": spec.job_id, "state": JobState.PENDING}

    def _enqueue_locked(self, record: JobRecord, front: bool) -> None:
        tier = self._pending.setdefault(record.spec.priority, {})
        queue = tier.setdefault(record.spec.user, deque())
        if front:
            queue.appendleft(record.spec.job_id)
        else:
            queue.append(record.spec.job_id)
        self._pending_count += 1

    def _dequeue_locked(self, record: JobRecord, index: int) -> None:
        tier = self._pending[record.spec.priority]
        queue = tier[record.spec.user]
        del queue[index]
        if not queue:
            del tier[record.spec.user]
        if not tier:
            del self._pending[record.spec.priority]
        self._pending_count -= 1

    # -- claim -----------------------------------------------------------

    def claim(
        self,
        pilot: str,
        site: str = "",
        capability: Optional[dict[str, Any]] = None,
        count: int = 1,
        claim_id: Optional[str] = None,
        gap: Optional[float] = None,
    ) -> list[dict[str, Any]]:
        """Late binding: assign up to ``count`` fitting jobs to a pilot.

        Returns ``[{"job": spec, "token": token}, ...]`` — possibly
        empty when nothing pending fits the capability.  With a
        ``claim_id`` the call is idempotent: a retried claim replays the
        cached assignment instead of claiming fresh work (the guard that
        makes JOB_CLAIM safe under the retry policy).
        """
        if count < 1:
            raise WmsError(f"claim count must be >= 1: {count}")
        start = time.perf_counter()
        now = self.clock()
        with self._lock:
            if claim_id is not None:
                cached = self._claim_cache.get(claim_id)
                if cached is not None:
                    self._claim_cache.move_to_end(claim_id)
                    return list(cached)
            assigned: list[dict[str, Any]] = []
            for _ in range(count):
                record = self._pick_locked(capability, gap, now)
                if record is None:
                    break
                self._counts[JobState.PENDING] -= 1
                self._counts[JobState.CLAIMED] += 1
                record.state = JobState.CLAIMED
                record.attempts += 1
                record.pilot = pilot
                record.site = site
                record.token = f"{record.spec.job_id}#{record.attempts}"
                self._claimed_by.setdefault(pilot, set()).add(record.spec.job_id)
                self._shares.charge(record.spec.user, record.spec.work, now)
                self._log(
                    {
                        "ev": "claim",
                        "t": now,
                        "job": record.spec.job_id,
                        "pilot": pilot,
                        "site": site,
                        "attempt": record.attempts,
                    }
                )
                if record.attempts == 1 and self._m_wait is not None:
                    self._m_wait.observe(max(0.0, now - record.submitted_at))
                assigned.append(
                    {"job": record.spec.to_wire(), "token": record.token}
                )
            if claim_id is not None:
                self._claim_cache[claim_id] = list(assigned)
                while len(self._claim_cache) > self._claim_cache_size:
                    self._claim_cache.popitem(last=False)
            if self._m_claims is not None:
                self._m_claims.inc()
                self._m_jobs_claimed.inc(len(assigned))
                self._m_claim_serve.observe(time.perf_counter() - start)
            self._set_depth()
            return assigned

    def _pick_locked(
        self,
        capability: Optional[dict[str, Any]],
        gap: Optional[float],
        now: float,
    ) -> Optional[JobRecord]:
        """Choose one pending job: priority, then fair share, then backfill.

        Tiers are scanned highest priority first.  Within a tier, each
        user's *head* job is tried in fair-share order (least decayed
        usage first) — that head choice is the scheduling decision.
        Backfill only engages when heads do not fit the capability/gap:
        a bounded scan (``backfill_limit`` deeper entries) looks for a
        smaller job that does, so a giant at the head of every queue
        cannot idle a small claimer.  A lower tier is only reached when
        nothing in the higher tier fits — the bounded priority
        inversion any backfilling scheduler accepts.
        """
        for priority in sorted(self._pending, reverse=True):
            tier = self._pending[priority]
            ordered = sorted(
                tier, key=lambda user: (self._shares.usage(user, now), user)
            )
            for user in ordered:
                record = self._records[tier[user][0]]
                if self.matchmaker.fits(record.spec, capability, gap):
                    self._dequeue_locked(record, 0)
                    return record
            budget = self.backfill_limit
            for user in ordered:
                queue = tier[user]
                for index in range(1, len(queue)):
                    if budget <= 0:
                        break
                    budget -= 1
                    record = self._records[queue[index]]
                    if self.matchmaker.fits(record.spec, capability, gap):
                        self._dequeue_locked(record, index)
                        return record
                if budget <= 0:
                    break
        return None

    # -- completion / failure -------------------------------------------

    def complete(self, job_id: str, token: str) -> dict[str, Any]:
        """Report success; idempotent on the per-attempt token.

        A duplicate report for an already-done job acknowledges quietly;
        a report with a stale token (the job was requeued and reclaimed
        since) is *ignored* — the current attempt owns the outcome.
        """
        now = self.clock()
        with self._lock:
            record = self._require_locked(job_id)
            guard = self._report_guard_locked(record, token)
            if guard is not None:
                return guard
            self._counts[JobState.CLAIMED] -= 1
            self._counts[JobState.DONE] += 1
            record.state = JobState.DONE
            self._release_claim_locked(record)
            self._log({"ev": "done", "t": now, "job": job_id, "attempt": record.attempts})
            if self._m_completed is not None:
                self._m_completed.inc()
            return {"job_id": job_id, "state": JobState.DONE}

    def fail(self, job_id: str, token: str, error: str = "") -> dict[str, Any]:
        """Report failure: requeue, or dead-letter once attempts are spent."""
        now = self.clock()
        with self._lock:
            record = self._require_locked(job_id)
            guard = self._report_guard_locked(record, token)
            if guard is not None:
                return guard
            self._fail_locked(record, error or "reported failure", now)
            self._set_depth()
            return {"job_id": job_id, "state": record.state}

    def _require_locked(self, job_id: str) -> JobRecord:
        record = self._records.get(job_id)
        if record is None:
            raise WmsError(f"unknown job: {job_id!r}")
        return record

    def _report_guard_locked(
        self, record: JobRecord, token: str
    ) -> Optional[dict[str, Any]]:
        """The idempotency guard shared by complete/fail; None passes."""
        if record.state in (JobState.DONE, JobState.DEAD):
            return {
                "job_id": record.spec.job_id,
                "state": record.state,
                "duplicate": True,
            }
        if record.state != JobState.CLAIMED or token != record.token:
            if self._m_stale is not None:
                self._m_stale.inc()
            return {
                "job_id": record.spec.job_id,
                "state": record.state,
                "stale": True,
            }
        return None

    def _fail_locked(self, record: JobRecord, error: str, now: float) -> None:
        """CLAIMED → PENDING (requeue) or DEAD (attempts spent)."""
        self._counts[JobState.CLAIMED] -= 1
        self._release_claim_locked(record)
        record.error = error
        record.token = ""
        record.pilot = ""
        record.site = ""
        if record.attempts >= record.spec.max_attempts:
            record.state = JobState.DEAD
            self._counts[JobState.DEAD] += 1
            self._log(
                {
                    "ev": "dead",
                    "t": now,
                    "job": record.spec.job_id,
                    "attempt": record.attempts,
                    "error": error,
                }
            )
            if self._m_dead is not None:
                self._m_dead.inc()
        else:
            record.state = JobState.PENDING
            self._counts[JobState.PENDING] += 1
            # Requeued at the *front* of the user's FIFO: the job kept
            # its original submit seniority, it just had bad luck.
            self._enqueue_locked(record, front=True)
            self._log(
                {
                    "ev": "requeue",
                    "t": now,
                    "job": record.spec.job_id,
                    "attempt": record.attempts,
                    "error": error,
                }
            )
            if self._m_requeued is not None:
                self._m_requeued.inc()

    def _release_claim_locked(self, record: JobRecord) -> None:
        held = self._claimed_by.get(record.pilot)
        if held is not None:
            held.discard(record.spec.job_id)
            if not held:
                del self._claimed_by[record.pilot]

    # -- site/pilot death ------------------------------------------------

    def release_pilot(self, pilot: str, error: str = "pilot lost") -> list[str]:
        """Requeue (or dead-letter) every job the pilot holds; idempotent.

        Wired to ``FailureDetector.on_dead`` by ``attach_wms``: when the
        tunnel layer declares a claiming proxy dead, its leases are
        revoked in one pass.  The per-attempt token was already spent by
        the claim, so a zombie pilot's late JOB_DONE is ignored by the
        report guard — requeue happens exactly once per claim.
        """
        now = self.clock()
        with self._lock:
            held = sorted(self._claimed_by.get(pilot, ()))
            for job_id in held:
                record = self._records[job_id]
                if record.state == JobState.CLAIMED and record.pilot == pilot:
                    self._fail_locked(record, error, now)
            self._set_depth()
            return held

    # -- introspection ---------------------------------------------------

    def status(self, job_id: Optional[str] = None) -> dict[str, Any]:
        """Queue counters (default) or one job's state (``job_id``)."""
        with self._lock:
            if job_id is not None:
                return self._require_locked(job_id).view()
            return {
                "submitted": len(self._records),
                "pending": self._counts[JobState.PENDING],
                "claimed": self._counts[JobState.CLAIMED],
                "done": self._counts[JobState.DONE],
                "dead": self._counts[JobState.DEAD],
                "pilots": {
                    pilot: len(ids)
                    for pilot, ids in sorted(self._claimed_by.items())
                },
            }

    def fair_shares(self) -> dict[str, float]:
        """Decayed per-user usage, as of now (reporting, not wire state)."""
        with self._lock:
            return self._shares.snapshot(self.clock())

    def pending_jobs(self) -> list[str]:
        """Pending ids in submit order (test/debug helper)."""
        with self._lock:
            pending = [
                record
                for record in self._records.values()
                if record.state == JobState.PENDING
            ]
            return [r.spec.job_id for r in sorted(pending, key=lambda r: r.seq)]

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    # -- replay / recovery ----------------------------------------------

    @classmethod
    def replay(
        cls,
        events: list[dict[str, Any]],
        journal: Optional[Any] = None,
        **kwargs: Any,
    ) -> "WorkloadManager":
        """Rebuild a manager from a journal's event stream.

        Replay applies events without re-journaling; ``journal`` is
        attached afterwards so post-replay operations append where the
        history left off.  The rebuilt state is exactly the state the
        journaling manager held after its last acknowledged operation —
        the conservation property test holds us to it.
        """
        manager = cls(journal=None, **kwargs)
        for event in events:
            manager._apply(event)
        # The seq allocator must not re-issue replayed numbers.
        top = max((r.seq for r in manager._records.values()), default=0)
        manager._seq = itertools.count(top + 1)
        manager.journal = journal
        return manager

    @classmethod
    def recover(
        cls,
        path: str,
        requeue_claimed: bool = True,
        fsync: bool = False,
        **kwargs: Any,
    ) -> "WorkloadManager":
        """Restart from a journal file after a crash.

        Outstanding claims are requeued by default — the leases died
        with the process, and the spent tokens guarantee a surviving
        executor's late report cannot double-complete the job.
        """
        events = FileJournal.read(path)
        manager = cls.replay(events, journal=FileJournal(path, fsync=fsync), **kwargs)
        if requeue_claimed:
            for pilot in sorted(manager._claimed_by):
                manager.release_pilot(pilot, error="recovered: lease lost in crash")
        return manager

    def _apply(self, event: dict[str, Any]) -> None:
        """Apply one journaled event during replay (no re-journaling)."""
        kind = event.get("ev")
        now = float(event.get("t", 0.0))
        if kind == "submit":
            spec = JobSpec.from_wire(event["job"])
            record = JobRecord(
                spec=spec, seq=int(event["seq"]), submitted_at=now
            )
            self._records[spec.job_id] = record
            self._enqueue_locked(record, front=False)
            self._counts[JobState.PENDING] += 1
        elif kind == "claim":
            record = self._require_locked(event["job"])
            index = self._pending_index_locked(record)
            self._dequeue_locked(record, index)
            self._counts[JobState.PENDING] -= 1
            self._counts[JobState.CLAIMED] += 1
            record.state = JobState.CLAIMED
            record.attempts = int(event["attempt"])
            record.pilot = event.get("pilot", "")
            record.site = event.get("site", "")
            record.token = f"{record.spec.job_id}#{record.attempts}"
            self._claimed_by.setdefault(record.pilot, set()).add(record.spec.job_id)
            self._shares.charge(record.spec.user, record.spec.work, now)
        elif kind == "done":
            record = self._require_locked(event["job"])
            self._counts[JobState.CLAIMED] -= 1
            self._counts[JobState.DONE] += 1
            record.state = JobState.DONE
            self._release_claim_locked(record)
        elif kind in ("requeue", "dead"):
            record = self._require_locked(event["job"])
            self._counts[JobState.CLAIMED] -= 1
            self._release_claim_locked(record)
            record.error = event.get("error", "")
            record.token = ""
            record.pilot = ""
            record.site = ""
            if kind == "dead":
                record.state = JobState.DEAD
                self._counts[JobState.DEAD] += 1
            else:
                record.state = JobState.PENDING
                self._counts[JobState.PENDING] += 1
                self._enqueue_locked(record, front=True)
        else:
            raise WmsError(f"unknown journal event: {kind!r}")

    def _pending_index_locked(self, record: JobRecord) -> int:
        queue = self._pending[record.spec.priority][record.spec.user]
        for index, job_id in enumerate(queue):
            if job_id == record.spec.job_id:
                return index
        raise WmsError(
            f"journal claims job {record.spec.job_id!r} that is not pending"
        )

"""Layer 3 — Grid control and monitoring services.

The paper's control layer "contains the load balancing, information
collector, and resource location services", with distributed collection:
"each proxy responsible for the collection and control of the site where
it is located.  The global status is obtained by compilation of all the
sites' data."

* :mod:`repro.control.monitor` — per-site collectors, status caching with
  staleness bounds, on-demand global compilation;
* :mod:`repro.control.scheduler` — the round-robin baseline (MPI's native
  policy) and the status-aware load-balancing scheduler;
* :mod:`repro.control.failure` — heartbeat-based failure detection and
  site-level recovery bookkeeping;
* :mod:`repro.control.info` — the resource-location service (find nodes
  matching capability constraints);
* :mod:`repro.control.retry` — the stack-wide retry/timeout/backoff
  policy (exponential backoff with jitter, deadline budgets, idempotency
  guards) used by tunnels, proxy control calls and MPI forwarding;
* :mod:`repro.control.api` — the Grid API: station-state queries
  (RAM / CPU / HD availability) and grid summaries for the UIs.
"""

from repro.control.accounting import CreditPolicy, UsageLedger, UsageRecord
from repro.control.api import GridApi
from repro.control.failure import FailureDetector, PeerState
from repro.control.info import ResourceLocator, ResourceQuery
from repro.control.retry import Deadline, RetryError, RetryPolicy
from repro.control.monitor import GlobalStatusCompiler, SiteStatusCache, StatusRecord
from repro.control.scheduler import (
    Job,
    LoadBalancedScheduler,
    NodeView,
    RoundRobinScheduler,
    Scheduler,
)

__all__ = [
    "CreditPolicy",
    "Deadline",
    "FailureDetector",
    "GlobalStatusCompiler",
    "GridApi",
    "Job",
    "LoadBalancedScheduler",
    "NodeView",
    "PeerState",
    "ResourceLocator",
    "ResourceQuery",
    "RetryError",
    "RetryPolicy",
    "RoundRobinScheduler",
    "Scheduler",
    "SiteStatusCache",
    "StatusRecord",
    "UsageLedger",
    "UsageRecord",
]

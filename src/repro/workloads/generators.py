"""Workload generators: job streams, MPI traffic traces, status data.

Everything is driven by a :class:`~repro.simulation.randomness.RandomStream`
so the same seed reproduces the same workload bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.control.scheduler import Job
from repro.simulation.randomness import RandomStream

__all__ = [
    "JobArrival",
    "JobStreamSpec",
    "MessageTrace",
    "generate_job_stream",
    "master_worker_trace",
    "ring_trace",
    "stencil_trace",
    "synthetic_status",
    "trace_locality",
]


@dataclass(frozen=True)
class JobArrival:
    """One job and when it arrives."""

    arrival_time: float
    job: Job


@dataclass(frozen=True)
class JobStreamSpec:
    """Poisson arrivals with heavy-tailed (Pareto) service demands.

    Heavy-tailed job sizes are the classic grid/batch finding — a few
    huge jobs dominate total work — and exactly the regime where
    load-balancing beats round-robin (experiment E6).
    """

    count: int = 100
    mean_interarrival: float = 10.0
    work_shape: float = 1.5  # Pareto tail index (heavier when closer to 1)
    work_minimum: float = 5.0  # CPU-seconds
    ram_bytes: int = 64 << 20

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be positive: {self.count}")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")


def generate_job_stream(spec: JobStreamSpec, rng: RandomStream) -> list[JobArrival]:
    """A reproducible arrival-ordered job stream.

    Job ids are stream-scoped (1..count), not drawn from the scheduler's
    process-global allocator: bit-for-bit reproducibility must not
    depend on what else allocated ids earlier in the process.
    """
    arrivals = []
    clock = 0.0
    for index in range(spec.count):
        clock += rng.exponential(spec.mean_interarrival)
        arrivals.append(
            JobArrival(
                arrival_time=clock,
                job=Job(
                    work=rng.pareto(spec.work_shape, spec.work_minimum),
                    ram=spec.ram_bytes,
                    job_id=index + 1,
                ),
            )
        )
    return arrivals


@dataclass(frozen=True)
class MessageTrace:
    """One MPI application's point-to-point traffic as (src, dst, bytes)."""

    nprocs: int
    messages: tuple[tuple[int, int, int], ...]

    @property
    def total_bytes(self) -> int:
        return sum(size for _, _, size in self.messages)

    def __len__(self) -> int:
        return len(self.messages)


def ring_trace(nprocs: int, rounds: int, message_bytes: int) -> MessageTrace:
    """Nearest-neighbour ring: rank k → k+1 mod n, ``rounds`` times.

    With contiguous placement almost all traffic is site-local — the
    proxy architecture's best case.
    """
    if nprocs <= 0 or rounds < 0 or message_bytes < 0:
        raise ValueError("invalid trace parameters")
    messages = []
    for _ in range(rounds):
        for rank in range(nprocs):
            messages.append((rank, (rank + 1) % nprocs, message_bytes))
    return MessageTrace(nprocs=nprocs, messages=tuple(messages))


def master_worker_trace(
    nprocs: int, tasks: int, request_bytes: int, result_bytes: int
) -> MessageTrace:
    """Root farms tasks to workers round-robin; workers reply to root.

    The paper's Fig. 3 communication pattern: a root process and its
    slaves.
    """
    if nprocs < 2:
        raise ValueError("master/worker needs at least 2 ranks")
    messages = []
    for task in range(tasks):
        worker = 1 + task % (nprocs - 1)
        messages.append((0, worker, request_bytes))
        messages.append((worker, 0, result_bytes))
    return MessageTrace(nprocs=nprocs, messages=tuple(messages))


def stencil_trace(side: int, iterations: int, halo_bytes: int) -> MessageTrace:
    """2-D ``side``×``side`` grid of ranks exchanging halos each iteration."""
    if side <= 0:
        raise ValueError("side must be positive")
    nprocs = side * side
    messages = []
    for _ in range(iterations):
        for row in range(side):
            for col in range(side):
                rank = row * side + col
                for dr, dc in [(-1, 0), (1, 0), (0, -1), (0, 1)]:
                    nr, nc = row + dr, col + dc
                    if 0 <= nr < side and 0 <= nc < side:
                        messages.append((rank, nr * side + nc, halo_bytes))
    return MessageTrace(nprocs=nprocs, messages=tuple(messages))


def trace_locality(trace: MessageTrace, rank_to_site: dict[int, str]) -> float:
    """Fraction of the trace's messages staying inside one site."""
    if not trace.messages:
        return 1.0
    local = sum(
        1
        for src, dst, _ in trace.messages
        if rank_to_site[src] == rank_to_site[dst]
    )
    return local / len(trace.messages)


def synthetic_status(
    sites: int, nodes_per_site: int, rng: RandomStream
) -> dict[str, list[dict[str, Any]]]:
    """Plausible status entries for monitoring/location benchmarks."""
    if sites <= 0 or nodes_per_site <= 0:
        raise ValueError("sites and nodes_per_site must be positive")
    status: dict[str, list[dict[str, Any]]] = {}
    for s in range(sites):
        site = f"site{s}"
        entries = []
        for n in range(nodes_per_site):
            ram_total = rng.choice([512 << 20, 1 << 30, 2 << 30])
            entries.append(
                {
                    "node": f"{site}.n{n}",
                    "site": site,
                    "cpu_speed": rng.choice([0.5, 1.0, 1.0, 2.0, 4.0]),
                    "ram_free": rng.randint(ram_total // 4, ram_total),
                    "disk_free": rng.randint(1 << 30, 40 << 30),
                    "running_tasks": rng.randint(0, 3),
                    "alive": rng.bernoulli(0.97),
                }
            )
        status[site] = entries
    return status

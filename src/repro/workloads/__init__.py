"""Synthetic workload generation for tests and benchmarks.

The paper evaluated on live applications; the reproduction drives the
same code paths with seeded synthetic workloads so every experiment is
deterministic and parameterised (see DESIGN.md §2 on substitutions).
"""

from repro.workloads.generators import (
    JobArrival,
    JobStreamSpec,
    MessageTrace,
    generate_job_stream,
    master_worker_trace,
    ring_trace,
    stencil_trace,
    synthetic_status,
    trace_locality,
)

__all__ = [
    "JobArrival",
    "JobStreamSpec",
    "MessageTrace",
    "generate_job_stream",
    "master_worker_trace",
    "ring_trace",
    "stencil_trace",
    "synthetic_status",
    "trace_locality",
]

"""In-process transport: thread-safe channel pairs and a named fabric.

The single-process runtime (examples, integration tests, MPI ranks as
threads) uses these channels.  Semantics match TCP: ordered, reliable,
close propagates to the peer, receive drains buffered frames before
reporting closure.
"""

from __future__ import annotations

import queue
import threading
from typing import Optional

from repro.transport.channel import Channel, Listener
from repro.transport.errors import ChannelClosed, TransportTimeout
from repro.transport.frames import Frame, encode_frame

__all__ = ["InprocChannel", "InprocFabric", "InprocListener", "channel_pair"]

#: Sentinel placed in the queue when the peer closes.
_EOF = object()


class InprocChannel(Channel):
    """One endpoint of an in-process channel pair."""

    def __init__(self, name: str = "inproc"):
        super().__init__(name=name)
        self._incoming: "queue.Queue" = queue.Queue()
        self._peer: Optional["InprocChannel"] = None
        self._closed = threading.Event()
        #: count wire bytes as the encoded frame size so in-proc and TCP
        #: report comparable traffic volumes
        self._measure_wire = True

    def _bind(self, peer: "InprocChannel") -> None:
        self._peer = peer

    def send(self, frame: Frame) -> None:
        if self._closed.is_set():
            raise ChannelClosed(f"{self.name}: send on closed channel")
        peer = self._peer
        if peer is None:
            raise ChannelClosed(f"{self.name}: channel is unbound")
        if peer._closed.is_set():
            raise ChannelClosed(f"{self.name}: peer has closed")
        nbytes = len(encode_frame(frame)) if self._measure_wire else len(frame.payload)
        self.stats.on_send(nbytes)
        peer._incoming.put(frame)

    def recv(self, timeout: Optional[float] = None) -> Frame:
        try:
            item = self._incoming.get(timeout=timeout)
        except queue.Empty:
            raise TransportTimeout(f"{self.name}: recv timed out") from None
        if item is _EOF:
            # Keep the sentinel visible for subsequent recv calls.
            self._incoming.put(_EOF)
            raise ChannelClosed(f"{self.name}: peer closed")
        nbytes = len(encode_frame(item)) if self._measure_wire else len(item.payload)
        self.stats.on_receive(nbytes)
        return item

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        peer = self._peer
        if peer is not None:
            peer._incoming.put(_EOF)
        self._incoming.put(_EOF)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


def channel_pair(name: str = "pair") -> tuple[InprocChannel, InprocChannel]:
    """Create a connected channel pair (like socketpair)."""
    a = InprocChannel(name=f"{name}.a")
    b = InprocChannel(name=f"{name}.b")
    a._bind(b)
    b._bind(a)
    return a, b


class InprocListener(Listener):
    """Accept side of a named in-process endpoint."""

    def __init__(self, fabric: "InprocFabric", address: str):
        self._fabric = fabric
        self.address = address
        self._pending: "queue.Queue" = queue.Queue()
        self._closed = threading.Event()

    def accept(self, timeout: Optional[float] = None) -> Channel:
        if self._closed.is_set():
            raise ChannelClosed(f"listener {self.address!r} is closed")
        try:
            item = self._pending.get(timeout=timeout)
        except queue.Empty:
            raise TransportTimeout(f"accept timed out on {self.address!r}") from None
        if item is _EOF:
            self._pending.put(_EOF)
            raise ChannelClosed(f"listener {self.address!r} is closed")
        return item

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._fabric._unregister(self.address)
        self._pending.put(_EOF)


class InprocFabric:
    """Registry of named in-process endpoints (the "network" of one process).

    Proxies bind listeners at string addresses ("siteA.proxy.control");
    clients connect by address and get back a channel whose peer is handed
    to the listener's accept loop.
    """

    def __init__(self):
        self._listeners: dict[str, InprocListener] = {}
        self._lock = threading.Lock()

    def listen(self, address: str) -> InprocListener:
        with self._lock:
            if address in self._listeners:
                raise ValueError(f"address already bound: {address!r}")
            listener = InprocListener(self, address)
            self._listeners[address] = listener
            return listener

    def connect(self, address: str, name: str = "") -> InprocChannel:
        with self._lock:
            listener = self._listeners.get(address)
        if listener is None or listener._closed.is_set():
            raise ChannelClosed(f"no listener at {address!r}")
        client, server = channel_pair(name=name or f"conn:{address}")
        listener._pending.put(server)
        return client

    def addresses(self) -> list[str]:
        with self._lock:
            return sorted(self._listeners)

    def _unregister(self, address: str) -> None:
        with self._lock:
            self._listeners.pop(address, None)

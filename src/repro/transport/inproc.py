"""In-process transport: thread-safe channel pairs and a named fabric.

The single-process runtime (examples, integration tests, MPI ranks as
threads) uses these channels.  Semantics match TCP: ordered, reliable,
close propagates to the peer, receive drains buffered frames before
reporting closure.

The channel is reactor-capable: frames can be consumed with blocking
``recv`` or drained non-blocking via ``poll_recv`` under a ready
callback, so tunnels over in-process pairs run on the shared event loop
exactly like tunnels over TCP.  An optional ``maxsize`` bounds the
peer's inbound buffer — a slow consumer then exerts real backpressure
(``send`` blocks up to ``send_timeout`` and raises
:class:`~repro.transport.errors.ChannelBusy`), mirroring a full TCP
socket buffer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from repro.transport.channel import Channel, Listener
from repro.transport.errors import ChannelBusy, ChannelClosed, TransportTimeout
from repro.transport.frames import Frame, encode_frame

__all__ = ["InprocChannel", "InprocFabric", "InprocListener", "channel_pair"]

#: Sentinel placed in the accept queue when a listener closes.
_EOF = object()


class InprocChannel(Channel):
    """One endpoint of an in-process channel pair."""

    def __init__(
        self,
        name: str = "inproc",
        maxsize: int = 0,
        send_timeout: Optional[float] = 10.0,
    ):
        super().__init__(name=name)
        self._buf: deque[Frame] = deque()
        self._cond = threading.Condition()
        self._eof = False  # peer is gone; drain _buf then report closure
        self._peer: Optional["InprocChannel"] = None
        self._closed = threading.Event()
        self._ready_cb: Optional[Callable[[], None]] = None
        #: bound on buffered inbound frames (0 = unbounded)
        self.maxsize = maxsize
        self.send_timeout = send_timeout
        #: count wire bytes as the encoded frame size so in-proc and TCP
        #: report comparable traffic volumes
        self._measure_wire = True

    def _bind(self, peer: "InprocChannel") -> None:
        self._peer = peer

    # -- send path ---------------------------------------------------------

    def send(self, frame: Frame) -> None:
        if self._closed.is_set():
            raise ChannelClosed(f"{self.name}: send on closed channel")
        peer = self._peer
        if peer is None:
            raise ChannelClosed(f"{self.name}: channel is unbound")
        deadline = (
            None if self.send_timeout is None
            else time.monotonic() + self.send_timeout
        )
        with peer._cond:
            while peer.maxsize and len(peer._buf) >= peer.maxsize:
                if peer._eof or peer._closed.is_set():
                    break  # closure wins over backpressure
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise ChannelBusy(
                        f"{self.name}: peer buffer full "
                        f"({peer.maxsize} frames) for {self.send_timeout}s"
                    )
                peer._cond.wait(timeout=remaining)
            if peer._closed.is_set() or peer._eof:
                raise ChannelClosed(f"{self.name}: peer has closed")
            peer._buf.append(frame)
            peer._cond.notify_all()
            cb = peer._ready_cb
        nbytes = len(encode_frame(frame)) if self._measure_wire else len(frame.payload)
        self.stats.on_send(nbytes)
        if cb is not None:
            cb()

    # -- receive path ------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Frame:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._buf:
                if self._eof:
                    raise ChannelClosed(f"{self.name}: peer closed")
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TransportTimeout(f"{self.name}: recv timed out")
                self._cond.wait(timeout=remaining)
            frame = self._buf.popleft()
            self._cond.notify_all()  # a bounded buffer just freed a slot
        nbytes = len(encode_frame(frame)) if self._measure_wire else len(frame.payload)
        self.stats.on_receive(nbytes)
        return frame

    def poll_recv(self) -> Optional[Frame]:
        with self._cond:
            if not self._buf:
                if self._eof:
                    raise ChannelClosed(f"{self.name}: peer closed")
                return None
            frame = self._buf.popleft()
            self._cond.notify_all()
        nbytes = len(encode_frame(frame)) if self._measure_wire else len(frame.payload)
        self.stats.on_receive(nbytes)
        return frame

    @property
    def supports_reactor(self) -> bool:
        return True

    def set_ready_callback(self, callback: Optional[Callable[[], None]]) -> None:
        self._ready_cb = callback

    def pending_frames(self) -> int:
        with self._cond:
            return len(self._buf)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        callbacks = []
        for endpoint in (self._peer, self):
            if endpoint is None:
                continue
            with endpoint._cond:
                endpoint._eof = True
                endpoint._cond.notify_all()
                if endpoint._ready_cb is not None:
                    callbacks.append(endpoint._ready_cb)
        for cb in callbacks:
            cb()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


def channel_pair(
    name: str = "pair", maxsize: int = 0, send_timeout: Optional[float] = 10.0
) -> tuple[InprocChannel, InprocChannel]:
    """Create a connected channel pair (like socketpair)."""
    a = InprocChannel(name=f"{name}.a", maxsize=maxsize, send_timeout=send_timeout)
    b = InprocChannel(name=f"{name}.b", maxsize=maxsize, send_timeout=send_timeout)
    a._bind(b)
    b._bind(a)
    return a, b


class InprocListener(Listener):
    """Accept side of a named in-process endpoint."""

    def __init__(self, fabric: "InprocFabric", address: str):
        self._fabric = fabric
        self.address = address
        self._pending: deque = deque()
        self._cond = threading.Condition()
        self._closed = threading.Event()

    def accept(self, timeout: Optional[float] = None) -> Channel:
        if self._closed.is_set():
            raise ChannelClosed(f"listener {self.address!r} is closed")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._pending:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TransportTimeout(
                        f"accept timed out on {self.address!r}"
                    )
                self._cond.wait(timeout=remaining)
            item = self._pending.popleft()
        if item is _EOF:
            with self._cond:
                self._pending.appendleft(_EOF)
            raise ChannelClosed(f"listener {self.address!r} is closed")
        return item

    def _offer(self, channel: Channel) -> None:
        with self._cond:
            self._pending.append(channel)
            self._cond.notify_all()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._fabric._unregister(self.address)
        with self._cond:
            self._pending.append(_EOF)
            self._cond.notify_all()


class InprocFabric:
    """Registry of named in-process endpoints (the "network" of one process).

    Proxies bind listeners at string addresses ("siteA.proxy.control");
    clients connect by address and get back a channel whose peer is handed
    to the listener's accept loop.
    """

    def __init__(self):
        self._listeners: dict[str, InprocListener] = {}
        self._lock = threading.Lock()

    def listen(self, address: str) -> InprocListener:
        with self._lock:
            if address in self._listeners:
                raise ValueError(f"address already bound: {address!r}")
            listener = InprocListener(self, address)
            self._listeners[address] = listener
            return listener

    def connect(self, address: str, name: str = "") -> InprocChannel:
        with self._lock:
            listener = self._listeners.get(address)
        if listener is None or listener._closed.is_set():
            raise ChannelClosed(f"no listener at {address!r}")
        client, server = channel_pair(name=name or f"conn:{address}")
        listener._offer(server)
        return client

    def addresses(self) -> list[str]:
        with self._lock:
            return sorted(self._listeners)

    def _unregister(self, address: str) -> None:
        with self._lock:
            self._listeners.pop(address, None)

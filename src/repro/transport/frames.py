"""Wire format: value codec and length-delimited frames.

Two pieces live here:

* **gridcodec** — a small self-describing binary codec for the value types
  the middleware exchanges (None, bool, int, float, str, bytes, list,
  tuple, dict).  Frames arriving from remote sites are untrusted input, so
  pickle is deliberately not used; the codec can only construct plain data.
* **frames** — the unit of traffic between middleware endpoints.  A frame
  has a *kind* (the paper separates control and data channels), a *channel
  id* for multiplexing several logical streams over one connection (the
  proxy multiplexes every MPI slave through one tunnel), a header dict and
  a binary payload.

Wire layout of a frame (network byte order)::

    magic    2 bytes   0x47 0x58  ("GX")
    version  1 byte    0x01
    kind     1 byte    FrameKind
    channel  4 bytes   unsigned
    hlen     4 bytes   header blob length
    plen     4 bytes   payload length
    header   hlen bytes (gridcodec-encoded dict)
    payload  plen bytes (opaque)
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.obs.racesan import shared_state
from repro.transport.errors import CodecError, FrameError

__all__ = [
    "Frame",
    "FrameDecoder",
    "FrameKind",
    "MAX_FRAME_PAYLOAD",
    "MAX_FRAME_WIRE_SIZE",
    "decode_frame",
    "decode_value",
    "encode_frame",
    "encode_frame_views",
    "encode_value",
]

_MAGIC = b"GX"
_VERSION = 1
_HEADER_STRUCT = struct.Struct("!2sBBIII")

#: Upper bound on a single frame payload; larger transfers are chunked by
#: the data-channel layer.  Guards against hostile length fields.
MAX_FRAME_PAYLOAD = 16 * 1024 * 1024
_MAX_HEADER = 1 * 1024 * 1024
_MAX_DEPTH = 32
_MAX_CONTAINER = 1_000_000

#: Largest possible encoded frame: fixed prefix + max header blob + max
#: payload.  Layers wrapping whole frames (the record cipher) use this to
#: bound hostile length fields before doing any work.
MAX_FRAME_WIRE_SIZE = _HEADER_STRUCT.size + _MAX_HEADER + MAX_FRAME_PAYLOAD


class FrameKind(enum.IntEnum):
    """Traffic classes; the paper's architecture separates control and data."""

    CONTROL = 1  # inter-proxy control protocol
    DATA = 2  # application traffic (tunneled site-to-site)
    HANDSHAKE = 3  # security-layer handshake records
    HEARTBEAT = 4  # failure-detector probes
    MPI = 5  # multiplexed MPI traffic through virtual slaves


# ---------------------------------------------------------------------------
# gridcodec: self-describing value encoding
# ---------------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_TUPLE = 0x09

_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")


def encode_value(value: Any) -> bytes:
    """Encode a plain value to bytes.  Raises CodecError on foreign types."""
    out = bytearray()
    _encode_into(value, out, depth=0)
    return bytes(out)


def _encode_into(value: Any, out: bytearray, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise CodecError(f"value nesting exceeds {_MAX_DEPTH}")
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        # Ints are unbounded (RSA material travels in handshakes).
        out.append(_T_INT)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_T_BYTES)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        if len(value) > _MAX_CONTAINER:
            raise CodecError(f"container too large: {len(value)}")
        out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(item, out, depth + 1)
    elif isinstance(value, dict):
        if len(value) > _MAX_CONTAINER:
            raise CodecError(f"container too large: {len(value)}")
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            _encode_into(key, out, depth + 1)
            _encode_into(item, out, depth + 1)
    else:
        raise CodecError(f"cannot encode type {type(value).__name__}")


def decode_value(data) -> Any:
    """Decode a bytes-like buffer produced by :func:`encode_value`.

    Rejects trailing garbage: a frame header must be exactly one value.
    Accepts memoryviews (zero-copy frame payloads feed straight in);
    every decoded str/bytes owns its data, so decoded values are safe
    to keep past the view's lifetime.
    """
    value, offset = _decode_from(data, 0, depth=0)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after value")
    return value


def _decode_from(data, offset: int, depth: int) -> tuple[Any, int]:
    # Hot path: called once per header value per frame, so length reads and
    # bounds checks are inlined rather than delegated.
    size = len(data)
    if depth > _MAX_DEPTH:
        raise CodecError(f"value nesting exceeds {_MAX_DEPTH}")
    if offset >= size:
        raise CodecError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_FLOAT:
        end = offset + _F64.size
        if end > size:
            raise CodecError("truncated value")
        return _F64.unpack_from(data, offset)[0], end
    if tag == _T_INT:
        if offset + 4 > size:
            raise CodecError("truncated value")
        end = offset + 4 + _U32.unpack_from(data, offset)[0]
        offset += 4
        if end > size:
            raise CodecError("truncated value")
        return int.from_bytes(data[offset:end], "big", signed=True), end
    if tag == _T_STR:
        if offset + 4 > size:
            raise CodecError("truncated value")
        end = offset + 4 + _U32.unpack_from(data, offset)[0]
        offset += 4
        if end > size:
            raise CodecError("truncated value")
        try:
            # bytes(bytes) is identity, so only memoryview input copies.
            return bytes(data[offset:end]).decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string: {exc}") from exc
    if tag == _T_BYTES:
        if offset + 4 > size:
            raise CodecError("truncated value")
        end = offset + 4 + _U32.unpack_from(data, offset)[0]
        offset += 4
        if end > size:
            raise CodecError("truncated value")
        # Copy out of memoryviews: decoded values must own their data
        # (a sub-view would dangle once the decoder buffer is reused).
        return bytes(data[offset:end]), end
    if tag in (_T_LIST, _T_TUPLE):
        count, offset = _read_length(data, offset)
        if count > _MAX_CONTAINER:
            raise CodecError(f"container too large: {count}")
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset, depth + 1)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), offset
    if tag == _T_DICT:
        count, offset = _read_length(data, offset)
        if count > _MAX_CONTAINER:
            raise CodecError(f"container too large: {count}")
        result: dict[str, Any] = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset, depth + 1)
            if not isinstance(key, str):
                raise CodecError("dict key is not a string")
            value, offset = _decode_from(data, offset, depth + 1)
            result[key] = value
        return result, offset
    raise CodecError(f"unknown type tag 0x{tag:02x}")


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    end = offset + _U32.size
    _check_bounds(data, end)
    return _U32.unpack_from(data, offset)[0], end


def _check_bounds(data: bytes, end: int) -> None:
    if end > len(data):
        raise CodecError("truncated value")


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


@dataclass
class Frame:
    """One unit of middleware traffic."""

    kind: FrameKind
    channel: int = 0
    headers: dict[str, Any] = field(default_factory=dict)
    payload: bytes = b""

    def __post_init__(self) -> None:
        self.kind = FrameKind(self.kind)
        if not 0 <= self.channel <= 0xFFFFFFFF:
            raise FrameError(f"channel id out of range: {self.channel}")
        if isinstance(self.payload, bytearray):
            self.payload = bytes(self.payload)
        elif not isinstance(self.payload, (bytes, memoryview)):
            # memoryview payloads are the zero-copy receive path: the
            # decoder hands out views into its reassembly buffer (see
            # FrameDecoder.next_frame_view for the lifetime contract).
            # memoryview == bytes compares contents, so consumers that
            # only read or compare payloads never notice the difference.
            raise FrameError(
                f"payload must be bytes, got {type(self.payload).__name__}"
            )

    def wire_size(self) -> int:
        """Bytes this frame occupies on the wire."""
        return sum(len(view) for view in encode_frame_views(self))


def encode_frame_views(frame: Frame) -> list[bytes]:
    """Serialise a frame to an iovec-style list of buffers.

    The concatenation of the views is the wire representation; the payload
    rides as-is (zero-copy) so vectored socket writes never duplicate large
    bodies.  :func:`encode_frame` joins the views for callers that need one
    contiguous blob.
    """
    header_blob = encode_value(frame.headers)
    if len(header_blob) > _MAX_HEADER:
        raise FrameError(f"header blob too large: {len(header_blob)}")
    if len(frame.payload) > MAX_FRAME_PAYLOAD:
        raise FrameError(f"payload too large: {len(frame.payload)}")
    prefix = _HEADER_STRUCT.pack(
        _MAGIC,
        _VERSION,
        int(frame.kind),
        frame.channel,
        len(header_blob),
        len(frame.payload),
    )
    return [prefix + header_blob, frame.payload]


def encode_frame(frame: Frame) -> bytes:
    """Serialise a frame to its wire representation."""
    return b"".join(encode_frame_views(frame))


def decode_frame(data: bytes) -> Frame:
    """Decode exactly one frame; rejects trailing bytes."""
    frame, consumed = _decode_frame_prefix(data)
    if frame is None:
        raise FrameError("truncated frame")
    if consumed != len(data):
        raise FrameError(f"{len(data) - consumed} trailing bytes after frame")
    return frame


def _decode_frame_at(
    data: "bytes | bytearray | memoryview",
    offset: int,
    limit: Optional[int] = None,
    copy: bool = True,
) -> tuple[Optional[Frame], int]:
    """Try to decode a frame starting at ``offset`` in ``data``.

    ``data`` may be bytes, bytearray or memoryview; nothing before
    ``offset`` is touched or copied.  ``limit`` caps how far into ``data``
    the decoder may read (logical length; defaults to ``len(data)``).
    With ``copy=False`` the returned frame's payload is a memoryview into
    ``data`` — valid only as long as the caller keeps the backing buffer
    stable (see :meth:`FrameDecoder.next_frame_view`).  Returns
    (frame, bytes_consumed_from_offset) or (None, 0) when more bytes are
    needed.
    """
    available = (len(data) if limit is None else limit) - offset
    if available < _HEADER_STRUCT.size:
        return None, 0
    magic, version, kind_raw, channel, hlen, plen = _HEADER_STRUCT.unpack_from(
        data, offset
    )
    if magic != _MAGIC:
        raise FrameError(f"bad magic: {magic!r}")
    if version != _VERSION:
        raise FrameError(f"unsupported version: {version}")
    if hlen > _MAX_HEADER:
        raise FrameError(f"header length too large: {hlen}")
    if plen > MAX_FRAME_PAYLOAD:
        raise FrameError(f"payload length too large: {plen}")
    try:
        kind = FrameKind(kind_raw)
    except ValueError as exc:
        raise FrameError(f"unknown frame kind: {kind_raw}") from exc
    total = _HEADER_STRUCT.size + hlen + plen
    if available < total:
        return None, 0
    body_start = offset + _HEADER_STRUCT.size
    if isinstance(data, bytes):
        header_blob = data[body_start : body_start + hlen]
        payload = data[body_start + hlen : offset + total]
    else:
        view = memoryview(data)
        # Headers are small and must be bytes for the value codec; the
        # payload is the bulk, so that is where copy=False pays off.
        header_blob = bytes(view[body_start : body_start + hlen])
        if copy:
            # One copy per field (a plain bytearray slice would copy twice).
            payload = bytes(view[body_start + hlen : offset + total])
            view.release()
        elif plen:
            payload = view[body_start + hlen : offset + total]
        else:
            payload = b""  # empty views would pin the buffer for nothing
    try:
        headers = decode_value(header_blob)
    except CodecError as exc:
        # Corrupt header bytes are a framing error: the stream cannot be
        # resynchronised, so the decoder must poison itself, not leak a
        # CodecError past its FrameError contract.
        raise FrameError(f"corrupt frame headers: {exc}") from exc
    if not isinstance(headers, dict):
        raise FrameError("frame headers are not a dict")
    return Frame(kind=kind, channel=channel, headers=headers, payload=payload), total


def _decode_frame_prefix(data: bytes) -> tuple[Optional[Frame], int]:
    """Try to decode a frame from the start of ``data``.

    Returns (frame, bytes_consumed) or (None, 0) when more bytes are needed.
    """
    return _decode_frame_at(data, 0)


#: Consumed prefix beyond which the decoder buffer is compacted eagerly;
#: below it, compaction waits until the buffer fully drains (the common
#: case), so steady-state decoding never memmoves the tail per frame.
_COMPACT_THRESHOLD = 256 * 1024


@shared_state
class FrameDecoder:
    """Incremental decoder for a byte stream (TCP reassembly).

    Feed arbitrary chunks with :meth:`feed` (bytes, bytearray or
    memoryview — no intermediate ``bytes()`` copy is made), or read
    straight off a socket with :meth:`feed_into`; iterate complete frames
    off the decoder.  Corrupt input raises :class:`FrameError` and poisons
    the decoder (a stream with a framing error cannot be resynchronised).

    Internally one bytearray holds the stream with a consumed offset and
    reserved tail capacity, so reassembly cost is linear in bytes received
    even under one-byte TCP reads; consumed space is reclaimed at feed
    time only, never between decodes.

    **Zero-copy lifetime contract.** :meth:`next_frame_view` returns
    frames whose payload is a memoryview into the reassembly buffer.
    Such views are valid until the next ``feed``/``feed_into`` call on
    this decoder; consume (or copy) them before feeding again.  A caller
    that violates the contract never sees corruption — feeding while
    views are still exported makes the decoder abandon the old buffer to
    those views and continue in a fresh one (the views stay correct, the
    decoder just pays the copy the caller was trying to avoid).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._len = 0  # logical bytes fed (buffer may hold spare capacity)
        self._offset = 0  # bytes of the logical prefix already decoded
        self._poisoned = False
        self._views_out = False  # next_frame_view handed out buffer views
        #: wire size of the frame most recently returned by next_frame
        self.last_frame_wire_size = 0

    # -- feeding ---------------------------------------------------------

    def feed(self, chunk: "bytes | bytearray | memoryview") -> None:
        """Append a received chunk (any bytes-like object, uncopied)."""
        if self._poisoned:
            raise FrameError("decoder poisoned by earlier framing error")
        self._compact()
        clen = len(chunk)
        if clen:
            self._reserve(clen)
            # Equal-length slice assignment copies straight from the
            # source buffer — legal even while old views are exported
            # (no resize), and never materialises an intermediate bytes.
            self._buffer[self._len : self._len + clen] = chunk
            self._len += clen

    def feed_into(self, readinto, max_bytes: int = 64 * 1024) -> int:
        """Read from ``readinto`` straight into the reassembly buffer.

        ``readinto(view)`` must fill the writable view and return the
        byte count (``socket.recv_into`` has exactly this shape), so the
        kernel-to-decoder hop is the only copy on the receive path.
        Returns the byte count (0 means EOF).  A ``BlockingIOError`` or
        other exception from ``readinto`` leaves the decoder unchanged.
        """
        if self._poisoned:
            raise FrameError("decoder poisoned by earlier framing error")
        self._compact()
        self._reserve(max_bytes)
        with memoryview(self._buffer) as whole:
            n = readinto(whole[self._len : self._len + max_bytes])
        if n:
            self._len += n
        return n or 0

    def _reserve(self, extra: int) -> None:
        """Grow physical capacity so ``extra`` more bytes fit."""
        need = self._len + extra
        cap = len(self._buffer)
        if need <= cap:
            return
        grow = max(need, cap * 2, 64 * 1024) - cap
        try:
            self._buffer += bytes(grow)
        except BufferError:
            # A leaked view pins the old buffer: abandon it (its content
            # stays stable for the view holders) and continue in a copy.
            fresh = bytearray(max(need, cap * 2, 64 * 1024))
            fresh[: self._len] = memoryview(self._buffer)[: self._len]
            self._buffer = fresh
            self._views_out = False

    def _compact(self) -> None:
        offset = self._offset
        if not offset:
            return
        if offset >= self._len:
            # Fully drained: rewind and reuse the buffer — unless views
            # into it may still be alive, in which case reusing the space
            # would silently corrupt them.  The append probe is how a
            # bytearray reports live exports; on the common path (views
            # consumed before the next feed) it costs one branch.
            if self._views_out:
                try:
                    self._buffer.append(0)
                    del self._buffer[-1:]
                except BufferError:
                    self._buffer = bytearray(len(self._buffer))
                self._views_out = False
            self._len = 0
            self._offset = 0
        elif offset >= _COMPACT_THRESHOLD:
            try:
                del self._buffer[:offset]
            except BufferError:
                self._buffer = bytearray(
                    memoryview(self._buffer)[offset : self._len]
                )
                self._views_out = False
            self._len -= offset
            self._offset = 0

    # -- decoding --------------------------------------------------------

    def __iter__(self) -> Iterator[Frame]:
        return self

    def __next__(self) -> Frame:
        frame = self.next_frame()
        if frame is None:
            raise StopIteration
        return frame

    def next_frame(self) -> Optional[Frame]:
        """Pop one complete frame (payload copied), or None if starved."""
        return self._next(copy=True)

    def next_frame_view(self) -> Optional[Frame]:
        """Pop one complete frame with a zero-copy memoryview payload.

        The payload view is valid until the next ``feed``/``feed_into``
        on this decoder — see the class docstring for the full contract.
        """
        return self._next(copy=False)

    def _next(self, copy: bool) -> Optional[Frame]:
        if self._poisoned:
            raise FrameError("decoder poisoned by earlier framing error")
        try:
            frame, consumed = _decode_frame_at(
                self._buffer, self._offset, limit=self._len, copy=copy
            )
        except FrameError:
            self._poisoned = True
            raise
        if frame is None:
            return None
        if not copy and isinstance(frame.payload, memoryview):
            self._views_out = True
        self._offset += consumed
        self.last_frame_wire_size = consumed
        return frame

    @property
    def pending_bytes(self) -> int:
        """Bytes fed but not yet decoded into a returned frame."""
        return self._len - self._offset

"""Wire format: value codec and length-delimited frames.

Two pieces live here:

* **gridcodec** — a small self-describing binary codec for the value types
  the middleware exchanges (None, bool, int, float, str, bytes, list,
  tuple, dict).  Frames arriving from remote sites are untrusted input, so
  pickle is deliberately not used; the codec can only construct plain data.
* **frames** — the unit of traffic between middleware endpoints.  A frame
  has a *kind* (the paper separates control and data channels), a *channel
  id* for multiplexing several logical streams over one connection (the
  proxy multiplexes every MPI slave through one tunnel), a header dict and
  a binary payload.

Wire layout of a frame (network byte order)::

    magic    2 bytes   0x47 0x58  ("GX")
    version  1 byte    0x01
    kind     1 byte    FrameKind
    channel  4 bytes   unsigned
    hlen     4 bytes   header blob length
    plen     4 bytes   payload length
    header   hlen bytes (gridcodec-encoded dict)
    payload  plen bytes (opaque)
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.transport.errors import CodecError, FrameError

__all__ = [
    "Frame",
    "FrameDecoder",
    "FrameKind",
    "MAX_FRAME_PAYLOAD",
    "MAX_FRAME_WIRE_SIZE",
    "decode_frame",
    "decode_value",
    "encode_frame",
    "encode_frame_views",
    "encode_value",
]

_MAGIC = b"GX"
_VERSION = 1
_HEADER_STRUCT = struct.Struct("!2sBBIII")

#: Upper bound on a single frame payload; larger transfers are chunked by
#: the data-channel layer.  Guards against hostile length fields.
MAX_FRAME_PAYLOAD = 16 * 1024 * 1024
_MAX_HEADER = 1 * 1024 * 1024
_MAX_DEPTH = 32
_MAX_CONTAINER = 1_000_000

#: Largest possible encoded frame: fixed prefix + max header blob + max
#: payload.  Layers wrapping whole frames (the record cipher) use this to
#: bound hostile length fields before doing any work.
MAX_FRAME_WIRE_SIZE = _HEADER_STRUCT.size + _MAX_HEADER + MAX_FRAME_PAYLOAD


class FrameKind(enum.IntEnum):
    """Traffic classes; the paper's architecture separates control and data."""

    CONTROL = 1  # inter-proxy control protocol
    DATA = 2  # application traffic (tunneled site-to-site)
    HANDSHAKE = 3  # security-layer handshake records
    HEARTBEAT = 4  # failure-detector probes
    MPI = 5  # multiplexed MPI traffic through virtual slaves


# ---------------------------------------------------------------------------
# gridcodec: self-describing value encoding
# ---------------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_TUPLE = 0x09

_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")


def encode_value(value: Any) -> bytes:
    """Encode a plain value to bytes.  Raises CodecError on foreign types."""
    out = bytearray()
    _encode_into(value, out, depth=0)
    return bytes(out)


def _encode_into(value: Any, out: bytearray, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise CodecError(f"value nesting exceeds {_MAX_DEPTH}")
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        # Ints are unbounded (RSA material travels in handshakes).
        out.append(_T_INT)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_T_BYTES)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        if len(value) > _MAX_CONTAINER:
            raise CodecError(f"container too large: {len(value)}")
        out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(item, out, depth + 1)
    elif isinstance(value, dict):
        if len(value) > _MAX_CONTAINER:
            raise CodecError(f"container too large: {len(value)}")
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            _encode_into(key, out, depth + 1)
            _encode_into(item, out, depth + 1)
    else:
        raise CodecError(f"cannot encode type {type(value).__name__}")


def decode_value(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode_value`.

    Rejects trailing garbage: a frame header must be exactly one value.
    """
    value, offset = _decode_from(data, 0, depth=0)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after value")
    return value


def _decode_from(data: bytes, offset: int, depth: int) -> tuple[Any, int]:
    # Hot path: called once per header value per frame, so length reads and
    # bounds checks are inlined rather than delegated.
    size = len(data)
    if depth > _MAX_DEPTH:
        raise CodecError(f"value nesting exceeds {_MAX_DEPTH}")
    if offset >= size:
        raise CodecError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_FLOAT:
        end = offset + _F64.size
        if end > size:
            raise CodecError("truncated value")
        return _F64.unpack_from(data, offset)[0], end
    if tag == _T_INT:
        if offset + 4 > size:
            raise CodecError("truncated value")
        end = offset + 4 + _U32.unpack_from(data, offset)[0]
        offset += 4
        if end > size:
            raise CodecError("truncated value")
        return int.from_bytes(data[offset:end], "big", signed=True), end
    if tag == _T_STR:
        if offset + 4 > size:
            raise CodecError("truncated value")
        end = offset + 4 + _U32.unpack_from(data, offset)[0]
        offset += 4
        if end > size:
            raise CodecError("truncated value")
        try:
            return data[offset:end].decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string: {exc}") from exc
    if tag == _T_BYTES:
        if offset + 4 > size:
            raise CodecError("truncated value")
        end = offset + 4 + _U32.unpack_from(data, offset)[0]
        offset += 4
        if end > size:
            raise CodecError("truncated value")
        return data[offset:end], end
    if tag in (_T_LIST, _T_TUPLE):
        count, offset = _read_length(data, offset)
        if count > _MAX_CONTAINER:
            raise CodecError(f"container too large: {count}")
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset, depth + 1)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), offset
    if tag == _T_DICT:
        count, offset = _read_length(data, offset)
        if count > _MAX_CONTAINER:
            raise CodecError(f"container too large: {count}")
        result: dict[str, Any] = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset, depth + 1)
            if not isinstance(key, str):
                raise CodecError("dict key is not a string")
            value, offset = _decode_from(data, offset, depth + 1)
            result[key] = value
        return result, offset
    raise CodecError(f"unknown type tag 0x{tag:02x}")


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    end = offset + _U32.size
    _check_bounds(data, end)
    return _U32.unpack_from(data, offset)[0], end


def _check_bounds(data: bytes, end: int) -> None:
    if end > len(data):
        raise CodecError("truncated value")


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


@dataclass
class Frame:
    """One unit of middleware traffic."""

    kind: FrameKind
    channel: int = 0
    headers: dict[str, Any] = field(default_factory=dict)
    payload: bytes = b""

    def __post_init__(self) -> None:
        self.kind = FrameKind(self.kind)
        if not 0 <= self.channel <= 0xFFFFFFFF:
            raise FrameError(f"channel id out of range: {self.channel}")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise FrameError(
                f"payload must be bytes, got {type(self.payload).__name__}"
            )
        self.payload = bytes(self.payload)

    def wire_size(self) -> int:
        """Bytes this frame occupies on the wire."""
        return sum(len(view) for view in encode_frame_views(self))


def encode_frame_views(frame: Frame) -> list[bytes]:
    """Serialise a frame to an iovec-style list of buffers.

    The concatenation of the views is the wire representation; the payload
    rides as-is (zero-copy) so vectored socket writes never duplicate large
    bodies.  :func:`encode_frame` joins the views for callers that need one
    contiguous blob.
    """
    header_blob = encode_value(frame.headers)
    if len(header_blob) > _MAX_HEADER:
        raise FrameError(f"header blob too large: {len(header_blob)}")
    if len(frame.payload) > MAX_FRAME_PAYLOAD:
        raise FrameError(f"payload too large: {len(frame.payload)}")
    prefix = _HEADER_STRUCT.pack(
        _MAGIC,
        _VERSION,
        int(frame.kind),
        frame.channel,
        len(header_blob),
        len(frame.payload),
    )
    return [prefix + header_blob, frame.payload]


def encode_frame(frame: Frame) -> bytes:
    """Serialise a frame to its wire representation."""
    return b"".join(encode_frame_views(frame))


def decode_frame(data: bytes) -> Frame:
    """Decode exactly one frame; rejects trailing bytes."""
    frame, consumed = _decode_frame_prefix(data)
    if frame is None:
        raise FrameError("truncated frame")
    if consumed != len(data):
        raise FrameError(f"{len(data) - consumed} trailing bytes after frame")
    return frame


def _decode_frame_at(
    data: "bytes | bytearray", offset: int
) -> tuple[Optional[Frame], int]:
    """Try to decode a frame starting at ``offset`` in ``data``.

    ``data`` may be bytes or bytearray; nothing before ``offset`` is touched
    or copied.  Returns (frame, bytes_consumed_from_offset) or (None, 0)
    when more bytes are needed.
    """
    available = len(data) - offset
    if available < _HEADER_STRUCT.size:
        return None, 0
    magic, version, kind_raw, channel, hlen, plen = _HEADER_STRUCT.unpack_from(
        data, offset
    )
    if magic != _MAGIC:
        raise FrameError(f"bad magic: {magic!r}")
    if version != _VERSION:
        raise FrameError(f"unsupported version: {version}")
    if hlen > _MAX_HEADER:
        raise FrameError(f"header length too large: {hlen}")
    if plen > MAX_FRAME_PAYLOAD:
        raise FrameError(f"payload length too large: {plen}")
    try:
        kind = FrameKind(kind_raw)
    except ValueError as exc:
        raise FrameError(f"unknown frame kind: {kind_raw}") from exc
    total = _HEADER_STRUCT.size + hlen + plen
    if available < total:
        return None, 0
    body_start = offset + _HEADER_STRUCT.size
    if isinstance(data, bytes):
        header_blob = data[body_start : body_start + hlen]
        payload = data[body_start + hlen : offset + total]
    else:
        # One copy per field (a plain bytearray slice would copy twice).
        view = memoryview(data)
        header_blob = bytes(view[body_start : body_start + hlen])
        payload = bytes(view[body_start + hlen : offset + total])
        view.release()
    try:
        headers = decode_value(header_blob)
    except CodecError as exc:
        # Corrupt header bytes are a framing error: the stream cannot be
        # resynchronised, so the decoder must poison itself, not leak a
        # CodecError past its FrameError contract.
        raise FrameError(f"corrupt frame headers: {exc}") from exc
    if not isinstance(headers, dict):
        raise FrameError("frame headers are not a dict")
    return Frame(kind=kind, channel=channel, headers=headers, payload=payload), total


def _decode_frame_prefix(data: bytes) -> tuple[Optional[Frame], int]:
    """Try to decode a frame from the start of ``data``.

    Returns (frame, bytes_consumed) or (None, 0) when more bytes are needed.
    """
    return _decode_frame_at(data, 0)


#: Consumed prefix beyond which the decoder buffer is compacted eagerly;
#: below it, compaction waits until the buffer fully drains (the common
#: case), so steady-state decoding never memmoves the tail per frame.
_COMPACT_THRESHOLD = 256 * 1024


class FrameDecoder:
    """Incremental decoder for a byte stream (TCP reassembly).

    Feed arbitrary chunks with :meth:`feed`; iterate complete frames off
    the decoder.  Corrupt input raises :class:`FrameError` and poisons the
    decoder (a stream with a framing error cannot be resynchronised).

    Internally the buffer keeps a consumed offset instead of re-slicing
    per frame, so reassembly cost is linear in bytes received even under
    one-byte TCP reads; consumed space is reclaimed lazily.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._offset = 0  # bytes of self._buffer already decoded
        self._poisoned = False
        #: wire size of the frame most recently returned by next_frame
        self.last_frame_wire_size = 0

    def feed(self, chunk: bytes) -> None:
        if self._poisoned:
            raise FrameError("decoder poisoned by earlier framing error")
        self._compact()
        self._buffer += chunk

    def _compact(self) -> None:
        offset = self._offset
        if not offset:
            return
        if offset >= len(self._buffer):
            self._buffer.clear()
            self._offset = 0
        elif offset >= _COMPACT_THRESHOLD:
            del self._buffer[:offset]
            self._offset = 0

    def __iter__(self) -> Iterator[Frame]:
        return self

    def __next__(self) -> Frame:
        frame = self.next_frame()
        if frame is None:
            raise StopIteration
        return frame

    def next_frame(self) -> Optional[Frame]:
        """Pop one complete frame, or None when more bytes are needed."""
        if self._poisoned:
            raise FrameError("decoder poisoned by earlier framing error")
        try:
            frame, consumed = _decode_frame_at(self._buffer, self._offset)
        except FrameError:
            self._poisoned = True
            raise
        if frame is None:
            return None
        self._offset += consumed
        self.last_frame_wire_size = consumed
        self._compact()
        return frame

    @property
    def pending_bytes(self) -> int:
        """Bytes fed but not yet decoded into a returned frame."""
        return len(self._buffer) - self._offset

"""Abstract channel and listener interfaces.

Every concrete transport (in-process, TCP, and the secure tunnel built on
top of either) presents the same two-method surface — ``send(frame)`` /
``recv(timeout)`` — so the middleware layers above are transport-agnostic.
This is what lets the proxy interpose transparently: an MPI rank talking to
a "local" virtual slave uses the same channel type as the tunnel between
two sites.
"""

from __future__ import annotations

import abc
import threading
from typing import Callable, Iterable, Optional

from repro.transport.frames import Frame

__all__ = ["Channel", "Listener", "ChannelStats"]


class ChannelStats:
    """Thread-safe per-channel traffic accounting."""

    def __init__(self):
        self._lock = threading.Lock()
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def on_send(self, nbytes: int) -> None:
        with self._lock:
            self.frames_sent += 1
            self.bytes_sent += nbytes

    def on_receive(self, nbytes: int) -> None:
        with self._lock:
            self.frames_received += 1
            self.bytes_received += nbytes


class Channel(abc.ABC):
    """A bidirectional, ordered, reliable frame pipe."""

    def __init__(self, name: str = "channel"):
        self.name = name
        self.stats = ChannelStats()

    @abc.abstractmethod
    def send(self, frame: Frame) -> None:
        """Send one frame.  Raises ChannelClosed if the pipe is down."""

    def send_many(self, frames: Iterable[Frame]) -> None:
        """Send a burst of frames in order.

        Transports that can coalesce writes (TCP vectored I/O, sealed
        record batches) override this so a burst shares one syscall; the
        default is a plain loop with identical semantics.
        """
        for frame in frames:
            self.send(frame)

    @abc.abstractmethod
    def recv(self, timeout: Optional[float] = None) -> Frame:
        """Receive the next frame.

        Blocks up to ``timeout`` seconds (None = forever); raises
        TransportTimeout on expiry and ChannelClosed when the peer is gone
        and no buffered frames remain.
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Close both directions; idempotent."""

    @property
    @abc.abstractmethod
    def closed(self) -> bool:
        """True once the channel can no longer send."""

    # -- reactor protocol (optional) ----------------------------------------
    #
    # Channels that can be driven by the shared event loop implement three
    # extra methods; layered channels (secure, faulty) delegate to their
    # inner transport so support propagates up the stack.  Channels that
    # only support blocking ``recv`` (the threaded TcpChannel, UDP) leave
    # ``supports_reactor`` False and keep their dedicated reader threads.

    @property
    def supports_reactor(self) -> bool:
        """True when poll_recv/set_ready_callback are functional."""
        return False

    def poll_recv(self) -> Optional[Frame]:
        """Non-blocking receive: next frame, or None when nothing is ready.

        Raises exactly what :meth:`recv` raises on terminal conditions
        (ChannelClosed, FrameError, ...) but never TransportTimeout.
        """
        raise NotImplementedError(f"{type(self).__name__} is not reactor-capable")

    def set_ready_callback(self, callback: Optional[Callable[[], None]]) -> None:
        """Install ``callback`` to fire whenever frames *may* be readable.

        The callback must be cheap and thread-safe: it is invoked from
        whatever thread delivered the data (a peer's send, the event
        loop's socket reader, a close).  Spurious invocations are fine —
        the consumer drains with :meth:`poll_recv` until None.
        """
        raise NotImplementedError(f"{type(self).__name__} is not reactor-capable")

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Listener(abc.ABC):
    """Accepts inbound channels, like a listening socket."""

    @abc.abstractmethod
    def accept(self, timeout: Optional[float] = None) -> Channel:
        """Wait for the next inbound channel."""

    @abc.abstractmethod
    def close(self) -> None:
        """Stop accepting; idempotent."""

    def serve(
        self, handler: Callable[[Channel], None], daemon: bool = True
    ) -> threading.Thread:
        """Spawn a thread accepting channels and handing each to ``handler``.

        The loop exits when the listener is closed.  Returns the thread.
        """
        from repro.transport.errors import ChannelClosed, TransportError

        def loop() -> None:
            while True:
                try:
                    channel = self.accept()
                except (ChannelClosed, TransportError, OSError):
                    return
                handler(channel)

        thread = threading.Thread(target=loop, daemon=daemon, name="listener-serve")
        thread.start()
        return thread

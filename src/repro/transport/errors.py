"""Transport exception hierarchy.

Every transport failure derives from :class:`TransportError` so middleware
layers can catch one type at site boundaries; the subtypes distinguish the
conditions the proxy reacts to differently (a closed channel triggers
reconnection/failover, a codec error means a corrupt or hostile peer and the
frame is discarded).
"""

from __future__ import annotations

__all__ = [
    "ChannelClosed",
    "CodecError",
    "FrameError",
    "TransportError",
    "TransportTimeout",
]


class TransportError(Exception):
    """Base class for all transport-layer failures."""


class ChannelClosed(TransportError):
    """The peer closed the channel or it was closed locally."""


class TransportTimeout(TransportError):
    """A blocking receive exceeded its deadline."""


class CodecError(TransportError):
    """A value could not be encoded or decoded (corrupt/hostile input)."""


class FrameError(TransportError):
    """A frame violated the wire format (bad magic, length, or kind)."""

"""Transport exception hierarchy.

Every transport failure derives from :class:`TransportError` so middleware
layers can catch one type at site boundaries; the subtypes distinguish the
conditions the proxy reacts to differently (a closed channel triggers
reconnection/failover, a codec error means a corrupt or hostile peer and the
frame is discarded).
"""

from __future__ import annotations

__all__ = [
    "ChannelBusy",
    "ChannelClosed",
    "CodecError",
    "FrameError",
    "TransportError",
    "TransportTimeout",
]


class TransportError(Exception):
    """Base class for all transport-layer failures."""


class ChannelClosed(TransportError):
    """The peer closed the channel or it was closed locally."""


class ChannelBusy(TransportError):
    """A bounded send queue stayed full past the send deadline.

    Backpressure made visible: the peer is draining slower than the
    caller produces and the channel refuses to buffer without bound.
    The channel itself is still healthy — the caller may retry, shed
    load, or treat the peer as degraded; closing the channel over a
    transient ``ChannelBusy`` would turn congestion into an outage.
    """


class TransportTimeout(TransportError):
    """A blocking receive exceeded its deadline."""


class CodecError(TransportError):
    """A value could not be encoded or decoded (corrupt/hostile input)."""


class FrameError(TransportError):
    """A frame violated the wire format (bad magic, length, or kind)."""

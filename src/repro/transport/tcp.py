"""Real TCP transport over localhost sockets.

Demonstrates that the middleware's frame protocol runs on an actual network
stack: a :class:`TcpListener` accepts connections and wraps each socket in
a :class:`TcpChannel` with a background reader thread feeding a
:class:`~repro.transport.frames.FrameDecoder`.

The send path is the data-plane fast path: frames are encoded to
iovec-style view lists (payloads ride zero-copy) and written with one
vectored ``sendmsg`` syscall; concurrent senders group-commit, so bursts
of small control/MPI frames queued while another thread holds the socket
share a single syscall.

The grid examples and integration tests bind to 127.0.0.1 with ephemeral
ports; nothing here assumes a particular address family beyond IPv4.
"""

from __future__ import annotations

import queue
import socket
import threading
from collections import deque
from itertools import islice
from typing import Iterable, Optional

from repro.transport.channel import Channel, Listener
from repro.transport.errors import ChannelClosed, FrameError, TransportTimeout
from repro.transport.frames import Frame, FrameDecoder, encode_frame_views

__all__ = ["TcpChannel", "TcpListener", "connect_tcp"]

_RECV_CHUNK = 64 * 1024
_EOF = object()
_IOV_MAX = 1024  # conservative bound on buffers per sendmsg call


def _set_nodelay(sock: socket.socket) -> None:
    """Disable Nagle where the transport is actually TCP.

    Frame channels also run over Unix socketpairs (the shard manager's
    parent↔worker control links), where TCP options simply don't apply.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass


def _sendall_views(sock: socket.socket, views: list) -> None:
    """Write every buffer in ``views`` in order, without concatenating.

    Uses vectored ``sendmsg`` where available (everywhere we run), looping
    over partial sends; falls back to one joined ``sendall`` otherwise.
    """
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:  # pragma: no cover - exotic platforms
        sock.sendall(b"".join(views))
        return
    pending = deque(memoryview(v) for v in views if len(v))
    while pending:
        sent = sendmsg(list(islice(pending, _IOV_MAX)))
        while sent > 0:
            head = pending[0]
            if sent >= len(head):
                sent -= len(head)
                pending.popleft()
            else:
                pending[0] = head[sent:]
                sent = 0


class TcpChannel(Channel):
    """A frame channel over one TCP connection."""

    def __init__(self, sock: socket.socket, name: str = "tcp"):
        super().__init__(name=name)
        self._sock = sock
        _set_nodelay(sock)
        self._send_lock = threading.Lock()
        # Encoded-but-unsent frames: (views, wire_size).  Whoever holds the
        # send lock drains the whole queue in one vectored write, so frames
        # queued by other threads piggyback on that syscall (group commit).
        self._pending_lock = threading.Lock()
        self._pending: deque = deque()
        self._frames: "queue.Queue" = queue.Queue()
        self._closed = threading.Event()
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True, name=f"{name}-reader"
        )
        self._reader.start()

    def _read_loop(self) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                # recv_into the decoder's reserved tail: the kernel copy
                # is the only one before frame decode (no per-chunk bytes).
                if not decoder.feed_into(self._sock.recv_into, _RECV_CHUNK):
                    break
                while True:
                    frame = decoder.next_frame()
                    if frame is None:
                        break
                    self._frames.put((frame, decoder.last_frame_wire_size))
        except FrameError as exc:
            self._frames.put(exc)
        except OSError:
            pass  # socket closed under us
        finally:
            self._frames.put(_EOF)

    def send(self, frame: Frame) -> None:
        self._enqueue_and_flush([encode_frame_views(frame)])

    def send_many(self, frames: Iterable[Frame]) -> None:
        batch = [encode_frame_views(frame) for frame in frames]
        if batch:
            self._enqueue_and_flush(batch)

    def _enqueue_and_flush(self, frame_views: list) -> None:
        if self._closed.is_set():
            raise ChannelClosed(f"{self.name}: send on closed channel")
        with self._pending_lock:
            for views in frame_views:
                self._pending.append((views, sum(map(len, views))))
        with self._send_lock:
            with self._pending_lock:
                if not self._pending:
                    return  # flushed by whoever held the lock before us
                batch = list(self._pending)
                self._pending.clear()
            flat = [view for views, _ in batch for view in views]
            try:
                _sendall_views(self._sock, flat)
            except OSError as exc:
                self.close()
                raise ChannelClosed(f"{self.name}: peer gone ({exc})") from exc
            for _, size in batch:
                self.stats.on_send(size)

    def recv(self, timeout: Optional[float] = None) -> Frame:
        try:
            item = self._frames.get(timeout=timeout)
        except queue.Empty:
            raise TransportTimeout(f"{self.name}: recv timed out") from None
        if item is _EOF:
            self._frames.put(_EOF)
            raise ChannelClosed(f"{self.name}: connection closed")
        if isinstance(item, FrameError):
            self._frames.put(_EOF)
            raise item
        frame, wire_size = item
        self.stats.on_receive(wire_size)
        return frame

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class TcpListener(Listener):
    """Listening socket producing :class:`TcpChannel` per connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 64,
        reuseport: bool = False,
    ):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            # Kernel-side accept sharding: several workers bind the same
            # port and the kernel spreads connections across them.
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._closed = threading.Event()
        self.host, self.port = self._sock.getsockname()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def accept(self, timeout: Optional[float] = None) -> Channel:
        if self._closed.is_set():
            raise ChannelClosed("listener is closed")
        self._sock.settimeout(timeout)
        try:
            conn, peer = self._sock.accept()
        except socket.timeout:
            raise TransportTimeout("accept timed out") from None
        except OSError as exc:
            raise ChannelClosed(f"listener closed ({exc})") from exc
        conn.settimeout(None)
        return self._make_channel(conn, f"tcp:{peer[0]}:{peer[1]}")

    def _make_channel(self, conn: socket.socket, name: str) -> Channel:
        """Wrap one accepted socket; the reactor listener overrides this."""
        return TcpChannel(conn, name=name)

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._sock.close()


def connect_tcp(host: str, port: int, timeout: float = 10.0) -> TcpChannel:
    """Dial a TcpListener and return the client channel."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return TcpChannel(sock, name=f"tcp->{host}:{port}")

"""Real TCP transport over localhost sockets.

Demonstrates that the middleware's frame protocol runs on an actual network
stack: a :class:`TcpListener` accepts connections and wraps each socket in
a :class:`TcpChannel` with a background reader thread feeding a
:class:`~repro.transport.frames.FrameDecoder`.

The grid examples and integration tests bind to 127.0.0.1 with ephemeral
ports; nothing here assumes a particular address family beyond IPv4.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Optional

from repro.transport.channel import Channel, Listener
from repro.transport.errors import ChannelClosed, FrameError, TransportTimeout
from repro.transport.frames import Frame, FrameDecoder, encode_frame

__all__ = ["TcpChannel", "TcpListener", "connect_tcp"]

_RECV_CHUNK = 64 * 1024
_EOF = object()


class TcpChannel(Channel):
    """A frame channel over one TCP connection."""

    def __init__(self, sock: socket.socket, name: str = "tcp"):
        super().__init__(name=name)
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._send_lock = threading.Lock()
        self._frames: "queue.Queue" = queue.Queue()
        self._closed = threading.Event()
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True, name=f"{name}-reader"
        )
        self._reader.start()

    def _read_loop(self) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                chunk = self._sock.recv(_RECV_CHUNK)
                if not chunk:
                    break
                decoder.feed(chunk)
                while True:
                    frame = decoder.next_frame()
                    if frame is None:
                        break
                    self._frames.put(frame)
        except FrameError as exc:
            self._frames.put(exc)
        except OSError:
            pass  # socket closed under us
        finally:
            self._frames.put(_EOF)

    def send(self, frame: Frame) -> None:
        if self._closed.is_set():
            raise ChannelClosed(f"{self.name}: send on closed channel")
        blob = encode_frame(frame)
        try:
            with self._send_lock:
                self._sock.sendall(blob)
        except OSError as exc:
            self.close()
            raise ChannelClosed(f"{self.name}: peer gone ({exc})") from exc
        self.stats.on_send(len(blob))

    def recv(self, timeout: Optional[float] = None) -> Frame:
        try:
            item = self._frames.get(timeout=timeout)
        except queue.Empty:
            raise TransportTimeout(f"{self.name}: recv timed out") from None
        if item is _EOF:
            self._frames.put(_EOF)
            raise ChannelClosed(f"{self.name}: connection closed")
        if isinstance(item, FrameError):
            self._frames.put(_EOF)
            raise item
        self.stats.on_receive(len(encode_frame(item)))
        return item

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class TcpListener(Listener):
    """Listening socket producing :class:`TcpChannel` per connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 64):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._closed = threading.Event()
        self.host, self.port = self._sock.getsockname()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def accept(self, timeout: Optional[float] = None) -> TcpChannel:
        if self._closed.is_set():
            raise ChannelClosed("listener is closed")
        self._sock.settimeout(timeout)
        try:
            conn, peer = self._sock.accept()
        except socket.timeout:
            raise TransportTimeout("accept timed out") from None
        except OSError as exc:
            raise ChannelClosed(f"listener closed ({exc})") from exc
        return TcpChannel(conn, name=f"tcp:{peer[0]}:{peer[1]}")

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._sock.close()


def connect_tcp(host: str, port: int, timeout: float = 10.0) -> TcpChannel:
    """Dial a TcpListener and return the client channel."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return TcpChannel(sock, name=f"tcp->{host}:{port}")

"""Connection sharding primitives: fd passing and the parent acceptor.

The proxy's per-frame costs parallelise cleanly — every tunnel is
independent — but one CPython process is one GIL.  The shard layer runs
N worker processes, each owning a full reactor stack, and splits the
*accept* stream between them.  Two distribution mechanisms:

* **reuseport** — every worker binds the same ``(host, port)`` with
  ``SO_REUSEPORT`` and the kernel spreads incoming connections across
  the listening sockets.  Cheapest (no parent in the data path), but
  Linux-shaped: the parent cannot steer connections, and a worker that
  dies mid-accept-queue drops its backlog.
* **fdpass** — the parent owns the single listening socket, accepts,
  and hands each accepted fd to a worker over a Unix-domain socket with
  ``SCM_RIGHTS`` (:func:`socket.send_fds`).  Portable to anything with
  Unix sockets, parent controls placement (round-robin here), and a
  dead worker is simply skipped.  Costs one ancillary message per
  connection — noise next to the handshake that follows.

:func:`pick_mode` selects reuseport where it genuinely works and falls
back to fdpass.  Workers are *processes*, not forks: the shard entry
points must stay fork-free (gridlint GL104) because a forked reactor
inherits locks and loop threads in undefined states.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Optional

__all__ = [
    "ShardAcceptor",
    "pick_mode",
    "recv_socket",
    "send_socket",
    "supports_fd_passing",
    "supports_reuseport",
]

#: one-byte tag accompanying every passed fd (SCM_RIGHTS needs real data
#: in flight, and the tag lets the receiver reject stray traffic)
_FD_TAG = b"F"


def supports_reuseport() -> bool:
    """True when ``SO_REUSEPORT`` exists *and* the kernel accepts it."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False


def supports_fd_passing() -> bool:
    """True when the stdlib exposes ``send_fds``/``recv_fds`` (3.9+ POSIX)."""
    return hasattr(socket, "send_fds") and hasattr(socket, "recv_fds")


def pick_mode(override: Optional[str] = None) -> str:
    """Resolve the sharding mode: explicit override, else best available."""
    if override:
        if override not in ("reuseport", "fdpass"):
            raise ValueError(f"unknown shard mode: {override!r}")
        return override
    if supports_reuseport():
        return "reuseport"
    if supports_fd_passing():
        return "fdpass"
    raise RuntimeError("neither SO_REUSEPORT nor fd passing is available")


def send_socket(via: socket.socket, sock: socket.socket) -> None:
    """Pass ``sock``'s descriptor over the Unix socket ``via``.

    The sender keeps its copy open until this returns; the kernel
    duplicates the descriptor into the receiving process, so the caller
    should close its copy afterwards to avoid holding the connection's
    refcount up.
    """
    socket.send_fds(via, [_FD_TAG], [sock.fileno()])


def recv_socket(
    via: socket.socket, timeout: Optional[float] = None
) -> Optional[socket.socket]:
    """Receive one passed descriptor from ``via`` as a fresh socket object.

    Returns ``None`` on EOF (the sender closed the handoff link).  The
    returned socket owns its fd; family/type are taken from the fd
    itself, so this works for any passed stream socket.
    """
    via.settimeout(timeout)
    msg, fds, _flags, _addr = socket.recv_fds(via, len(_FD_TAG), 1)
    if not msg and not fds:
        return None
    if not fds:
        raise OSError(f"fd handoff message without descriptor: {msg!r}")
    if msg != _FD_TAG:
        # Tag mismatch means the link is out of sync; the fd itself is
        # still real and must not leak.
        sock = socket.socket(fileno=fds[0])
        sock.close()
        raise OSError(f"bad fd handoff tag: {msg!r}")
    return socket.socket(fileno=fds[0])


class ShardAcceptor:
    """Parent-side accept loop for **fdpass** mode.

    Owns the bound+listening socket, accepts connections, and deals
    each accepted fd round-robin to the registered worker handoff
    links.  A worker whose link breaks (process died) is dropped from
    the rotation on the spot and the connection is re-dealt to the next
    live worker; with no workers left the connection is closed — the
    client sees a reset, which is the same contract a crashed
    single-process proxy gives.
    """

    def __init__(self, listen_sock: socket.socket, name: str = "shard-acceptor"):
        self.name = name
        self._sock = listen_sock
        self._links: dict[int, socket.socket] = {}
        self._rr: list[int] = []
        self._next = 0
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: connections dealt, per shard id (the smoke tests read this to
        #: prove the rotation actually spreads load)
        self.dealt: dict[int, int] = {}

    @property
    def address(self) -> tuple[Any, ...]:
        addr: tuple[Any, ...] = self._sock.getsockname()
        return addr

    def add_worker(self, shard_id: int, link: socket.socket) -> None:
        """Register (or replace, after a respawn) a worker handoff link."""
        with self._lock:
            old = self._links.pop(shard_id, None)
            self._links[shard_id] = link
            if shard_id not in self._rr:
                self._rr.append(shard_id)
                self._rr.sort()
        if old is not None:
            old.close()

    def remove_worker(self, shard_id: int) -> None:
        with self._lock:
            link = self._links.pop(shard_id, None)
            if shard_id in self._rr:
                self._rr.remove(shard_id)
        if link is not None:
            link.close()

    def start(self) -> "ShardAcceptor":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._accept_loop, daemon=True, name=self.name
            )
            self._thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return  # listener closed
            try:
                self._deal(conn)
            finally:
                # The kernel dup'd the fd into the worker (or nobody
                # took it); either way the parent's copy must go.
                conn.close()

    def _deal(self, conn: socket.socket) -> None:
        """Hand ``conn`` to the next live worker, skipping dead links."""
        while True:
            with self._lock:
                if not self._rr:
                    return  # no live workers: drop the connection
                self._next %= len(self._rr)
                shard_id = self._rr[self._next]
                self._next += 1
                link = self._links[shard_id]
            try:
                send_socket(link, conn)
                with self._lock:
                    self.dealt[shard_id] = self.dealt.get(shard_id, 0) + 1
                return
            except OSError:
                self.remove_worker(shard_id)

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._sock.close()
        with self._lock:
            links, self._links = dict(self._links), {}
            self._rr = []
        for link in links.values():
            link.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

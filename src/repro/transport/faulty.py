"""Fault-injection transport: deterministic chaos for any channel.

The paper's robustness claim — per-site proxies confine failures to one
site — is only credible if the stack is exercised under real faults.
:class:`FaultyChannel` wraps any :class:`~repro.transport.channel.Channel`
(in-process, TCP, or the secure channel built on either) and injects
drops, delays, reorders, truncations, corruptions and mid-stream
disconnects according to a :class:`FaultPlan`.

Determinism is the design centre: whether frame *i* on a given direction
is faulted, and how, is a pure function of ``(seed, direction, i)`` — not
of wall time, thread interleaving, or a shared RNG stream.  Two runs
with the same seed and the same per-direction frame sequence therefore
produce the *same fault schedule*, which the chaos suite exploits for
seed replay: a failing test prints its seed, and re-running with that
seed reproduces the exact schedule.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.transport.channel import Channel, Listener
from repro.transport.errors import ChannelClosed, TransportTimeout
from repro.transport.frames import Frame

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultyChannel",
    "FaultyListener",
    "faulty_pair",
]

#: Fault kinds, in the priority order the injector evaluates them.
_ACTIONS = ("drop", "corrupt", "truncate", "reorder", "disconnect", "delay")


@dataclass(frozen=True)
class FaultPlan:
    """Per-frame fault probabilities and bounds.

    Each rate is the probability that a frame suffers that fault; at most
    one fault applies per frame (evaluated in :data:`_ACTIONS` order over
    a single uniform draw, so the rates partition [0, 1)).  ``max_faults``
    bounds the total injected faults per channel so chaotic scenarios
    still terminate.
    """

    drop: float = 0.0
    corrupt: float = 0.0
    truncate: float = 0.0
    reorder: float = 0.0
    disconnect: float = 0.0
    delay: float = 0.0
    delay_range: Tuple[float, float] = (0.001, 0.02)
    max_faults: Optional[int] = None
    #: spare the first ``skip`` frames per direction — lets a chaos test
    #: let the handshake through untouched and fault the record traffic.
    skip: int = 0

    def __post_init__(self):
        total = self.drop + self.corrupt + self.truncate + self.reorder
        total += self.disconnect + self.delay
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault rates sum to {total} > 1")
        for name in _ACTIONS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate {name} out of [0, 1]: {rate}")
        lo, hi = self.delay_range
        if lo < 0 or hi < lo:
            raise ValueError(f"bad delay_range: {self.delay_range}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0: {self.skip}")


class FaultInjector:
    """Seeded, replayable fault decisions.

    ``decide(direction, index)`` answers "what happens to frame ``index``
    travelling in ``direction``" from a private RNG keyed on
    ``(seed, direction, index)`` — string-seeded :class:`random.Random`
    hashes via SHA-512, so decisions are stable across processes and
    interpreter runs.  Every decision is appended to :attr:`schedule`.
    """

    def __init__(self, seed: int, plan: FaultPlan):
        self.seed = seed
        self.plan = plan
        self._lock = threading.Lock()
        self._faults_done = 0
        #: (direction, index, action, detail) per injected fault
        self.schedule: List[Tuple[str, int, str, float]] = []

    def decide(self, direction: str, index: int) -> Tuple[Optional[str], float]:
        """Return (action, detail) for one frame; (None, 0.0) = no fault.

        ``detail`` is the delay duration for ``delay``, the corruption
        offset fraction for ``corrupt``/``truncate``, else 0.
        """
        plan = self.plan
        if index < plan.skip:
            return None, 0.0
        with self._lock:
            if plan.max_faults is not None and self._faults_done >= plan.max_faults:
                return None, 0.0
        rng = random.Random(f"{self.seed}|{direction}|{index}")
        draw = rng.random()
        threshold = 0.0
        for action in _ACTIONS:
            threshold += getattr(plan, action)
            if draw < threshold:
                if action == "delay":
                    detail = rng.uniform(*plan.delay_range)
                else:
                    detail = rng.random()
                with self._lock:
                    self._faults_done += 1
                    self.schedule.append((direction, index, action, detail))
                return action, detail
        return None, 0.0

    def mutate(self, payload: bytes, fraction: float) -> bytes:
        """Flip one byte at a position derived from ``fraction``."""
        if not payload:
            return payload
        position = min(int(fraction * len(payload)), len(payload) - 1)
        corrupted = bytearray(payload)
        corrupted[position] ^= 0xFF
        return bytes(corrupted)

    def faults_injected(self) -> int:
        with self._lock:
            return self._faults_done


class FaultyChannel(Channel):
    """A channel that misbehaves on purpose.

    Wraps ``inner`` and applies the injector's decisions on the send path
    (and, with ``on_recv=True``, the receive path).  Fault semantics at
    the frame level:

    * ``drop`` — the frame silently vanishes (upper layers must time out
      and retry);
    * ``corrupt`` — one payload byte is flipped (a sealed record fails
      its MAC; a cleartext control frame decodes to garbage and is
      discarded);
    * ``truncate`` — the payload is cut short (same downstream effect as
      corruption, but exercises length-checking paths);
    * ``reorder`` — the frame is held and sent after its successor;
    * ``delay`` — delivery stalls for a bounded, seed-derived duration;
    * ``disconnect`` — the channel closes mid-stream, exactly as if the
      peer vanished.
    """

    def __init__(
        self,
        inner: Channel,
        injector: FaultInjector,
        on_recv: bool = False,
        sleep=time.sleep,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or f"faulty:{inner.name}")
        self._inner = inner
        self.injector = injector
        self._on_recv = on_recv
        self._sleep = sleep
        self._lock = threading.Lock()
        self._send_index = 0
        self._recv_index = 0
        self._held: Optional[Frame] = None

    # -- send path ---------------------------------------------------------

    def send(self, frame: Frame) -> None:
        for out in self._apply_send(frame):
            self._inner.send(out)
            self.stats.on_send(len(out.payload))

    def send_many(self, frames: Iterable[Frame]) -> None:
        batch: List[Frame] = []
        for frame in frames:
            batch.extend(self._apply_send(frame))
        if batch:
            self._inner.send_many(batch)
            for out in batch:
                self.stats.on_send(len(out.payload))

    def _apply_send(self, frame: Frame) -> List[Frame]:
        """Fault one outgoing frame; returns the frames to actually send."""
        with self._lock:
            index = self._send_index
            self._send_index += 1
        action, detail = self.injector.decide("send", index)
        if action == "drop":
            return self._flush_held()
        if action == "corrupt":
            frame = Frame(
                kind=frame.kind,
                channel=frame.channel,
                headers=frame.headers,
                payload=self.injector.mutate(frame.payload, detail),
            )
        elif action == "truncate":
            cut = int(detail * len(frame.payload))
            frame = Frame(
                kind=frame.kind,
                channel=frame.channel,
                headers=frame.headers,
                payload=frame.payload[:cut],
            )
        elif action == "reorder":
            with self._lock:
                held, self._held = self._held, frame
            return [held] if held is not None else []
        elif action == "disconnect":
            self.close()
            raise ChannelClosed(f"{self.name}: injected disconnect")
        elif action == "delay":
            self._sleep(detail)
        # The current frame goes first, then any held frame: that is what
        # makes a "reorder" visible — the held frame jumps the queue.
        return [frame] + self._flush_held()

    def _flush_held(self) -> List[Frame]:
        with self._lock:
            held, self._held = self._held, None
        return [held] if held is not None else []

    # -- receive path ------------------------------------------------------

    def _apply_recv_fault(self, frame: Frame) -> Optional[Frame]:
        """Fault one inbound frame; None means it was dropped."""
        with self._lock:
            index = self._recv_index
            self._recv_index += 1
        action, detail = self.injector.decide("recv", index)
        if action == "drop":
            return None
        if action == "corrupt":
            frame = Frame(
                kind=frame.kind,
                channel=frame.channel,
                headers=frame.headers,
                payload=self.injector.mutate(frame.payload, detail),
            )
        elif action == "truncate":
            cut = int(detail * len(frame.payload))
            frame = Frame(
                kind=frame.kind,
                channel=frame.channel,
                headers=frame.headers,
                payload=frame.payload[:cut],
            )
        elif action == "disconnect":
            self.close()
            raise ChannelClosed(f"{self.name}: injected disconnect")
        elif action == "delay":
            self._sleep(detail)
        return frame

    def poll_recv(self) -> Optional[Frame]:
        """Non-blocking receive with the same fault schedule as ``recv``.

        Lets the reactor drive a fault-injected channel: dropped frames
        simply never surface (the loop polls again on the next ready
        signal), delays stall briefly (bounded by the plan), and
        disconnects close the channel mid-drain.
        """
        while True:
            frame = self._inner.poll_recv()
            if frame is None:
                return None
            if not self._on_recv:
                self.stats.on_receive(len(frame.payload))
                return frame
            frame = self._apply_recv_fault(frame)
            if frame is None:
                continue  # dropped: the frame never "arrived"
            self.stats.on_receive(len(frame.payload))
            return frame

    @property
    def supports_reactor(self) -> bool:
        return self._inner.supports_reactor

    def set_ready_callback(self, callback) -> None:
        self._inner.set_ready_callback(callback)

    @property
    def reactor_loop(self):
        """Pin to the loop owning the wrapped transport, if any."""
        return getattr(self._inner, "reactor_loop", None)

    def recv(self, timeout: Optional[float] = None) -> Frame:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            frame = self._inner.recv(timeout=remaining)
            if not self._on_recv:
                self.stats.on_receive(len(frame.payload))
                return frame
            frame = self._apply_recv_fault(frame)
            if frame is None:
                if deadline is not None and time.monotonic() >= deadline:
                    raise TransportTimeout(f"{self.name}: recv timed out")
                continue  # the frame never "arrived"; keep waiting
            self.stats.on_receive(len(frame.payload))
            return frame

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


class FaultyListener(Listener):
    """Wraps a listener so every accepted channel is fault-injected.

    Each accepted channel gets its own injector derived from the base
    seed and the accept ordinal, keeping per-channel schedules
    independent and replayable.
    """

    def __init__(
        self,
        inner: Listener,
        seed: int,
        plan: FaultPlan,
        on_recv: bool = False,
    ):
        self._inner = inner
        self.seed = seed
        self.plan = plan
        self._on_recv = on_recv
        self._accepted = 0
        self._lock = threading.Lock()
        self.injectors: List[FaultInjector] = []

    def accept(self, timeout: Optional[float] = None) -> Channel:
        channel = self._inner.accept(timeout=timeout)
        with self._lock:
            ordinal = self._accepted
            self._accepted += 1
        injector = FaultInjector(seed=self.seed + 7919 * ordinal, plan=self.plan)
        self.injectors.append(injector)
        return FaultyChannel(channel, injector, on_recv=self._on_recv)

    def close(self) -> None:
        self._inner.close()


def faulty_pair(
    seed: int, plan: FaultPlan, name: str = "chaos"
) -> Tuple[FaultyChannel, Channel]:
    """An in-process channel pair whose left end injects faults.

    Convenience for unit/chaos tests: returns ``(faulty_sender, clean
    receiver)``; faults apply to traffic sent by the left end.
    """
    from repro.transport.inproc import channel_pair

    a, b = channel_pair(name=name)
    return FaultyChannel(a, FaultInjector(seed, plan)), b

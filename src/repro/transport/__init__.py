"""Layer 1 — Communication.

The paper's layer 1 "contains the resources that control and enable
communication between the sites that make up the grid", with separate
channels for data traffic and control.  This package provides:

:mod:`repro.transport.frames`
    The wire format: a self-contained binary codec (no pickle — remote
    frames are untrusted input) and length-delimited frames with distinct
    CONTROL and DATA classes.
:mod:`repro.transport.channel`
    The abstract channel/listener interfaces every transport implements.
:mod:`repro.transport.inproc`
    In-process transport: thread-safe channel pairs and a named fabric,
    used by unit/integration tests and the single-process runtime.
:mod:`repro.transport.tcp`
    Real TCP transport over localhost sockets, demonstrating that the
    middleware runs on an actual network stack.
:mod:`repro.transport.udp`
    Reliable frames over real UDP datagrams (ARQ with cumulative ACKs
    and retransmission) — the paper's layer diagram names UDP alongside
    TCP as a base protocol.
:mod:`repro.transport.faulty`
    Deterministic fault injection (drops, delays, reorders, corruption,
    disconnects) over any channel — the substrate of the chaos suite.
:mod:`repro.transport.errors`
    The transport exception hierarchy.
"""

from repro.transport.channel import Channel, Listener
from repro.transport.errors import (
    ChannelClosed,
    CodecError,
    FrameError,
    TransportError,
    TransportTimeout,
)
from repro.transport.frames import (
    Frame,
    FrameDecoder,
    FrameKind,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
)
from repro.transport.faulty import (
    FaultInjector,
    FaultPlan,
    FaultyChannel,
    FaultyListener,
    faulty_pair,
)
from repro.transport.inproc import InprocChannel, InprocFabric, channel_pair
from repro.transport.tcp import TcpChannel, TcpListener, connect_tcp
from repro.transport.udp import UdpChannel, udp_pair

__all__ = [
    "Channel",
    "ChannelClosed",
    "CodecError",
    "FaultInjector",
    "FaultPlan",
    "FaultyChannel",
    "FaultyListener",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "FrameKind",
    "faulty_pair",
    "InprocChannel",
    "InprocFabric",
    "Listener",
    "TcpChannel",
    "TcpListener",
    "TransportError",
    "TransportTimeout",
    "UdpChannel",
    "channel_pair",
    "connect_tcp",
    "udp_pair",
    "decode_frame",
    "decode_value",
    "encode_frame",
    "encode_value",
]

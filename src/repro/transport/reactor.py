"""Shared reactor I/O: a selectors-based event loop for the whole stack.

The seed runtime spent one thread per ``TcpChannel`` (socket reader) plus
one per :class:`~repro.core.tunnel.Tunnel` (receive loop), so a proxy
serving N tunnels burned O(N) threads and its time context-switching.
This module replaces that with the classic serving-stack migration: one
(or a few, for multi-core) event-loop thread(s) own every socket, and
all higher layers register *callbacks* instead of spawning threads.

Three pieces live here:

* :class:`Reactor` — ``loops`` event-loop threads, each with its own
  ``selectors`` selector, a self-pipe for cross-thread wakeups, and a
  timer heap (one-shot :meth:`call_later` and jittered periodic
  :meth:`call_every` — heartbeats and deadline expiry ride these).
  Channels of *any* transport join via :meth:`add_channel`, which drives
  the uniform ``poll_recv``/``set_ready_callback`` protocol declared on
  :class:`~repro.transport.channel.Channel`; in-process and
  fault-injected channels therefore run on the loop unchanged.
* :class:`ReactorTcpChannel` — a non-blocking TCP channel owned by a
  loop: the loop reads and feeds the frame decoder, and outbound frames
  go through a **bounded per-channel write queue** flushed with the same
  vectored ``sendmsg`` coalescing as the threaded fast path.  When a slow
  peer fills the queue, ``send`` blocks up to ``send_timeout`` and then
  raises :class:`~repro.transport.errors.ChannelBusy` — bounded memory,
  deterministic backpressure.
* mode selection — :func:`io_mode` reads ``REPRO_IO`` (``reactor`` is
  the default; ``threaded`` is the one-release escape hatch that keeps
  the old thread-per-connection transport alive for head-to-head
  benchmarking), and :func:`get_global_reactor` hands out the shared
  process-wide reactor.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import selectors
import socket
import threading
import time
from collections import deque
from typing import Callable, Iterable, Optional

from repro.obs import racesan
from repro.obs.metrics import get_global_registry
from repro.transport.channel import Channel
from repro.transport.errors import (
    ChannelBusy,
    ChannelClosed,
    FrameError,
    TransportTimeout,
)
from repro.transport.frames import Frame, FrameDecoder, encode_frame_views
from repro.transport.tcp import TcpListener, _set_nodelay

__all__ = [
    "Reactor",
    "ReactorTcpChannel",
    "ReactorTcpListener",
    "TimerHandle",
    "connect_tcp_reactor",
    "current_owner",
    "get_global_reactor",
    "io_mode",
    "on_reactor_thread",
    "reset_global_reactor",
]

_RECV_CHUNK = 64 * 1024
_EOF = object()
#: frames delivered per drain pass before yielding to other channels
_DRAIN_BATCH = 128
_timer_seq = itertools.count()
#: idents of every live event-loop thread, across all reactors
_loop_thread_idents: set = set()
#: ident -> loop name for those same threads (the racesan ownership token)
_loop_owner_names: dict = {}


def on_reactor_thread() -> bool:
    """True when the calling thread is any reactor event-loop thread.

    Senders must never *block* on a loop thread — a blocked loop cannot
    flush the very queue the sender is waiting on (nor any other channel
    it owns).  Backpressure paths use this to fail fast instead.
    """
    return threading.get_ident() in _loop_thread_idents


def current_owner() -> Optional[str]:
    """The reactor-ownership token for the calling thread, or ``None``.

    Loop-confined state (decoder buffers, write queues between flushes)
    is synchronized by loop ownership rather than by a mutex; the race
    sanitizer treats this token — ``"loop:<name>"`` — as a pseudo-lock
    held for the entire life of the loop thread, so accesses serialized
    on one loop never look unlocked to the lockset refinement.
    """
    name = _loop_owner_names.get(threading.get_ident())
    return None if name is None else f"loop:{name}"


# racesan cannot import this module (obs must stay transport-free), so
# the ownership hook is pushed to it from here at import time.
racesan.set_owner_resolver(current_owner)


def io_mode(override: Optional[str] = None) -> str:
    """Resolve the I/O mode: explicit override, else ``$REPRO_IO``, else reactor."""
    mode = override or os.environ.get("REPRO_IO", "reactor")
    if mode not in ("reactor", "threaded"):
        raise ValueError(f"unknown REPRO_IO mode: {mode!r}")
    return mode


class TimerHandle:
    """Cancellation handle for a scheduled (possibly periodic) callback."""

    __slots__ = ("interval", "jitter", "callback", "_cancelled", "_loop")

    def __init__(self, callback, interval: Optional[float], jitter: float, loop):
        self.callback = callback
        self.interval = interval
        self.jitter = jitter
        self._cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _next_delay(self) -> float:
        """Period until the next firing, jittered ±``jitter``·interval.

        Jitter decorrelates periodic work (every proxy heartbeating at
        the same instant is a thundering herd); the bound keeps the
        failure detector's timing assumptions valid.
        """
        assert self.interval is not None
        if not self.jitter:
            return self.interval
        spread = self.interval * self.jitter
        return max(0.0, self.interval + random.uniform(-spread, spread))


class _Registration:
    """One channel's membership on a loop: ready-flag + drain bookkeeping."""

    __slots__ = ("channel", "on_frame", "on_batch", "on_close", "_loop",
                 "_lock", "_scheduled", "_closed")

    def __init__(self, channel: Channel, on_frame, on_close, loop: "_Loop",
                 on_batch=None):
        self.channel = channel
        self.on_frame = on_frame
        self.on_batch = on_batch
        self.on_close = on_close
        self._loop = loop
        self._lock = threading.Lock()
        self._scheduled = False
        self._closed = False

    # -- producer side (any thread) ------------------------------------

    def ready(self) -> None:
        with self._lock:
            if self._scheduled or self._closed:
                return
            self._scheduled = True
        self._loop.schedule(self._drain)

    # -- loop side -------------------------------------------------------

    def _drain(self) -> None:
        with self._lock:
            self._scheduled = False
            if self._closed:
                return
        if self.on_batch is not None:
            self._drain_batch()
            return
        for _ in range(_DRAIN_BATCH):
            try:
                frame = self.channel.poll_recv()
            except Exception as exc:  # ChannelClosed, FrameError, record MAC…
                self._finish(exc)
                return
            if frame is None:
                return
            try:
                self.on_frame(frame)
            except Exception:
                pass  # a faulty handler must not kill the shared loop
        # Batch exhausted with frames possibly still pending: yield the
        # loop to other channels and reschedule ourselves.
        self.ready()

    def _drain_batch(self) -> None:
        """Collect the whole decoder backlog, deliver it as one batch.

        One loop wakeup → one ``on_batch(frames)`` call → one dispatch
        pass downstream, so per-frame scheduling overhead (ready-flag
        churn, handler indirection, reply syscalls) is paid per burst.
        Frames already drained are always delivered before a terminal
        condition is surfaced — a death notice must not eat data.
        """
        batch: list = []
        error: Optional[Exception] = None
        for _ in range(_DRAIN_BATCH):
            try:
                frame = self.channel.poll_recv()
            except Exception as exc:
                error = exc
                break
            if frame is None:
                break
            batch.append(frame)
        if batch:
            try:
                self.on_batch(batch)
            except Exception:
                pass  # a faulty handler must not kill the shared loop
        if error is not None:
            self._finish(error)
        elif len(batch) == _DRAIN_BATCH:
            self.ready()  # backlog may run deeper: yield, then continue

    def _finish(self, exc: Exception) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self.channel.set_ready_callback(None)
        except Exception:
            pass
        if self.on_close is not None:
            try:
                self.on_close(self.channel, exc)
            except Exception:
                pass

    def unregister(self) -> None:
        """Detach without firing ``on_close`` (the owner is closing)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self.channel.set_ready_callback(None)
        except Exception:
            pass


class _Loop:
    """One event-loop thread: selector + self-pipe + pending queue + timers."""

    def __init__(self, name: str):
        self.name = name
        self._selector = selectors.DefaultSelector()
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, self._on_wake)
        self._pending: deque = deque()
        self._pending_lock = threading.Lock()
        self._timers: list = []  # heap of (deadline, seq, handle)
        self._timer_lock = threading.Lock()
        self._running = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.thread_ident: Optional[int] = None
        # Shared-infrastructure instruments (the reactor belongs to the
        # process, not to any one proxy): timer lag is the loop-health
        # signal — how late the loop gets to work it promised to run.
        metrics = get_global_registry()
        self._m_timer_lag = metrics.histogram("reactor.timer_lag_s")
        self._m_callbacks = metrics.counter("reactor.callbacks")

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._running.set()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=self.name
        )
        self._thread.start()

    def stop(self) -> None:
        self._running.clear()
        self.wake()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def on_loop_thread(self) -> bool:
        return threading.get_ident() == self.thread_ident

    @property
    def defunct(self) -> bool:
        """True once the loop has been told to stop: it drops new work."""
        return self._thread is not None and not self._running.is_set()

    # -- cross-thread entry points --------------------------------------

    def wake(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # pipe already full → the loop is waking anyway

    def schedule(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the loop thread at the next iteration."""
        with self._pending_lock:
            self._pending.append(fn)
        self.wake()

    def call_later(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        handle = TimerHandle(fn, interval=None, jitter=0.0, loop=self)
        self._push_timer(max(0.0, delay), handle)
        return handle

    def call_every(
        self, interval: float, fn: Callable[[], None], jitter: float = 0.0
    ) -> TimerHandle:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        handle = TimerHandle(fn, interval=interval, jitter=jitter, loop=self)
        self._push_timer(handle._next_delay(), handle)
        return handle

    def _push_timer(self, delay: float, handle: TimerHandle) -> None:
        deadline = time.monotonic() + delay
        with self._timer_lock:
            heapq.heappush(self._timers, (deadline, next(_timer_seq), handle))
        self.wake()

    # -- fd management (loop thread only; use schedule() from outside) ---

    def register_fd(self, fileobj, events: int, callback) -> None:
        self._selector.register(fileobj, events, callback)

    def modify_fd(self, fileobj, events: int, callback) -> None:
        self._selector.modify(fileobj, events, callback)

    def unregister_fd(self, fileobj) -> None:
        try:
            self._selector.unregister(fileobj)
        except (KeyError, ValueError):
            pass

    # -- the loop --------------------------------------------------------

    def _on_wake(self, mask: int) -> None:
        try:
            while self._wake_recv.recv(4096):  # gridlint: disable=GL101 -- wake pipe is non-blocking; drain exits on BlockingIOError
                pass
        except (BlockingIOError, OSError):
            pass

    def _next_timeout(self) -> Optional[float]:
        with self._pending_lock:
            if self._pending:
                return 0.0
        with self._timer_lock:
            if not self._timers:
                return None
            return max(0.0, self._timers[0][0] - time.monotonic())

    def _run(self) -> None:
        self.thread_ident = threading.get_ident()
        _loop_thread_idents.add(self.thread_ident)
        _loop_owner_names[self.thread_ident] = self.name
        try:
            while self._running.is_set():
                timeout = self._next_timeout()
                try:
                    events = self._selector.select(timeout)
                except OSError:
                    events = []
                if events:
                    self._m_callbacks.inc(len(events))
                for key, mask in events:
                    try:
                        key.data(mask)
                    except Exception:
                        pass  # one channel's fault must not kill the loop
                self._run_due_timers()
                self._run_pending()
            # Drain once more so close/unregister tasks queued during stop run.
            self._run_pending()
        finally:
            _loop_thread_idents.discard(self.thread_ident)
            _loop_owner_names.pop(self.thread_ident, None)
            self._selector.close()
            self._wake_recv.close()
            self._wake_send.close()

    def _run_pending(self) -> None:
        while True:
            with self._pending_lock:
                if not self._pending:
                    return
                fn = self._pending.popleft()
            try:
                fn()
            except Exception:
                pass

    def _run_due_timers(self) -> None:
        now = time.monotonic()
        due: list[TimerHandle] = []
        with self._timer_lock:
            while self._timers and self._timers[0][0] <= now:
                deadline, _, handle = heapq.heappop(self._timers)
                if not handle.cancelled:
                    # Loop lag: how far past its deadline the loop got to
                    # this timer.  A busy loop (slow handler, storming
                    # channel) shows up here before anything else.
                    self._m_timer_lag.observe(now - deadline)
                    due.append(handle)
        for handle in due:
            try:
                handle.callback()
            except Exception:
                pass
            if handle.interval is not None and not handle.cancelled:
                self._push_timer(handle._next_delay(), handle)


class Reactor:
    """A fixed pool of event loops; channels and timers spread across them.

    One reactor serves any number of proxies/tunnels: thread count is
    O(loops) — not O(connections) — which is the whole point.
    """

    def __init__(self, loops: int = 1, name: str = "reactor"):
        if loops <= 0:
            raise ValueError(f"need at least one loop: {loops}")
        self.name = name
        self._loops = [_Loop(f"{name}-loop-{i}") for i in range(loops)]
        self._rr = itertools.count()
        self._started = False
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "Reactor":
        with self._lock:
            if not self._started:
                # A stopped loop's thread is gone and its selector closed;
                # restarting the reactor must hand out live loops, not
                # silently drop work on dead ones.
                self._loops = [
                    _Loop(loop.name) if loop.defunct else loop
                    for loop in self._loops
                ]
                for loop in self._loops:
                    loop.start()
                self._started = True
        return self

    def stop(self, join: bool = True) -> None:
        with self._lock:
            self._started = False
            loops = list(self._loops)
        for loop in loops:
            loop.stop()
        if join:
            for loop in loops:
                loop.join(timeout=5.0)

    @property
    def loops(self) -> int:
        return len(self._loops)

    @staticmethod
    def current_owner() -> Optional[str]:
        """Hook form of :func:`current_owner` (racesan's resolver)."""
        return current_owner()

    def next_loop(self) -> _Loop:
        """Round-robin loop assignment (channels pin to one loop)."""
        self.start()
        return self._loops[next(self._rr) % len(self._loops)]

    # -- timers ----------------------------------------------------------

    def call_later(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        return self.next_loop().call_later(delay, fn)

    def call_every(
        self, interval: float, fn: Callable[[], None], jitter: float = 0.0
    ) -> TimerHandle:
        """Periodic callback every ``interval`` seconds, jittered ±10% by
        default conventions of the callers (pass ``jitter`` explicitly)."""
        return self.next_loop().call_every(interval, fn, jitter=jitter)

    # -- channels --------------------------------------------------------

    def add_channel(
        self,
        channel: Channel,
        on_frame: Optional[Callable[[Frame], None]] = None,
        on_close: Optional[Callable[[Channel, Exception], None]] = None,
        on_batch: Optional[Callable[[list], None]] = None,
    ) -> _Registration:
        """Drive ``channel`` from the loop: every frame → ``on_frame``.

        Works for any channel implementing the reactor protocol
        (``poll_recv``/``set_ready_callback``) — reactor TCP, in-process
        pairs, fault-injected wrappers, and secure channels layered over
        any of them.  ``on_close(channel, exc)`` fires once when the
        channel dies (peer gone, framing error, record MAC failure).

        ``on_batch(frames)``, when given, replaces per-frame delivery:
        each loop wakeup drains the channel's whole decoded backlog (up
        to an internal cap) and hands it over as one list, letting the
        consumer dispatch and reply in bulk.
        """
        if on_frame is None and on_batch is None:
            raise ValueError("add_channel needs on_frame or on_batch")
        if not channel.supports_reactor:
            raise ValueError(
                f"channel {channel.name!r} does not support reactor I/O"
            )
        # Pin layered channels to the loop that owns their underlying fd
        # when there is one; queue-backed channels round-robin.
        loop = getattr(channel, "reactor_loop", None) or self.next_loop()
        registration = _Registration(
            channel, on_frame, on_close, loop, on_batch=on_batch
        )
        channel.set_ready_callback(registration.ready)
        registration.ready()  # drain anything buffered before we attached
        return registration


# ---------------------------------------------------------------------------
# Reactor-native TCP transport
# ---------------------------------------------------------------------------


@racesan.shared_state
class ReactorTcpChannel(Channel):
    """A frame channel over one non-blocking TCP socket owned by a loop.

    Inbound is the **zero-copy receive path**: the loop only
    ``recv_into``'s the decoder's reassembly buffer (kernel→buffer is the
    sole copy) and notifies consumers; frames are decoded lazily at
    :meth:`poll_recv` / :meth:`recv` time.  ``poll_recv`` on the owning
    loop thread returns frames whose payload is a memoryview into the
    decoder buffer — valid until the loop's next read, which is safe
    because reads and loop-side consumption are the same thread and
    layered consumers (the record cipher) open each frame before the
    drain continues.  Cross-thread blocking ``recv`` always copies.
    ``REPRO_ZEROCOPY=0`` forces the copying decode everywhere (the PR 3
    behaviour, kept as a benchmark baseline and kill switch).

    Outbound: frames are encoded to iovec views and appended to a bounded
    write queue (``max_write_queue`` bytes).  The loop flushes the whole
    backlog with one vectored ``sendmsg`` (group commit, same as the
    threaded fast path); EAGAIN arms write interest.  An **adaptive
    coalescing window** sized from the observed write-queue depth defers
    a hot channel's flush by one loop pass so concurrent producers share
    a syscall, and shrinks back to 1 when the queue runs shallow.  A full
    queue blocks ``send`` up to ``send_timeout`` seconds, then raises
    :class:`ChannelBusy`; on the loop thread itself ``send`` never blocks
    — it raises immediately so a handler can't deadlock its own loop.
    Backpressure is checked eagerly, *before* anything is queued: a
    ``send_many`` burst that doesn't fit leaves no partial batch behind.
    """

    #: upper bound on the adaptive coalescing window (frames)
    MAX_COALESCE_WINDOW = 64

    def __init__(
        self,
        sock: socket.socket,
        reactor: Optional[Reactor] = None,
        name: str = "rtcp",
        max_write_queue: int = 4 * 1024 * 1024,
        send_timeout: Optional[float] = 10.0,
    ):
        super().__init__(name=name)
        reactor = reactor or get_global_reactor()
        self._sock = sock
        _set_nodelay(sock)
        self._sock.setblocking(False)
        self.reactor_loop = reactor.next_loop()
        self.max_write_queue = max_write_queue
        self.send_timeout = send_timeout
        # inbound: raw bytes land in the decoder on the loop thread;
        # decode happens at consumption time under _rx_cond.
        self._decoder = FrameDecoder()
        self._rx_cond = threading.Condition()
        self._rx_eof = False
        self._rx_error: Optional[Exception] = None
        self._zero_copy = (
            os.environ.get("REPRO_ZEROCOPY", "1").lower()
            not in ("0", "off", "false")
        )
        self._ready_cb: Optional[Callable[[], None]] = None
        # outbound
        self._wq: deque = deque()  # (views, frame_size)
        self._wq_bytes = 0
        self._wq_cond = threading.Condition()
        # Process-level backlog gauge: the sum of every channel's pending
        # write bytes.  A rising value means peers are not keeping up.
        self._m_wq_gauge = get_global_registry().gauge("reactor.write_queue_bytes")
        self._flush_scheduled = False
        self._write_armed = False
        # Adaptive coalescing state (touched on the owning loop only).
        self._coalesce_window = 1
        self._coalesce_deferred = False
        self._closed = threading.Event()
        self.reactor_loop.schedule(self._register_read)

    def fileno(self) -> int:
        return self._sock.fileno()

    # -- loop side: reads ------------------------------------------------

    def _register_read(self) -> None:
        if self._closed.is_set():
            return
        try:
            self.reactor_loop.register_fd(
                self._sock, selectors.EVENT_READ, self._on_io
            )
        except (OSError, ValueError, KeyError):
            self._mark_eof()

    def _on_io(self, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            self._flush_on_loop()
        if mask & selectors.EVENT_READ:
            self._on_readable()

    def _on_readable(self) -> None:
        with self._rx_cond:
            try:
                n = self._decoder.feed_into(self._sock.recv_into, _RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                return
            except (OSError, FrameError):
                # OSError: socket died under us.  FrameError: the decoder
                # was poisoned by a consumer-side decode; either way the
                # stream is over.
                n = 0
            if n:
                self._rx_cond.notify_all()
            else:
                self._rx_eof = True
                self._rx_cond.notify_all()
            # Read under _rx_cond (its publication lock); call outside —
            # the callback re-enters poll_recv, which takes _rx_cond.
            cb = self._ready_cb
        if not n:
            self.reactor_loop.unregister_fd(self._sock)
        if cb is not None:
            cb()

    def _mark_eof(self) -> None:
        with self._rx_cond:
            self._rx_eof = True
            self._rx_cond.notify_all()
            cb = self._ready_cb
        if cb is not None:
            cb()

    # -- consumer side: blocking recv + reactor protocol ------------------

    def recv(self, timeout: Optional[float] = None) -> Frame:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._rx_cond:
            while True:
                frame = self._try_decode()
                if frame is not None:
                    return frame
                if self._rx_error is not None or self._rx_eof:
                    self._raise_terminal()
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TransportTimeout(f"{self.name}: recv timed out")
                self._rx_cond.wait(timeout=remaining)

    def poll_recv(self) -> Optional[Frame]:
        with self._rx_cond:
            frame = self._try_decode()
            if frame is not None:
                return frame
            if self._rx_error is not None or self._rx_eof:
                self._raise_terminal()
            return None

    def _try_decode(self) -> Optional[Frame]:
        """Decode the next buffered frame; caller holds ``_rx_cond``.

        Zero-copy (memoryview payload) only on the owning loop thread,
        where decode is serialised with the loop's own reads; any other
        thread gets a copying decode, immune to later buffer reuse.
        """
        if self._rx_error is not None:
            return None
        zero = self._zero_copy and self.reactor_loop.on_loop_thread()
        try:
            frame = (
                self._decoder.next_frame_view()
                if zero
                else self._decoder.next_frame()
            )
        except FrameError as exc:
            self._rx_error = exc
            self.reactor_loop.schedule(self._detach_read)
            return None
        if frame is not None:
            self.stats.on_receive(self._decoder.last_frame_wire_size)
        return frame

    def _raise_terminal(self):
        # Caller holds _rx_cond; decoder is drained.
        if self._rx_error is not None:
            exc, self._rx_error = self._rx_error, None
            self._rx_eof = True  # later recvs see a closed channel
            raise exc
        raise ChannelClosed(f"{self.name}: connection closed")

    def _detach_read(self) -> None:
        self.reactor_loop.unregister_fd(self._sock)

    @property
    def supports_reactor(self) -> bool:
        return True

    def set_ready_callback(self, callback) -> None:
        # Registration thread publishes; the loop thread reads in
        # _on_readable/_mark_eof.  _rx_cond is the publication lock —
        # add_channel's immediate ready() drain covers frames that
        # landed before the callback became visible.
        with self._rx_cond:
            self._ready_cb = callback

    # -- writes -----------------------------------------------------------

    def send(self, frame: Frame) -> None:
        self._enqueue([encode_frame_views(frame)])

    def send_many(self, frames: Iterable[Frame]) -> None:
        batch = [encode_frame_views(frame) for frame in frames]
        if batch:
            self._enqueue(batch)

    def _enqueue(self, frame_views: list) -> None:
        if self._closed.is_set():
            raise ChannelClosed(f"{self.name}: send on closed channel")
        sizes = [sum(map(len, views)) for views in frame_views]
        need = sum(sizes)
        # Any loop thread — not just our own — must fail fast rather than
        # wait: blocking loop A on loop B's queue stalls all of A's channels.
        on_loop = on_reactor_thread()
        deadline = (
            None if self.send_timeout is None
            else time.monotonic() + self.send_timeout
        )
        with self._wq_cond:
            while (
                self._wq_bytes and self._wq_bytes + need > self.max_write_queue
            ):
                if on_loop:
                    raise ChannelBusy(
                        f"{self.name}: write queue full "
                        f"({self._wq_bytes}B) on loop thread"
                    )
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise ChannelBusy(
                        f"{self.name}: write queue full ({self._wq_bytes}B) "
                        f"for {self.send_timeout}s"
                    )
                self._wq_cond.wait(timeout=remaining)
                if self._closed.is_set():
                    raise ChannelClosed(f"{self.name}: send on closed channel")
            for views, size in zip(frame_views, sizes):
                self._wq.append((views, size))
                self._wq_bytes += size
                self.stats.on_send(size)
            self._m_wq_gauge.add(need)
            schedule = not self._flush_scheduled and not self._write_armed
            if schedule:
                self._flush_scheduled = True
        if schedule:
            # Inline flush only on the loop that owns this fd — selector
            # mutation (write-interest arming) is loop-affine.
            if self.reactor_loop.on_loop_thread():
                self._flush_on_loop()
            else:
                self.reactor_loop.schedule(self._flush_on_loop)

    def _flush_on_loop(self) -> None:
        """Drain the write queue with vectored non-blocking writes.

        Adaptive group commit: when producers have recently kept the
        queue deeper than one frame, the first flush of a burst defers
        itself by one loop pass (``schedule`` re-queues it behind the
        work already pending on the loop), letting concurrent senders
        pile on so the whole burst shares one ``sendmsg``.  The window
        grows while flushes keep observing a backlog at or above it and
        shrinks as soon as the queue runs shallow — an idle channel pays
        zero added latency.  Deferral is skipped outright when the queue
        is under memory pressure: with backpressure imminent, draining
        beats batching.
        """
        with self._wq_cond:
            self._flush_scheduled = False
            depth = len(self._wq)
            defer = (
                depth
                and not self._coalesce_deferred
                and depth < self._coalesce_window
                and self._wq_bytes * 2 < self.max_write_queue
                and not self._write_armed
            )
            if defer:
                self._coalesce_deferred = True
                self._flush_scheduled = True
            backlog = list(self._wq)
        if defer:
            self.reactor_loop.schedule(self._flush_on_loop)
            return
        self._coalesce_deferred = False  # gridlint: disable=GL106,GL107 -- loop-confined: only _flush_on_loop (always on the owning loop thread) touches this; racesan checks the claim via the loop token
        # Window adaptation, from the depth this flush actually observed.
        if depth >= self._coalesce_window:
            if self._coalesce_window < self.MAX_COALESCE_WINDOW:
                self._coalesce_window *= 2  # gridlint: disable=GL106,GL107 -- loop-confined: adapted only by _flush_on_loop on the owning loop thread
        elif depth <= 1 and self._coalesce_window > 1:
            self._coalesce_window //= 2  # gridlint: disable=GL106,GL107 -- loop-confined: adapted only by _flush_on_loop on the owning loop thread
        if not backlog or self._closed.is_set():
            return
        views = deque()
        for frame_views, _ in backlog:
            for view in frame_views:
                if len(view):
                    views.append(memoryview(view))
        sent_total = 0
        error: Optional[OSError] = None
        try:
            while views:
                chunk = list(itertools.islice(views, 1024))
                sent = self._sock.sendmsg(chunk)
                sent_total += sent
                while sent > 0:
                    head = views[0]
                    if sent >= len(head):
                        sent -= len(head)
                        views.popleft()
                    else:
                        views[0] = head[sent:]
                        sent = 0
        except (BlockingIOError, InterruptedError):
            pass
        except OSError as exc:
            error = exc
        # Trim fully-written frames off the queue; re-arm for the rest.
        with self._wq_cond:
            before = self._wq_bytes
            remaining = sent_total
            while self._wq and remaining >= self._wq[0][1]:
                _, size = self._wq.popleft()
                self._wq_bytes -= size
                remaining -= size
            if remaining and self._wq:
                # Partial frame: replace head views with the unsent tail.
                views_left, size = self._wq[0]
                flat = deque()
                for view in views_left:
                    if len(view):
                        flat.append(memoryview(view))
                skip = remaining
                while skip > 0 and flat:
                    head = flat[0]
                    if skip >= len(head):
                        skip -= len(head)
                        flat.popleft()
                    else:
                        flat[0] = head[skip:]
                        skip = 0
                self._wq[0] = (list(flat), size - remaining)
                self._wq_bytes -= remaining
            pending = bool(self._wq) and error is None
            self._m_wq_gauge.add(self._wq_bytes - before)
            self._wq_cond.notify_all()
        if error is not None:
            self.close()
            return
        self._set_write_interest(pending)

    def _set_write_interest(self, armed: bool) -> None:
        # Loop-affine (only the owning loop thread calls this), but the
        # flag itself is read by sender threads inside ``_enqueue``'s
        # defer heuristic, so both the check and the publish go through
        # ``_wq_cond`` — the gap between them is safe with one writer.
        with self._wq_cond:
            if armed == self._write_armed or self._closed.is_set():
                return
        events = selectors.EVENT_READ | (selectors.EVENT_WRITE if armed else 0)
        try:
            self.reactor_loop.modify_fd(self._sock, events, self._on_io)
        except (KeyError, ValueError, OSError):
            if armed:
                # The fd is no longer registered (read side hit EOF and
                # unregistered it), so the queue can never drain — fail
                # pending senders now instead of letting them time out.
                self.close()
            return
        with self._wq_cond:
            self._write_armed = armed

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        with self._wq_cond:
            self._wq.clear()
            self._m_wq_gauge.add(-self._wq_bytes)
            self._wq_bytes = 0
            self._wq_cond.notify_all()
        self.reactor_loop.schedule(self._close_on_loop)

    def _close_on_loop(self) -> None:
        self.reactor_loop.unregister_fd(self._sock)
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._mark_eof()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class ReactorTcpListener(TcpListener):
    """Listening socket producing loop-owned :class:`ReactorTcpChannel`.

    Accept itself stays a blocking call (the proxy keeps one accept
    thread per listener — O(listeners), not O(connections)); only the
    per-connection I/O moves onto the reactor.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 64,
        reactor: Optional[Reactor] = None,
        reuseport: bool = False,
    ):
        super().__init__(host=host, port=port, backlog=backlog, reuseport=reuseport)
        self._reactor = reactor

    def _make_channel(self, conn: socket.socket, name: str) -> Channel:
        return ReactorTcpChannel(conn, reactor=self._reactor, name=name)


def connect_tcp_reactor(
    host: str,
    port: int,
    timeout: float = 10.0,
    reactor: Optional[Reactor] = None,
) -> ReactorTcpChannel:
    """Dial a listener and return a loop-owned client channel."""
    sock = socket.create_connection((host, port), timeout=timeout)
    return ReactorTcpChannel(sock, reactor=reactor, name=f"rtcp->{host}:{port}")


# ---------------------------------------------------------------------------
# The process-wide shared reactor
# ---------------------------------------------------------------------------

_global_lock = threading.Lock()
_global_reactor: Optional[Reactor] = None


def get_global_reactor() -> Reactor:
    """The shared reactor every proxy/tunnel in this process registers on.

    Loop count comes from ``$REPRO_REACTOR_LOOPS`` (default 1 — with the
    GIL, extra loops only help when I/O itself saturates one core).
    """
    global _global_reactor
    with _global_lock:
        if _global_reactor is None:
            loops = int(os.environ.get("REPRO_REACTOR_LOOPS", "1") or 1)
            _global_reactor = Reactor(loops=max(1, loops), name="grid-reactor")
        return _global_reactor.start()


def reset_global_reactor() -> None:
    """Stop and discard the shared reactor (tests only)."""
    global _global_reactor
    with _global_lock:
        reactor, _global_reactor = _global_reactor, None
    if reactor is not None:
        reactor.stop()

"""Reliable frame transport over real UDP datagrams.

The paper's layer diagram lists *UDP/TCP* as "the net protocols that
supply the basis for communication".  TCP gives the frame layer ordering
and reliability for free; this module supplies the same channel contract
over UDP by implementing a small ARQ protocol:

* each frame travels in one datagram, prefixed with a type and a
  sequence number;
* the receiver delivers strictly in order, buffers out-of-order
  arrivals, discards duplicates, and returns cumulative ACKs;
* the sender keeps a window of unacknowledged frames and retransmits on
  a timer;
* FIN datagrams close both directions (best-effort, repeated).

Datagram layout::

    type  1 byte   1=DATA 2=ACK 3=FIN
    seq   8 bytes  sequence number (DATA: frame seq; ACK: cumulative)
    body  n bytes  encoded frame (DATA only)

Frames must fit one datagram (~60 KiB); the middleware's data layer
already chunks larger transfers.  A ``loss_injector`` hook drops chosen
outgoing datagrams so tests can prove retransmission works.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
from typing import Callable, Optional

from repro.transport.channel import Channel
from repro.transport.errors import ChannelClosed, FrameError, TransportTimeout
from repro.transport.frames import Frame, decode_frame, encode_frame

__all__ = ["UdpChannel", "udp_pair"]

_TYPE_DATA = 1
_TYPE_ACK = 2
_TYPE_FIN = 3
_HEADER = struct.Struct("!BQ")

#: Maximum encoded-frame size that fits a localhost datagram.
MAX_UDP_FRAME = 60 * 1024
_RETRANSMIT_INTERVAL = 0.05
_MAX_RETRANSMITS = 100  # ~5s of trying before the peer is declared gone
_WINDOW = 64


class UdpChannel(Channel):
    """One endpoint of a reliable UDP frame pipe."""

    def __init__(
        self,
        sock: socket.socket,
        peer: tuple[str, int],
        name: str = "udp",
        loss_injector: Optional[Callable[[bytes], bool]] = None,
    ):
        super().__init__(name=name)
        self._sock = sock
        self._peer = peer
        self.loss_injector = loss_injector
        self._closed = threading.Event()
        self._delivered: "queue.Queue" = queue.Queue()
        # sender state
        self._send_lock = threading.Lock()
        self._next_seq = 0
        self._unacked: dict[int, bytes] = {}
        self._window_free = threading.Condition(self._send_lock)
        # receiver state
        self._expected_seq = 0
        self._out_of_order: dict[int, bytes] = {}
        self._fin_sent = False
        self._receiver = threading.Thread(
            target=self._receive_loop, daemon=True, name=f"{name}-rx"
        )
        self._retransmitter = threading.Thread(
            target=self._retransmit_loop, daemon=True, name=f"{name}-arq"
        )
        self._receiver.start()
        self._retransmitter.start()

    # -- datagram plumbing ---------------------------------------------------

    def _emit(self, datagram: bytes) -> None:
        if self.loss_injector is not None and self.loss_injector(datagram):
            return  # simulated network loss
        try:
            self._sock.sendto(datagram, self._peer)
        except OSError:
            pass  # socket gone: the retransmitter/receiver will wind down

    def _receive_loop(self) -> None:
        while not self._closed.is_set():
            try:
                datagram, _addr = self._sock.recvfrom(MAX_UDP_FRAME + 64)
            except OSError:
                break
            if len(datagram) < _HEADER.size:
                continue  # runt datagram: drop
            dtype, seq = _HEADER.unpack_from(datagram, 0)
            body = datagram[_HEADER.size :]
            if dtype == _TYPE_DATA:
                self._on_data(seq, body)
            elif dtype == _TYPE_ACK:
                self._on_ack(seq)
            elif dtype == _TYPE_FIN:
                self._delivered.put(None)  # EOF sentinel
                break
        self._delivered.put(None)

    def _on_data(self, seq: int, body: bytes) -> None:
        # Always (re-)ACK cumulatively: the ACK for an earlier frame may
        # have been lost, and this datagram may itself be a duplicate.
        if seq < self._expected_seq:
            self._emit(_HEADER.pack(_TYPE_ACK, self._expected_seq))
            return
        self._out_of_order[seq] = body
        while self._expected_seq in self._out_of_order:
            in_order = self._out_of_order.pop(self._expected_seq)
            self._expected_seq += 1
            self._delivered.put(in_order)
        self._emit(_HEADER.pack(_TYPE_ACK, self._expected_seq))

    def _on_ack(self, cumulative: int) -> None:
        with self._send_lock:
            for seq in [s for s in self._unacked if s < cumulative]:
                del self._unacked[seq]
            self._window_free.notify_all()

    def _retransmit_loop(self) -> None:
        attempts = 0
        while not self._closed.is_set():
            self._closed.wait(timeout=_RETRANSMIT_INTERVAL)
            with self._send_lock:
                pending = list(self._unacked.values())
            if not pending:
                attempts = 0
                continue
            attempts += 1
            if attempts > _MAX_RETRANSMITS:
                self.close()  # peer unreachable
                return
            for datagram in pending:
                self._emit(datagram)

    # -- channel interface -------------------------------------------------------

    def send(self, frame: Frame) -> None:
        if self._closed.is_set():
            raise ChannelClosed(f"{self.name}: send on closed channel")
        blob = encode_frame(frame)
        if len(blob) > MAX_UDP_FRAME:
            raise FrameError(
                f"frame too large for UDP transport: {len(blob)} B "
                f"(max {MAX_UDP_FRAME})"
            )
        with self._window_free:
            while len(self._unacked) >= _WINDOW and not self._closed.is_set():
                self._window_free.wait(timeout=0.5)
            if self._closed.is_set():
                raise ChannelClosed(f"{self.name}: closed while waiting on window")
            seq = self._next_seq
            self._next_seq += 1
            datagram = _HEADER.pack(_TYPE_DATA, seq) + blob
            self._unacked[seq] = datagram
        self._emit(datagram)
        self.stats.on_send(len(datagram))

    def recv(self, timeout: Optional[float] = None) -> Frame:
        try:
            body = self._delivered.get(timeout=timeout)
        except queue.Empty:
            raise TransportTimeout(f"{self.name}: recv timed out") from None
        if body is None:
            self._delivered.put(None)
            raise ChannelClosed(f"{self.name}: peer closed")
        frame = decode_frame(body)
        self.stats.on_receive(len(body) + _HEADER.size)
        return frame

    def close(self) -> None:
        if self._closed.is_set():
            return
        if not self._fin_sent:
            self._fin_sent = True
            for _ in range(3):  # FIN is unreliable too: repeat
                self._emit(_HEADER.pack(_TYPE_FIN, 0))
        self._closed.set()
        with self._send_lock:
            self._window_free.notify_all()
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


def udp_pair(
    host: str = "127.0.0.1",
    loss_injector_a: Optional[Callable[[bytes], bool]] = None,
    loss_injector_b: Optional[Callable[[bytes], bool]] = None,
) -> tuple[UdpChannel, UdpChannel]:
    """Two connected reliable-UDP channels over real localhost sockets."""
    sock_a = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock_b = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock_a.bind((host, 0))
    sock_b.bind((host, 0))
    addr_a = sock_a.getsockname()
    addr_b = sock_b.getsockname()
    a = UdpChannel(sock_a, addr_b, name="udp.a", loss_injector=loss_injector_a)
    b = UdpChannel(sock_b, addr_a, name="udp.b", loss_injector=loss_injector_b)
    return a, b

"""The control-plane dispatch pipeline: decode → authorize → lookup → respond.

The seed's :class:`~repro.core.proxy.ProxyServer` buried the whole
inbound control path in one ``_dispatch`` method: an if/elif ladder over
op codes, executed on whichever thread happened to deliver the frame.
With the reactor owning delivery, that thread is a *shared event loop* —
a handler that blocks (job execution, a slow extension) would stall every
tunnel on the loop, and a handler that waits for a reply arriving over
the same loop would deadlock it outright.

This module makes the stages explicit and gives blocking work somewhere
safe to run:

1. **decode** — :meth:`DispatchPipeline.decode` turns a frame into a
   :class:`~repro.core.protocol.ControlMessage`, discarding garbage (the
   security posture for unauthenticated noise is silence, not errors).
2. **authorize** — registered guards run before any handler; a guard can
   veto a message with a reply (e.g. "proxy is shutting down") or raise,
   which becomes an ERROR reply.  Under the token control plane this
   stage is where per-request auth lives: :class:`TokenAuthGuard`
   verifies the bearer token riding the control header (one HMAC + a
   revocation-epoch check, LRU verdict cache — never asymmetric crypto;
   gridlint GL105 enforces that budget).  Legacy *credential*
   verification stays inside the handlers that carry credentials — the
   paper checks them at the destination proxy per-operation, and the
   denial op differs per operation (AUTH_DENIED vs JOB_REJECTED).
3. **lookup** — the handler registry maps op → handler; ops registered
   ``blocking=True`` (job execution, DFS ops, any extension handler) are
   bounced to a **sized worker pool** so the event loop never stalls.
4. **respond** — the handler's reply (or the ERROR built from its
   exception) goes back through the caller-supplied ``respond`` sink;
   handlers returning ``None`` answer nothing (HELLO, notifications).

The pipeline is transport-agnostic: it never touches tunnels or sockets.
The proxy wires ``respond`` to the tunnel the request arrived on.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.protocol import ControlMessage, Op, ProtocolError
from repro.obs.metrics import enabled as obs_enabled
from repro.obs.trace import TraceContext, swap_trace
from repro.security.tokens import Token, TokenError, TokenService
from repro.transport.frames import Frame
from repro.transport.reactor import on_reactor_thread

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import ObsHub

__all__ = [
    "DROP",
    "DispatchPipeline",
    "GUARDED_OP_SCOPES",
    "Handler",
    "TokenAuthGuard",
]

#: Guard verdict for silent discard — the unauthorized-traffic posture.
#: Returning a reply vetoes loudly; returning DROP vetoes silently.
DROP = object()

#: Guards and handlers both take (message, peer); a guard returning a
#: reply (or DROP) short-circuits the pipeline (the message is vetoed).
Guard = Callable[[ControlMessage, str], Optional[ControlMessage]]
Respond = Callable[[ControlMessage], None]


class Handler:
    """One registered op handler and its execution constraints."""

    __slots__ = ("fn", "blocking")

    def __init__(
        self,
        fn: Callable[[ControlMessage, str], Optional[ControlMessage]],
        blocking: bool = False,
    ):
        self.fn = fn
        self.blocking = blocking


class DispatchPipeline:
    """Layered dispatch for one proxy's control plane.

    ``workers`` bounds the pool that blocking handlers run on; the pool
    is created lazily (a proxy that never executes jobs never pays for
    it) and joined by :meth:`close`.
    """

    def __init__(
        self,
        name: str = "dispatch",
        workers: int = 4,
        obs: Optional["ObsHub"] = None,
    ):
        if workers <= 0:
            raise ValueError(f"worker pool needs at least one thread: {workers}")
        self.name = name
        self.workers = workers
        #: owner's observability hub; None runs the pipeline dark (zero
        #: instrument cost, used by benchmarks as the baseline)
        self.obs = obs
        # Hot-path instruments are resolved once, not per message.
        self._m_messages = obs.metrics.counter("dispatch.messages") if obs else None
        self._m_vetoed = obs.metrics.counter("dispatch.vetoed") if obs else None
        # op → (span name, latency histogram): the per-message f-string
        # and registry lookup are paid once per op, not per message.
        # Benignly racy: losers re-derive the same pair.
        self._op_instruments: dict[int, tuple[str, Any]] = {}
        self._handlers: dict[int, Handler] = {}
        #: live extension registry, consulted *before* the built-in
        #: handlers so deployments can override any op ("the codes used
        #: in this protocol can be expanded").  Extension code is
        #: unknown code: it always runs on the worker pool.
        self.overrides: dict[
            int, Callable[[ControlMessage, str], Optional[ControlMessage]]
        ] = {}
        self._guards: list[Guard] = []
        self._default: Optional[Handler] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = threading.Event()

    # -- registry --------------------------------------------------------

    def register(
        self,
        op: int,
        fn: Callable[[ControlMessage, str], Optional[ControlMessage]],
        blocking: bool = False,
    ) -> None:
        """Map ``op`` to ``fn`` (replacing any previous handler).

        ``blocking=True`` routes execution to the worker pool — required
        for anything that runs user code, does I/O, or waits on replies
        that arrive over the same event loop.
        """
        self._handlers[op] = Handler(fn, blocking=blocking)

    def unregister(self, op: int) -> None:
        self._handlers.pop(op, None)

    def set_default(
        self, fn: Callable[[ControlMessage, str], Optional[ControlMessage]]
    ) -> None:
        """Handler for ops with no registration (the ERROR-reply fallback)."""
        self._default = Handler(fn, blocking=False)

    def add_guard(self, guard: Guard) -> None:
        """Install an authorize-stage check run before every handler."""
        self._guards.append(guard)

    def registered_ops(self) -> list[int]:
        return sorted(self._handlers)

    # -- stage 1: decode -------------------------------------------------

    def decode(self, frame: Frame) -> Optional[ControlMessage]:
        """Frame → message, or ``None`` for undecodable traffic."""
        try:
            return ControlMessage.from_frame(frame)
        except ProtocolError:
            return None

    # -- stages 2-4: authorize, lookup, respond --------------------------

    def dispatch(
        self, message: ControlMessage, peer: str, respond: Respond
    ) -> None:
        """Run one decoded request through guards and its handler.

        Never raises: handler faults become ERROR replies, and respond
        failures (peer vanished mid-reply) are swallowed — the control
        plane's callers retry on timeout, not on our exceptions.
        """
        if self._closed.is_set():
            return
        if self._m_messages is not None:
            self._m_messages.inc()
        for guard in self._guards:
            try:
                veto = guard(message, peer)
            except Exception as exc:
                veto = message.reply(Op.ERROR, {"error": str(exc)})
            if veto is DROP:
                if self._m_vetoed is not None:
                    self._m_vetoed.inc()
                return
            if veto is not None:
                if self._m_vetoed is not None:
                    self._m_vetoed.inc()
                self._respond(veto, respond)
                return
        override = self.overrides.get(message.op)
        if override is not None:
            handler = Handler(override, blocking=True)
        else:
            handler = self._handlers.get(message.op, self._default)
        if handler is None:
            return
        if handler.blocking:
            try:
                self._ensure_pool().submit(
                    self._run_handler, handler, message, peer, respond
                )
            except RuntimeError:
                pass  # pool shut down mid-dispatch: the proxy is closing
        else:
            self._run_handler(handler, message, peer, respond)

    def dispatch_batch(
        self,
        messages: list,
        peer: str,
        respond: Respond,
        respond_many: Optional[Callable[[list], None]] = None,
    ) -> None:
        """Dispatch a drained backlog of requests in one pass.

        Semantics are identical to calling :meth:`dispatch` per message;
        the optimisation is reply **group commit**: replies produced
        inline (non-blocking handlers, guard vetoes) are collected and
        flushed through ``respond_many`` as one burst — one vectored
        socket write for the whole backlog.  Blocking handlers finish on
        the worker pool after this call returns and respond singly, as
        they always did.  If the burst flush fails, every reply falls
        back to the per-reply path (which retries once off-loop), so no
        reply is lost that ``dispatch`` would have delivered.
        """
        if respond_many is None or len(messages) <= 1:
            for message in messages:
                self.dispatch(message, peer, respond)
            return
        window_open = True
        window_lock = threading.Lock()
        batch: list = []

        def sink(reply: ControlMessage) -> None:
            # Inline replies land in the batch; late replies (a blocking
            # handler completing after the flush) go out singly.  The
            # lock closes the window atomically — a pool thread racing
            # the flush either makes the batch or responds itself, never
            # falls between.
            with window_lock:
                if window_open:
                    batch.append(reply)
                    return
            respond(reply)

        for message in messages:
            self.dispatch(message, peer, sink)
        with window_lock:
            window_open = False
        if not batch:
            return
        if len(batch) == 1:
            self._respond(batch[0], respond)
            return
        try:
            respond_many(batch)
        except Exception:
            for reply in batch:
                self._respond(reply, respond)

    def _run_handler(
        self, handler: Handler, message: ControlMessage, peer: str, respond: Respond
    ) -> None:
        obs = self.obs
        if obs is None or not obs_enabled():
            try:
                reply = handler.fn(message, peer)
            except Exception as exc:  # any handler fault becomes an ERROR reply
                reply = message.reply(Op.ERROR, {"error": str(exc)})
            if reply is not None:
                self._respond(reply, respond)
            return
        # Instrumented path: a per-hop span (child of the sender's span,
        # when the message carries a trace header) plus a per-op latency
        # histogram.  The span's context is installed thread-locally so
        # nested requests the handler makes link into the same trace.
        cached = self._op_instruments.get(message.op)
        if cached is None:
            op_name = Op.name_of(message.op)
            cached = (
                f"handle.{op_name}",
                obs.metrics.histogram(  # gridlint: disable=GL301 -- per-op cache: lookup paid once per op code, then served from _op_instruments
                    f"dispatch.latency_s.{op_name}"
                ),
            )
            self._op_instruments[message.op] = cached
        span_name, histogram = cached
        parent = TraceContext.from_wire(message.trace)
        span = obs.spans.start(span_name, parent=parent, tags={"peer": peer})
        start = time.perf_counter()
        previous = swap_trace(span.context)
        try:
            reply = handler.fn(message, peer)
        except Exception as exc:  # any handler fault becomes an ERROR reply
            reply = message.reply(Op.ERROR, {"error": str(exc)})
            span.tags["error"] = str(exc)
        finally:
            swap_trace(previous)
        histogram.observe(time.perf_counter() - start)
        span.finish()
        if reply is not None:
            self._respond(reply, respond)

    def _respond(
        self, reply: ControlMessage, respond: Respond, requeued: bool = False
    ) -> None:
        try:
            respond(reply)
        except Exception:
            # Tunnels refuse to block an event-loop thread: an inline
            # handler's reply fails fast (TunnelBusy) whenever a worker
            # momentarily holds the send lock.  That is congestion, not
            # failure — dropping the reply here silently costs the peer
            # its full request timeout (fatal for non-idempotent ops,
            # which never retry).  Retry once from the worker pool,
            # where a blocking send is safe; a failure there (peer
            # vanished mid-reply) stays swallowed — callers retry on
            # timeout, not on our exceptions.
            if requeued or not on_reactor_thread():
                return
            try:
                self._ensure_pool().submit(self._respond, reply, respond, True)
            except RuntimeError:
                pass  # pool shut down mid-dispatch: the proxy is closing

    # -- the worker pool -------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                if self._closed.is_set():
                    raise RuntimeError(f"{self.name}: pipeline closed")
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=f"{self.name}-worker",
                )
            return self._pool

    def submit_blocking(self, fn: Callable[[], None]) -> None:
        """Run arbitrary blocking work on the pool (off-pipeline users)."""
        self._ensure_pool().submit(fn)

    def pool_started(self) -> bool:
        with self._pool_lock:
            return self._pool is not None

    def close(self) -> None:
        """Stop accepting work and join the pool (idempotent)."""
        self._closed.set()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


#: Which ops require which token scope once the token plane is enabled.
#: Everything that executes or mutates work is here; pure liveness and
#: telemetry ops (PING, STATUS_QUERY, OBS_DUMP, …) stay open — they are
#: how the grid notices problems, auth problems included.  AUTH_LOGIN /
#: AUTH_REFRESH / AUTH_RLIST stay open by construction: they are how a
#: principal *gets* a token.  AUTH_REVOKE requires a scope so a stolen
#: user token cannot be used to revoke everyone else's.
GUARDED_OP_SCOPES: dict[int, str] = {
    Op.JOB_SUBMIT: "jobs:submit",
    Op.JOB_QSUBMIT: "wms:submit",
    Op.JOB_CLAIM: "wms:claim",
    Op.JOB_STATUS: "wms:read",
    Op.JOB_DONE: "wms:done",
    Op.MPI_START: "mpi:start",
    Op.MPI_END: "mpi:end",
    Op.AUTH_REVOKE: "auth:revoke",
}


class TokenAuthGuard:
    """Authorize-stage bearer-token check for guarded ops.

    Installed with :meth:`DispatchPipeline.add_guard` when a proxy
    attaches a :class:`~repro.security.tokens.TokenService`.  The guard
    budget is strict — it runs on every guarded message, often on the
    event-loop thread — so the verdict is one HMAC at worst and an LRU
    cache hit at best, never an asymmetric-crypto call (gridlint GL105
    walks the call graph from guards to enforce exactly that).

    Cache correctness: an entry stores the revocation epoch it was
    verified under.  Any revocation bumps the service epoch, so every
    cached verdict self-invalidates on its next lookup; expiry and scope
    are re-checked on hits (both are cheap claim reads, and expiry is a
    property of the clock, not of the cached signature check).

    On success the verified :class:`~repro.security.tokens.Token` is
    stashed on the message as ``auth_claims`` for the handler — the
    token path's replacement for the ``credential`` body field.
    """

    def __init__(
        self,
        service: TokenService,
        scopes: Optional[dict[int, str]] = None,
        obs: Optional["ObsHub"] = None,
        cache_size: int = 4096,
    ) -> None:
        self.service = service
        self.scopes = dict(GUARDED_OP_SCOPES if scopes is None else scopes)
        self.cache_size = int(cache_size)
        #: blob → (epoch verified under, parsed token); LRU by move-to-end
        self._cache: "OrderedDict[bytes, tuple[int, Token]]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self.obs = obs
        # Instruments resolved once at construction (GL301).
        metrics = obs.metrics if obs is not None else None
        self._m_ok = metrics.counter("auth.token.ok") if metrics else None
        self._m_denied = metrics.counter("auth.token.denied") if metrics else None
        self._m_hits = metrics.counter("auth.token.cache_hits") if metrics else None
        self._h_verify = metrics.histogram("auth.verify_s") if metrics else None

    def _deny(self, message: ControlMessage, reason: str) -> ControlMessage:
        if self._m_denied is not None:
            self._m_denied.inc()
        return message.reply(Op.AUTH_DENIED, {"error": reason})

    def __call__(
        self, message: ControlMessage, peer: str
    ) -> Optional[ControlMessage]:
        required = self.scopes.get(message.op)
        if required is None:
            return None
        blob = message.auth
        if not blob:
            return self._deny(
                message,
                f"{Op.name_of(message.op)} requires a token "
                f"with scope {required!r}",
            )
        epoch = self.service.epoch
        with self._cache_lock:
            entry = self._cache.get(blob)
            if entry is not None and entry[0] == epoch:
                self._cache.move_to_end(blob)
                token: Optional[Token] = entry[1]
            else:
                token = None
        if token is not None:
            # Signature already proven; re-check the claims that can
            # drift (clock moved past expiry, different op → scope).
            try:
                self.service.check_claims(token, required_scope=required)
            except TokenError as exc:
                with self._cache_lock:
                    self._cache.pop(blob, None)
                return self._deny(message, str(exc))
            if self._m_hits is not None:
                self._m_hits.inc()
            if self._m_ok is not None:
                self._m_ok.inc()
            message.auth_claims = token  # type: ignore[attr-defined]
            return None
        # Cache miss: the full verify, under a span + latency histogram.
        obs = self.obs
        span = None
        if obs is not None and obs_enabled():
            span = obs.spans.start(
                "request.auth",
                parent=TraceContext.from_wire(message.trace),
                tags={"peer": peer, "op": Op.name_of(message.op)},
            )
        start = time.perf_counter()
        try:
            token = self.service.verify_blob(blob, required_scope=required)
        except TokenError as exc:
            if span is not None:
                span.tags["error"] = str(exc)
            return self._deny(message, str(exc))
        finally:
            if self._h_verify is not None:
                self._h_verify.observe(time.perf_counter() - start)
            if span is not None:
                span.finish()
        with self._cache_lock:
            self._cache[blob] = (epoch, token)
            self._cache.move_to_end(blob)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        if self._m_ok is not None:
            self._m_ok.inc()
        message.auth_claims = token  # type: ignore[attr-defined]
        return None
